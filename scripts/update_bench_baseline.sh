#!/usr/bin/env bash
# Intentionally refresh the committed perf-gate baseline.
#
# Re-runs exactly what the CI perf-gate job runs — the perf suite
# (executor + vectorization benches, the tree-vs-bytecode flat-executor
# duel, the batched-serving throughput sweep for SpMM and SDDMM,
# the zero-copy serving sweep of view batching vs copy batching,
# the fused-attention serving sweep of the cross-op fused kernel vs the
# three-launch pipeline, the serving_slo deadline-hit-rate sweep of
# the SLO machinery vs the FIFO baseline, and the dynamic_graphs
# incremental-vs-rebuild update-stream sweep) in smoke mode
# with every assertion armed — and promotes the freshly written
# BENCH_results.json to BENCH_baseline.json. Commit the updated baseline
# together with the change that legitimately moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

# Refuse to promote anything when the suite fails: a baseline written by
# a run whose bars did not pass would make the CI gate vacuous. (`set -e`
# alone is not enough of a guard — a failed run can still leave a partial
# BENCH_results.json behind, and an explicit check keeps the refusal
# visible rather than an opaque cargo exit.)
if ! SPARSETIR_SMOKE=1 SPARSETIR_BENCH_ASSERT=1 \
    cargo run --release -q -p sparsetir-bench --bin perf_suite >/dev/null; then
    echo "error: perf_suite failed; BENCH_baseline.json left untouched" >&2
    exit 1
fi

cp BENCH_results.json BENCH_baseline.json

# Stamp the actual HEAD into the baseline. The results file carries the
# sha that `perf_suite` saw at run time (or `GITHUB_SHA`), which goes
# stale the moment the refreshed baseline is committed alongside the
# change that moved the numbers — HEAD at promotion time is the closest
# honest provenance.
head_sha="$(git rev-parse HEAD)"
perl -0pi -e 's/("git_sha": ")[^"]*(")/${1}'"$head_sha"'${2}/' BENCH_baseline.json

echo "BENCH_baseline.json refreshed (git_sha=$head_sha):"
grep '"name"' BENCH_baseline.json | sed 's/^ */  /'
