#!/usr/bin/env bash
# Intentionally refresh the committed perf-gate baseline.
#
# Re-runs exactly what the CI perf-gate job runs — the perf suite
# (executor + vectorization benches, the tree-vs-bytecode flat-executor
# duel, the batched-serving throughput sweep for SpMM and SDDMM,
# the fused-attention serving sweep of the cross-op fused kernel vs the
# three-launch pipeline, the serving_slo deadline-hit-rate sweep of
# the SLO machinery vs the FIFO baseline, and the dynamic_graphs
# incremental-vs-rebuild update-stream sweep) in smoke mode
# with every assertion armed — and promotes the freshly written
# BENCH_results.json to BENCH_baseline.json. Commit the updated baseline together with the
# change that legitimately moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

SPARSETIR_SMOKE=1 SPARSETIR_BENCH_ASSERT=1 \
    cargo run --release -q -p sparsetir-bench --bin perf_suite >/dev/null

cp BENCH_results.json BENCH_baseline.json
echo "BENCH_baseline.json refreshed:"
grep '"name"' BENCH_baseline.json | sed 's/^ */  /'
