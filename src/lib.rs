//! # sparsetir
//!
//! A from-scratch Rust reproduction of **SparseTIR: Composable Abstractions
//! for Sparse Compilation in Deep Learning** (Ye et al., ASPLOS 2023).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ir`] | loop-level tensor IR: AST, schedules, interpreter, CUDA codegen (Stage II/III substrate) |
//! | [`smat`] | sparse matrix formats: CSR/CSC, COO, BSR, DBSR, ELL, DIA, CSF, ragged, SR-BCRS, `hyb(c,k)` |
//! | [`core`] | the paper's contribution: Stage I sparse IR, format decomposition, Stage I schedules, the two lowering passes, horizontal fusion |
//! | [`gpusim`] | deterministic GPU performance simulator (V100/RTX 3070) — the substitution for physical GPUs |
//! | [`kernels`] | SparseTIR-generated operators: SpMM, SDDMM, attention, pruned-weight SpMM, RGMS, sparse conv — unified behind the generic `SparseOp` layer |
//! | [`baselines`] | cuSPARSE/cuBLAS/Sputnik/dgSPARSE/TACO/Triton/DGL/PyG/Graphiler/TorchSparse-like baselines |
//! | [`graphs`] | synthetic workload generators for every dataset in the evaluation |
//! | [`nn`] | end-to-end GraphSAGE training and RGCN inference |
//! | [`autotune`] | the joint format × schedule search of §2 |
//! | [`engine`] | concurrent op-agnostic serving engine: one generic request path batching SpMM/SDDMM/attention over the kernel cache |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results. The `examples/`
//! directory walks through the pipeline end to end; start with
//! `cargo run --example quickstart`.

#![warn(missing_docs)]

pub use sparsetir_autotune as autotune;
pub use sparsetir_baselines as baselines;
pub use sparsetir_core as core;
pub use sparsetir_engine as engine;
pub use sparsetir_gpusim as gpusim;
pub use sparsetir_graphs as graphs;
pub use sparsetir_ir as ir;
pub use sparsetir_kernels as kernels;
pub use sparsetir_nn as nn;
pub use sparsetir_smat as smat;

/// Everything the examples and integration tests need, in one import.
pub mod prelude {
    pub use sparsetir_autotune::{random_search, tune_op, tune_spmm, SpmmConfig, TuneResult};
    pub use sparsetir_baselines::prelude::*;
    pub use sparsetir_core::prelude::*;
    pub use sparsetir_engine::{
        Adjacency, Engine, EngineConfig, EngineError, EngineStats, LatencyHistogram, OpBatchWidth,
        OpOutput, OpRequest, Priority, PriorityStats, RejectReason, ShedStats, Submission,
        SubmitOpts, Ticket, DEFAULT_DRIFT_THRESHOLD,
    };
    pub use sparsetir_gpusim::prelude::*;
    pub use sparsetir_graphs::prelude::*;
    pub use sparsetir_ir::prelude::*;
    pub use sparsetir_kernels::prelude::*;
    pub use sparsetir_nn::prelude::*;
    pub use sparsetir_smat::prelude::*;
}
