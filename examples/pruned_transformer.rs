//! Pruned-transformer SpMM (§4.3.2): generate block-pruned and
//! movement-pruned BERT-layer weights, convert them to the formats of
//! Figures 17/19 (BSR, DBSR, SR-BCRS), validate functionally and compare
//! against the cuBLAS dense baseline across a density sweep.
//!
//! Run with: `cargo run --release --example pruned_transformer`

use sparsetir::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::v100();
    let (out_dim, in_dim, seq) = (3072usize, 768usize, 512usize);
    let dense_ms = simulate_kernel(&gpu, &cublas_gemm_fp16_plan(out_dim, seq, in_dim)).time_ms;
    println!("dense cuBLAS fp16 GEMM {out_dim}x{in_dim} × {in_dim}x{seq}: {dense_ms:.3} ms\n");

    println!("structured (block) pruning — Figure 17:");
    println!("{:<10} {:>12} {:>12} {:>10}", "density", "BSR", "DBSR", "zero-rows");
    for (i, density) in figure17_densities().into_iter().enumerate() {
        let w = block_pruned_weight(out_dim, in_dim, density, 0x100 + i as u64);
        let bsr = Bsr::from_csr(&w, 32)?;
        let dbsr = Dbsr::from_bsr(&bsr);
        // Functional check: all three agree on a random activation.
        let mut rng = gen::rng(0x200 + i as u64);
        let x = gen::random_dense(in_dim, 8, &mut rng);
        let reference = w.spmm(&x)?;
        assert!(bsr.spmm(&x)?.approx_eq(&reference, 1e-3));
        assert!(Dbsr::from_bsr(&bsr).to_dense().approx_eq(&w.to_dense(), 0.0));
        let t_bsr =
            simulate_kernel(&gpu, &bsr_weight_spmm_plan(&bsr, seq, PRUNE_TC_EFFICIENCY, "b"))
                .time_ms;
        let t_dbsr = simulate_kernel(
            &gpu,
            &dbsr_weight_spmm_plan(&dbsr, out_dim, seq, PRUNE_TC_EFFICIENCY, "d"),
        )
        .time_ms;
        println!(
            "2^-{:<8} {:>11.2}x {:>11.2}x {:>10}",
            7 - i,
            dense_ms / t_bsr,
            dense_ms / t_dbsr,
            bsr.zero_block_rows()
        );
    }

    println!("\nunstructured (movement) pruning — Figure 19:");
    println!("{:<10} {:>12} {:>12} {:>14}", "density", "SR-BCRS", "BSR", "SR-BCRS stored");
    for (i, density) in figure19_densities().into_iter().enumerate() {
        let w = movement_pruned_weight(out_dim, in_dim, density, 0x300 + i as u64);
        let s = SrBcrs::from_csr(&w, 8, 32)?;
        let bsr = Bsr::from_csr(&w, 32)?;
        let mut rng = gen::rng(0x400 + i as u64);
        let x = gen::random_dense(in_dim, 8, &mut rng);
        assert!(s.spmm(&x)?.approx_eq(&w.spmm(&x)?, 1e-3));
        let t_sr =
            simulate_kernel(&gpu, &srbcrs_weight_spmm_plan(&s, seq, PRUNE_TC_EFFICIENCY, "s"))
                .time_ms;
        let t_bsr =
            simulate_kernel(&gpu, &bsr_weight_spmm_plan(&bsr, seq, PRUNE_TC_EFFICIENCY, "b"))
                .time_ms;
        println!(
            "2^-{:<8} {:>11.2}x {:>11.2}x {:>13.1}%",
            7 - i,
            dense_ms / t_sr,
            dense_ms / t_bsr,
            s.stored_density() * 100.0
        );
    }
    println!(
        "\n(SR-BCRS's t×1 tiles bound intra-tile waste by 1/t; BSR(32) of an \
         unstructured weight densifies toward 100% stored — Figure 18's argument)"
    );
    Ok(())
}
