//! Sparse attention with tensor cores (§4.3.1): build a Longformer band
//! mask and a Pixelated-Butterfly mask, run multi-head SpMM in CSR vs BSR,
//! and demonstrate the `tensorize` schedule primitive rewriting a GEMM
//! loop nest into `mma_sync`.
//!
//! Run with: `cargo run --release --example sparse_attention`

use sparsetir::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AttentionConfig { seq_len: 1024, ..Default::default() };
    let band = band_mask(cfg.seq_len, cfg.band);
    let butterfly = butterfly_mask(cfg.seq_len, cfg.block);
    println!(
        "masks at seq_len {}: band nnz {}, butterfly nnz {}",
        cfg.seq_len,
        band.nnz(),
        butterfly.nnz()
    );

    // Functional check: batched SpMM per head against the reference.
    let mut rng = gen::rng(11);
    let xs: Vec<Dense> =
        (0..3).map(|_| gen::random_dense(cfg.seq_len, cfg.feat, &mut rng)).collect();
    let ys = batched_spmm_reference(&band, &xs)?;
    for (x, y) in xs.iter().zip(&ys) {
        assert!(y.approx_eq(&band.spmm(x)?, 1e-4));
    }
    println!("batched SpMM matches per-head references ✓");

    // Performance: CSR (CUDA cores) vs BSR (tensor cores) vs Triton.
    let gpu = GpuSpec::v100();
    for (name, mask) in [("Longformer", &band), ("Butterfly", &butterfly)] {
        let bsr = Bsr::from_csr(mask, cfg.block)?;
        let t_csr = simulate_kernel(&gpu, &batched_csr_spmm_plan(mask, cfg.feat, cfg.heads, "csr"));
        let t_bsr = simulate_kernel(
            &gpu,
            &batched_bsr_spmm_plan(&bsr, cfg.feat, cfg.heads, SPARSETIR_BSR_EFFICIENCY, "bsr"),
        );
        let t_triton =
            simulate_kernel(&gpu, &triton_blocksparse_spmm_plan(mask, cfg.feat, cfg.heads));
        println!(
            "{name:<10} MH-SpMM: CSR {:.3} ms | BSR+TC {:.3} ms | Triton {:.3} ms → SparseTIR-BSR is {:.2}x of Triton",
            t_csr.time_ms,
            t_bsr.time_ms,
            t_triton.time_ms,
            t_triton.time_ms / t_bsr.time_ms
        );
    }

    // The tensorize primitive: a 16×16×16 GEMM loop nest becomes one
    // mma_sync intrinsic, functionally identical.
    let (m, n, k) = (16i64, 16i64, 16i64);
    let mi = Var::i32("mi");
    let ni = Var::i32("ni");
    let ki = Var::i32("ki");
    let a = Buffer::global_f32("A", vec![Expr::i32(m * k)]);
    let b = Buffer::global_f32("B", vec![Expr::i32(k * n)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(m * n)]);
    let store = Stmt::BufferStore {
        buffer: c.clone(),
        indices: vec![Expr::var(&mi) * n + Expr::var(&ni)],
        value: c.load(vec![Expr::var(&mi) * n + Expr::var(&ni)])
            + a.load(vec![Expr::var(&mi) * k + Expr::var(&ki)])
                * b.load(vec![Expr::var(&ki) * n + Expr::var(&ni)]),
    };
    let body = Stmt::for_serial(
        mi.clone(),
        m,
        Stmt::for_serial(ni.clone(), n, Stmt::for_serial(ki.clone(), k, store)),
    );
    let f = PrimFunc::new("gemm16", vec![], vec![a, b, c], body);
    let mut sch = Schedule::new(f);
    sch.tensorize_gemm("mi", "ni", "ki")?;
    println!("\n--- tensorized 16x16x16 GEMM ---\n{}", print_func(sch.func()));
    Ok(())
}
