//! GNN SpMM with composable formats: decompose a skewed graph into the
//! paper's `hyb(c, k)` format (Figure 11), validate the decomposed program
//! end to end, and autotune the joint format × schedule space (§4.2.1).
//!
//! Run with: `cargo run --release --example gnn_spmm`

use sparsetir::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power-law graph — the degree skew that motivates bucketing.
    let spec_cora = graph_by_name("cora").expect("cora registered");
    let graph = spec_cora.generate();
    let (max_deg, mean_deg, _) = graph.degree_stats();
    println!(
        "graph `{}`: {} nodes, {} edges, degrees max {} / mean {:.1}",
        spec_cora.name,
        graph.rows(),
        graph.nnz(),
        max_deg,
        mean_deg
    );

    // Decompose into hyb(2, k): every (partition, bucket) pair becomes one
    // bucket_ell FormatRewriteRule, exactly as §3.2.1 prescribes.
    let feat = 16;
    let hyb = Hyb::with_default_k(&graph, 2)?;
    println!(
        "hyb(c=2, k={}): {} stored entries, padding {:.1}%",
        hyb.bucket_k(),
        hyb.stored(),
        hyb.padding_ratio() * 100.0
    );

    let program = spmm_program(graph.rows(), graph.cols(), graph.nnz(), feat);
    let mut rules = Vec::new();
    let mut buckets = Vec::new();
    for (pi, part) in hyb.partitions().iter().enumerate() {
        for bucket in &part.buckets {
            if bucket.is_empty() {
                continue;
            }
            let tag = format!("p{pi}_w{}", bucket.width);
            rules.push(FormatRewriteRule::bucket_ell(
                "A",
                &tag,
                bucket.width,
                bucket.len(),
                graph.cols(),
            ));
            buckets.push((tag, bucket.clone()));
        }
    }
    let decomposed = decompose_format(&program, &rules)?.strip_copies();
    println!(
        "decomposed program has {} iterations over {} buffers",
        decomposed.iterations.len(),
        decomposed.buffers.len()
    );

    // Lower and execute the decomposed program on the bucketed storage.
    let func = lower(&decomposed)?;
    let mut rng = gen::rng(7);
    let x = gen::random_dense(graph.cols(), feat, &mut rng);
    let mut bindings = Bindings::new();
    for (tag, bucket) in &buckets {
        bind_bucket(&mut bindings, &format!("A_hyb_{tag}"), &format!("hyb_{tag}"), bucket);
    }
    bind_csr(&mut bindings, "A", "J", &graph);
    bind_dense(&mut bindings, "B", &x);
    bind_zeros(&mut bindings, "C", graph.rows() * feat);
    exec_func(&func, &HashMap::new(), &mut bindings)?;
    let got = read_dense(&bindings, "C", graph.rows(), feat);
    assert!(got.approx_eq(&graph.spmm(&x)?, 1e-3));
    println!("decomposed SpMM matches the CSR reference ✓");

    // Autotune the joint space and compare against the vendor baseline.
    let gpu = GpuSpec::v100();
    let tuned = tune_spmm(&gpu, &graph, 64);
    let vendor = simulate_kernel(&gpu, &cusparse_spmm_plan(&graph, 64));
    println!(
        "tuning explored {} configs; best = {:?} → {:.3} ms vs cuSPARSE {:.3} ms ({:.2}x)",
        tuned.trials,
        tuned.config.col_parts,
        tuned.report.time_ms,
        vendor.time_ms,
        vendor.time_ms / tuned.report.time_ms
    );
    Ok(())
}
