//! End-to-end RGCN inference on a heterograph (§4.4.1, Figure 20): builds
//! an AIFB-like relational graph, runs functional inference, and compares
//! every execution strategy of the figure — two-stage frameworks vs the
//! fused SparseTIR kernels — in time and GPU memory.
//!
//! Run with: `cargo run --release --example rgcn_inference`

use sparsetir::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = hetero_by_name("AIFB").expect("AIFB registered");
    let relations = spec.generate();
    let total_edges: usize = relations.iter().map(|r| r.nnz()).sum();
    println!(
        "heterograph `{}`: {} nodes, {} edges, {} relations",
        spec.name,
        spec.nodes(),
        total_edges,
        relations.len()
    );

    // Functional inference at feature size 32.
    let layer = RgcnLayer::new(relations, 32, 0xEE);
    let mut rng = gen::rng(5);
    let x = gen::random_dense(spec.nodes(), 32, &mut rng);
    let y = layer.infer(&x)?;
    println!("inference output: {} × {} (nnz {})", y.rows(), y.cols(), y.nnz());

    // Figure 20: every system, normalized to Graphiler.
    let gpu = GpuSpec::v100();
    let measurements = figure20_measurements(&gpu, &layer);
    let graphiler =
        measurements.iter().find(|m| m.system == "Graphiler").expect("graphiler present").time_ms;
    println!("\nsystem               speedup   time       GPU memory");
    for m in &measurements {
        println!(
            "{:<20} {:>6.2}x   {:>8.3}ms {:>9.1}MB",
            m.system,
            graphiler / m.time_ms,
            m.time_ms,
            m.footprint_bytes as f64 / 1e6
        );
    }
    println!(
        "\n(the fused SparseTIR kernels avoid materializing T = X·W_r per \
         relation — both the speedup and the memory gap of Figure 20)"
    );
    Ok(())
}
