//! Serving walkthrough: stand up the batched engine over one shared
//! adjacency, hammer it from concurrent client threads, and watch the
//! batching fold same-graph requests into wider kernel launches.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use sparsetir::nn::prelude::{serve_sage_forward, serving_adjacency, GraphSage};
use sparsetir::prelude::*;
use std::sync::Arc;

fn main() {
    // A power-law graph: the degree skew that makes sparse serving
    // interesting (and the hyb decomposition worthwhile).
    let n = 2000;
    let mut rng = gen::rng(0x5e);
    let graph = gen::random_csr_with_row_lengths(
        n,
        n,
        |r| {
            use rand::Rng;
            let u: f64 = r.gen_range(0.0..1.0);
            ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
        },
        &mut rng,
    );
    println!("graph: {} nodes, {} edges", graph.rows(), graph.nnz());

    // One engine per deployment: it owns the kernel cache and the
    // per-adjacency tuning decisions every worker shares.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: Some(std::time::Duration::from_micros(50)),
        ..EngineConfig::default()
    }));

    // --- Raw SpMM serving: 8 clients share one adjacency ------------
    // Each request goes through the `Submission` builder: deadline and
    // priority ride along with the operands, and the engine's admission
    // controller sheds what it cannot serve in time.
    let adj = Adjacency::new(graph.clone());
    let feat = 16;
    let clients = 8;
    let per_client = 16;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let engine = Arc::clone(&engine);
            let adj = adj.clone();
            s.spawn(move || {
                let mut rng = gen::rng(100 + client as u64);
                for _ in 0..per_client {
                    let x = gen::random_dense(n, feat, &mut rng);
                    let y = engine
                        .serve(&adj, Submission::spmm(x).priority(Priority::Normal))
                        .and_then(OpOutput::into_dense)
                        .expect("request served");
                    assert_eq!((y.rows(), y.cols()), (n, feat));
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = engine.stats();
    println!(
        "served {} SpMM requests in {:.1} ms ({:.0} req/s)",
        stats.completed,
        elapsed.as_secs_f64() * 1e3,
        stats.completed as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  kernel dispatches: {} (max batch {}, {:.0}% of requests batched)",
        stats.batches,
        stats.max_batch,
        stats.batching_rate() * 100.0
    );
    println!(
        "  mean latency {:.2} ms, worst {:.2} ms, queue high-water {}",
        stats.mean_latency_ns() / 1e6,
        stats.latency_ns_max as f64 / 1e6,
        stats.queue_high_water
    );
    println!(
        "  compiled kernels: {} ({} compilations for {} requests — compile once, serve many)",
        engine.runtime().cached(),
        engine.runtime().compilations(),
        stats.completed
    );

    // --- The generic op path: SDDMM and attention ride the same queue ---
    // Every op submits through one generic path (Submission → Ticket →
    // OpOutput); same-adjacency SDDMM requests with equal inner widths
    // fold into one widened multi-head launch, attention heads join the
    // SpMM column stack. Deadlines bound queueing: a request the engine
    // cannot answer in time is shed with a typed rejection instead of
    // silently running late.
    let mut rng = gen::rng(77);
    let sddmm_tickets: Vec<_> = (0..4)
        .map(|_| {
            let x = gen::random_dense(n, 8, &mut rng);
            let y = gen::random_dense(8, n, &mut rng);
            let sub = Submission::sddmm(x, y).deadline(std::time::Duration::from_secs(5));
            engine.submit(&adj, sub).expect("submits")
        })
        .collect();
    for t in sddmm_tickets {
        let edges = t.wait_edges().expect("sddmm served");
        assert_eq!(edges.len(), graph.nnz());
    }
    let heads: Vec<Dense> = (0..4).map(|_| gen::random_dense(n, 8, &mut rng)).collect();
    let outs = engine
        .serve(&adj, Submission::attention(heads).priority(Priority::Hi))
        .and_then(OpOutput::into_heads)
        .expect("attention served");
    println!(
        "generic op path: {} SDDMM requests (per-edge outputs) + one {}-head attention request",
        4,
        outs.len()
    );

    // --- Cross-op fused attention: SDDMM → softmax → SpMM, one kernel ---
    // A FusedAttention request carries (Q, Kᵀ, V) per head; the engine
    // compiles the whole pipeline into a single kernel launch (toggle
    // with EngineConfig::fuse / SPARSETIR_NO_FUSE) and same-shape
    // concurrent requests widen into one fused launch.
    let (k, vfeat) = (8, 8);
    let fused_tickets: Vec<_> = (0..4)
        .map(|_| {
            let head = AttnHead {
                q: gen::random_dense(n, k, &mut rng),
                kt: gen::random_dense(k, n, &mut rng),
                v: gen::random_dense(n, vfeat, &mut rng),
            };
            engine.submit(&adj, Submission::fused_attention(vec![head])).expect("submits")
        })
        .collect();
    for t in fused_tickets {
        let outs = t.wait_heads().expect("fused attention served");
        assert_eq!((outs.len(), outs[0].rows(), outs[0].cols()), (1, n, vfeat));
    }
    println!("fused attention: 4 requests served, whole pipeline in one kernel per launch");

    // --- Per-op-kind batching: how wide did each op's launches get? ---
    let stats = engine.stats();
    println!("served batch widths by op kind:");
    for w in &stats.op_widths {
        println!(
            "  {:<16} {} launches, mean width {:.1}, max width {}",
            w.kind,
            w.batches,
            w.mean_width(),
            w.max_width
        );
    }

    // --- SLO accounting: latency percentiles and per-priority counters ---
    // The lock-free log-bucketed histogram answers p50/p95/p99 without
    // per-request allocation; shed/expired counters say what the
    // admission controller refused and why.
    println!(
        "latency percentiles: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        stats.latency.p50() as f64 / 1e6,
        stats.latency.p95() as f64 / 1e6,
        stats.latency.p99() as f64 / 1e6,
    );
    for p in Priority::ALL {
        let ps = stats.priority(p);
        println!(
            "  {:<6} served {}, shed {}, expired {}",
            p.name(),
            ps.served,
            ps.shed,
            ps.expired
        );
    }
    println!(
        "  shed by reason: queue_full {}, deadline_infeasible {}, expired {}",
        stats.shed.queue_full, stats.shed.deadline_infeasible, stats.shed.expired
    );

    // --- GraphSAGE inference through the engine ----------------------
    let model = GraphSage::new(&graph, 16, 16, 4, 7).expect("model");
    let sage_adj = serving_adjacency(&model);
    let mut rng = gen::rng(9);
    let x = gen::random_dense(n, 16, &mut rng);
    let served = serve_sage_forward(&engine, &model, &sage_adj, &x).expect("inference");
    let reference = model.forward(&x).expect("reference").out;
    println!(
        "GraphSAGE inference through the engine: {}x{} output, max |Δ| vs reference = {:.2e}",
        served.rows(),
        served.cols(),
        served.max_abs_diff(&reference)
    );
}
