//! Cross-op fusion walkthrough: compile the whole sparse attention
//! pipeline — SDDMM scores, edge-softmax, SpMM aggregation — into **one**
//! kernel sharing a single non-zero walk, check it bit-for-bit against
//! the three-launch pipeline, then serve it batched through the engine.
//!
//! ```sh
//! cargo run --release --example fused_attention
//! ```

use sparsetir::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 512;
    let mut rng = gen::rng(0xF0);
    let graph = gen::random_csr_with_row_lengths(
        n,
        n,
        |r| {
            use rand::Rng;
            let u: f64 = r.gen_range(0.0..1.0);
            ((2.0 / (u + 0.01)) as usize).clamp(0, n / 4)
        },
        &mut rng,
    );
    let (k, vfeat, heads) = (8, 8, 2);
    println!(
        "sparse attention over {} nodes, {} edges, {heads} heads (k={k}, dv={vfeat})",
        graph.rows(),
        graph.nnz()
    );

    // --- One kernel vs three ------------------------------------------
    // Stacked per-head operands: Q (n × heads·k), Kᵀ (heads·k × n),
    // V (n × heads·dv) — the same layout batched serving widens into.
    let q = gen::random_dense(n, heads * k, &mut rng);
    let kt = gen::random_dense(heads * k, n, &mut rng);
    let v = gen::random_dense(n, heads * vfeat, &mut rng);

    let fused_rt = Runtime::with_fusion(true);
    let fused = fused_attention_launch(&fused_rt, &graph, &q, &kt, &v, heads).expect("fused");
    println!(
        "fused:    {} kernel(s) compiled — score, row-max, exp-sum and aggregate passes share one \
         launch",
        fused_rt.cached()
    );

    let pipeline_rt = Runtime::with_fusion(false);
    let pipeline =
        attention_pipeline_launch(&pipeline_rt, &graph, &q, &kt, &v, heads).expect("pipeline");
    println!("pipeline: {} kernels compiled — SDDMM, edge-softmax, SpMM", pipeline_rt.cached());

    let bit_identical =
        fused.data().iter().zip(pipeline.data()).all(|(a, b)| a.to_bits() == b.to_bits());
    println!("fused vs three-launch pipeline bit-identical: {bit_identical}");
    assert!(bit_identical);

    let reference = fused_attention_reference(&graph, &q, &kt, &v, heads);
    println!("max |Δ| vs f64 reference: {:.2e}", fused.max_abs_diff(&reference));
    assert!(fused.approx_eq(&reference, 1e-4));

    // The fused kernel still hits the dense-lane microkernels: the score
    // pass gathers+scales over feature lanes, the aggregate pass runs
    // coefficient AXPYs over value lanes.
    let f = fused_attention_ir(&graph, heads, k, vfeat).expect("lowering");
    let kinds = Runtime::new().compile(&f).expect("compiles").fused_kinds();
    println!("microkernels in the fused launch: {kinds:?}");

    // --- Batched serving ----------------------------------------------
    // Concurrent same-shape requests widen into one fused launch each
    // dispatch: per-launch fixed costs are paid once per batch, and the
    // whole three-op pipeline is one launch to begin with.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: Some(true),
        batch_window: Some(std::time::Duration::from_micros(50)),
        ..EngineConfig::default()
    }));
    let adj = Adjacency::new(graph.clone());
    let clients = 8;
    let per_client = 8;
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let engine = Arc::clone(&engine);
            let adj = adj.clone();
            s.spawn(move || {
                let mut rng = gen::rng(200 + client as u64);
                for _ in 0..per_client {
                    let head = AttnHead {
                        q: gen::random_dense(n, k, &mut rng),
                        kt: gen::random_dense(k, n, &mut rng),
                        v: gen::random_dense(n, vfeat, &mut rng),
                    };
                    let outs = engine
                        .serve(&adj, Submission::fused_attention(vec![head]))
                        .and_then(OpOutput::into_heads)
                        .expect("served");
                    assert_eq!((outs[0].rows(), outs[0].cols()), (n, vfeat));
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = engine.stats();
    println!(
        "served {} fused-attention requests in {:.1} ms ({:.0} req/s)",
        stats.completed,
        elapsed.as_secs_f64() * 1e3,
        stats.completed as f64 / elapsed.as_secs_f64()
    );
    if let Some(w) = stats.widths_of("fused_attention") {
        println!(
            "  {} launches, mean batch width {:.1}, max width {} — one cross-op kernel per launch",
            w.batches,
            w.mean_width(),
            w.max_width
        );
    }
    println!(
        "  compiled kernels: {} (kill switch SPARSETIR_NO_FUSE or EngineConfig::fuse falls back \
         to the three-launch pipeline)",
        engine.runtime().cached()
    );
}
