//! Quickstart: build the paper's Figure 3 SpMM in the Stage I DSL, lower
//! it through both passes, run it on compressed storage, schedule it for a
//! GPU and emit CUDA — the full SparseTIR pipeline in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use sparsetir::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small random sparse matrix A (8×8, ~30% dense) and dense B (8×4).
    let mut rng = gen::rng(42);
    let a = gen::random_csr(8, 8, 0.3, &mut rng);
    let b = gen::random_dense(8, 4, &mut rng);

    // Stage I: the coordinate-space SpMM program of Figure 3.
    let program = spmm_program(a.rows(), a.cols(), a.nnz(), b.cols());
    println!("--- Stage I (coordinate space) ---\n{}", program.script());

    // Lower: sparse iteration lowering (I→II) + sparse buffer lowering
    // (II→III), yielding a flat, interpretable loop nest (Figures 9–10).
    let stage3 = lower(&program)?;
    println!("--- Stage III (flattened loops) ---\n{}", print_func(&stage3));

    // Execute on compressed storage and check against the reference. The
    // Runtime compiles the function once into a slot-indexed program
    // (no name lookups in the hot loop) and caches it by IR identity, so
    // repeated runs only pay execution.
    let runtime = Runtime::new();
    let kernel = runtime.compile(&stage3)?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", &a);
    bind_dense(&mut bindings, "B", &b);
    bind_zeros(&mut bindings, "C", a.rows() * b.cols());
    kernel.run(&HashMap::new(), &mut bindings)?;
    let c = read_dense(&bindings, "C", a.rows(), b.cols());
    let reference = a.spmm(&b)?;
    assert!(c.approx_eq(&reference, 1e-4), "kernel result matches the reference");
    println!(
        "compiled SpMM ({} scalar slots) matches the smat reference ✓\n",
        kernel.scalar_slots()
    );

    // Stage II/III schedules: bind rows to blocks, features to threads.
    let mut sch = Schedule::new(stage3);
    sch.bind("i", ThreadAxis::BlockIdxX)?;
    sch.bind("k", ThreadAxis::ThreadIdxX)?;
    println!("--- generated CUDA ---\n{}", codegen_cuda(sch.func()));

    // Price the kernel on the simulated V100.
    let spec = GpuSpec::v100();
    let report = simulate_kernel(
        &spec,
        &csr_spmm_plan(&a, b.cols(), CsrSpmmParams::default(), "quickstart_spmm"),
    );
    println!(
        "simulated on {}: {:.3} µs, {} blocks, L2 hit rate {:.0}%",
        spec.name,
        report.time_ms * 1e3,
        report.blocks,
        report.l2_hit_rate * 100.0
    );
    Ok(())
}
