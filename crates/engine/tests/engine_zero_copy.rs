//! Zero-copy serving differential suite: the segmented-view batching
//! path must be bit-identical to the legacy copying contract
//! (`stack`/`launch_stacked`/`split`), which survives behind
//! [`EngineConfig::copy_batch`] as the oracle. Both engines run in one
//! process with the mode pinned through the config — no environment
//! races — across widths 0, 1 and mixed, empty rows (random matrices
//! produce them by construction), 0-head attention riders, and
//! mid-drain expiry.
//!
//! The suite also pins the headline counter: `bytes_copied` stays 0 on
//! the view path — for widened batches *and* the batch-of-one fast path
//! — while the copy oracle visibly pays for its staging.

use proptest::prelude::*;
use sparsetir_engine::{
    Adjacency, Engine, EngineConfig, EngineError, Priority, RejectReason, Submission,
};
use sparsetir_kernels::prelude::AttnHead;
use sparsetir_smat::prelude::*;
use std::time::Duration;

/// Strategy: a small random sparse matrix (dims 1..=max_dim, bounded
/// nnz — empty rows and columns appear often).
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        })
    })
}

/// Strategy: 1..=6 feature widths drawn from {0, 1, 2..=7}.
fn request_widths() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(prop_oneof![Just(0usize), Just(1usize), 2usize..8], 1..7)
}

/// Strategy: per-request fused-attention shapes `(heads, k, vfeat)`,
/// 0-head requests included (they ride with any shape group).
fn fused_attn_shapes() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec(
        (prop_oneof![Just(0usize), Just(1usize), 2usize..4], 1usize..4, 1usize..4),
        1..5,
    )
}

fn engine_with(copy_batch: bool) -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_depth: 32,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        copy_batch,
        ..EngineConfig::default()
    })
}

fn assert_dense_bits(got: &Dense, want: &Dense, tag: &str) -> Result<(), TestCaseError> {
    if (got.rows(), got.cols()) != (want.rows(), want.cols()) {
        return Err(TestCaseError::fail(format!(
            "{tag}: shape {}x{} vs {}x{}",
            got.rows(),
            got.cols(),
            want.rows(),
            want.cols()
        )));
    }
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
        }
    }
    Ok(())
}

fn assert_slice_bits(got: &[f32], want: &[f32], tag: &str) -> Result<(), TestCaseError> {
    if got.len() != want.len() {
        return Err(TestCaseError::fail(format!("{tag}: len {} vs {}", got.len(), want.len())));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
        }
    }
    Ok(())
}

/// The view engine must never copy. (The copy engine's counter can
/// legitimately stay 0 here — a width-≥2 batch of all-zero-width riders
/// stages nothing — so its liveness is pinned by the deterministic
/// forced-batch test below instead.)
fn assert_view_zero_copy(view: &sparsetir_engine::EngineStats) -> Result<(), TestCaseError> {
    prop_assert!(view.bytes_copied == 0, "view path must be zero-copy: {:?}", view);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SpMM: view-path answers vs the copy oracle, bit for bit, across
    /// widths 0/1/mixed.
    #[test]
    fn spmm_view_path_matches_copy_oracle(
        a in sparse_matrix(16, 48),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let xs: Vec<Dense> =
            widths.iter().map(|&w| gen::random_dense(a.cols(), w, &mut rng)).collect();
        let adj = Adjacency::new(a);
        let view = engine_with(false);
        let copy = engine_with(true);
        let view_tickets: Vec<_> = xs
            .iter()
            .map(|x| view.submit(&adj, Submission::spmm(x.clone())).expect("submits"))
            .collect();
        let copy_tickets: Vec<_> = xs
            .iter()
            .map(|x| copy.submit(&adj, Submission::spmm(x.clone())).expect("submits"))
            .collect();
        for (i, (vt, ct)) in view_tickets.into_iter().zip(copy_tickets).enumerate() {
            let got = vt.wait_dense().expect("view engine answers");
            let want = ct.wait_dense().expect("copy engine answers");
            assert_dense_bits(&got, &want, &format!("request {i}"))?;
        }
        assert_view_zero_copy(&view.stats())?;
        drop(copy);
    }

    /// SDDMM: mixed inner widths (compatible requests batch
    /// block-diagonally, incompatible ones dispatch alone), view vs
    /// copy, bit for bit.
    #[test]
    fn sddmm_view_path_matches_copy_oracle(
        a in sparse_matrix(12, 36),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let reqs: Vec<(Dense, Dense)> = widths
            .iter()
            .map(|&k| {
                (gen::random_dense(a.rows(), k, &mut rng), gen::random_dense(k, a.cols(), &mut rng))
            })
            .collect();
        let adj = Adjacency::new(a);
        let view = engine_with(false);
        let copy = engine_with(true);
        let view_tickets: Vec<_> = reqs
            .iter()
            .map(|(x, y)| {
                view.submit(&adj, Submission::sddmm(x.clone(), y.clone())).expect("submits")
            })
            .collect();
        let copy_tickets: Vec<_> = reqs
            .iter()
            .map(|(x, y)| {
                copy.submit(&adj, Submission::sddmm(x.clone(), y.clone())).expect("submits")
            })
            .collect();
        for (i, (vt, ct)) in view_tickets.into_iter().zip(copy_tickets).enumerate() {
            let got = vt.wait_edges().expect("view engine answers");
            let want = ct.wait_edges().expect("copy engine answers");
            assert_slice_bits(&got, &want, &format!("request {i}"))?;
        }
        assert_view_zero_copy(&view.stats())?;
        drop(copy);
    }

    /// Fused attention: mixed per-request head counts and `(k, vfeat)`
    /// shapes, 0-head riders included, view vs copy, bit for bit.
    #[test]
    fn fused_attention_view_path_matches_copy_oracle(
        a in sparse_matrix(12, 36),
        shapes in fused_attn_shapes(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let reqs: Vec<Vec<AttnHead>> = shapes
            .iter()
            .map(|&(heads, k, vfeat)| {
                (0..heads)
                    .map(|_| AttnHead {
                        q: gen::random_dense(a.rows(), k, &mut rng),
                        kt: gen::random_dense(k, a.cols(), &mut rng),
                        v: gen::random_dense(a.cols(), vfeat, &mut rng),
                    })
                    .collect()
            })
            .collect();
        let adj = Adjacency::new(a);
        let view = engine_with(false);
        let copy = engine_with(true);
        let view_tickets: Vec<_> = reqs
            .iter()
            .map(|heads| {
                view.submit(&adj, Submission::fused_attention(heads.clone())).expect("submits")
            })
            .collect();
        let copy_tickets: Vec<_> = reqs
            .iter()
            .map(|heads| {
                copy.submit(&adj, Submission::fused_attention(heads.clone())).expect("submits")
            })
            .collect();
        for (i, (vt, ct)) in view_tickets.into_iter().zip(copy_tickets).enumerate() {
            let got = vt.wait_heads().expect("view engine answers");
            let want = ct.wait_heads().expect("copy engine answers");
            prop_assert_eq!(got.len(), want.len());
            for (h, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_dense_bits(g, w, &format!("request {i} head {h}"))?;
            }
        }
        assert_view_zero_copy(&view.stats())?;
        drop(copy);
    }

    /// Multi-head (unfused) attention: per-request head lists batch
    /// column-wise across requests; view vs copy, bit for bit.
    #[test]
    fn attention_view_path_matches_copy_oracle(
        a in sparse_matrix(12, 36),
        heads_per_req in proptest::collection::vec(
            prop_oneof![Just(0usize), Just(1usize), 2usize..4], 1..5),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let reqs: Vec<Vec<Dense>> = heads_per_req
            .iter()
            .map(|&h| (0..h).map(|_| gen::random_dense(a.cols(), 1 + (h % 4), &mut rng)).collect())
            .collect();
        let adj = Adjacency::new(a);
        let view = engine_with(false);
        let copy = engine_with(true);
        let view_tickets: Vec<_> = reqs
            .iter()
            .map(|heads| view.submit(&adj, Submission::attention(heads.clone())).expect("submits"))
            .collect();
        let copy_tickets: Vec<_> = reqs
            .iter()
            .map(|heads| copy.submit(&adj, Submission::attention(heads.clone())).expect("submits"))
            .collect();
        for (i, (vt, ct)) in view_tickets.into_iter().zip(copy_tickets).enumerate() {
            let got = vt.wait_heads().expect("view engine answers");
            let want = ct.wait_heads().expect("copy engine answers");
            prop_assert_eq!(got.len(), want.len());
            for (h, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_dense_bits(g, w, &format!("request {i} head {h}"))?;
            }
        }
        assert_view_zero_copy(&view.stats())?;
        drop(copy);
    }
}

/// Deterministically force a widened batch: occupy the single worker
/// with a heavy job, queue `riders` compatible requests behind it, and
/// return the engine once everything answered.
fn run_forced_batch(copy_batch: bool, riders: usize) -> (Engine, Vec<Dense>, Vec<Dense>) {
    let mut rng = gen::rng(0x2c0);
    let heavy_adj = Adjacency::new(gen::random_csr(512, 512, 0.1, &mut rng));
    let heavy_x = gen::random_dense(512, 128, &mut rng);
    let small = gen::random_csr(24, 24, 0.3, &mut rng);
    let adj = Adjacency::new(small);
    let xs: Vec<Dense> = (0..riders).map(|i| gen::random_dense(24, 2 + i, &mut rng)).collect();

    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 32,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        copy_batch,
        ..EngineConfig::default()
    });
    let heavy = engine.submit(&heavy_adj, Submission::spmm(heavy_x)).expect("heavy admits");
    // Let the idle worker pop the heavy job so the riders queue up
    // behind it and drain as one widened dispatch.
    std::thread::sleep(Duration::from_millis(20));
    let tickets: Vec<_> = xs
        .iter()
        .map(|x| engine.submit(&adj, Submission::spmm(x.clone())).expect("rider admits"))
        .collect();
    heavy.wait_dense().expect("heavy job serves");
    let outs: Vec<Dense> =
        tickets.into_iter().map(|t| t.wait_dense().expect("rider serves")).collect();
    (engine, xs, outs)
}

/// The acceptance headline: a *batched* SpMM launch on the view path
/// copies zero operand and zero output bytes — the riders' answers land
/// straight in their own buffers.
#[test]
fn batched_spmm_launch_copies_zero_bytes_on_view_path() {
    let (engine, xs, outs) = run_forced_batch(false, 4);
    let stats = engine.stats();
    assert!(stats.max_batch >= 2, "riders must have shared a widened launch: {stats:?}");
    assert_eq!(stats.bytes_copied, 0, "view path must copy nothing: {stats:?}");
    for (x, out) in xs.iter().zip(&outs) {
        assert_eq!((out.rows(), out.cols()), (24, x.cols()));
    }
}

/// The same forced batch under the copy oracle pays for its staging —
/// the counter is live, so the view path's 0 above is meaningful.
#[test]
fn batched_spmm_launch_counts_bytes_on_copy_path() {
    let (engine, xs, _outs) = run_forced_batch(true, 4);
    let stats = engine.stats();
    assert!(stats.max_batch >= 2, "riders must have shared a widened launch: {stats:?}");
    // Lower bound: the operand stack alone re-stages every rider input.
    let operand_bytes: u64 = xs.iter().map(|x| x.data().len() as u64 * 4).sum();
    assert!(
        stats.bytes_copied >= operand_bytes,
        "copy oracle staged {} bytes, expected at least {operand_bytes}: {stats:?}",
        stats.bytes_copied
    );
}

/// Batch-of-one fast path: a lone request of every batchable kind runs
/// end-to-end with zero copies — single-segment views bind the caller's
/// buffers directly.
#[test]
fn batch_of_one_is_zero_copy_end_to_end() {
    let mut rng = gen::rng(0x2c1);
    let a = gen::random_csr(32, 32, 0.25, &mut rng);
    let adj = Adjacency::new(a);
    let engine = engine_with(false);

    let x = gen::random_dense(32, 5, &mut rng);
    engine.serve(&adj, Submission::spmm(x)).expect("spmm serves");

    let (sx, sy) = (gen::random_dense(32, 3, &mut rng), gen::random_dense(3, 32, &mut rng));
    engine.serve(&adj, Submission::sddmm(sx, sy)).expect("sddmm serves");

    let heads = vec![AttnHead {
        q: gen::random_dense(32, 3, &mut rng),
        kt: gen::random_dense(3, 32, &mut rng),
        v: gen::random_dense(32, 4, &mut rng),
    }];
    engine.serve(&adj, Submission::fused_attention(heads)).expect("fused attention serves");

    let stats = engine.stats();
    assert_eq!(stats.completed, 3, "all three singleton requests answered: {stats:?}");
    assert_eq!(stats.bytes_copied, 0, "batch-of-one must be zero-copy: {stats:?}");
}

/// Scratch buffers for the fused-attention pipeline come from the
/// runtime's size-classed pool: serving the same shape twice must hit
/// the pool on the second round.
#[test]
fn repeated_serving_hits_the_buffer_pool() {
    let mut rng = gen::rng(0x2c2);
    let a = gen::random_csr(32, 32, 0.25, &mut rng);
    let adj = Adjacency::new(a);
    let engine = engine_with(false);
    for _ in 0..3 {
        let heads = vec![AttnHead {
            q: gen::random_dense(32, 3, &mut rng),
            kt: gen::random_dense(3, 32, &mut rng),
            v: gen::random_dense(32, 4, &mut rng),
        }];
        engine.serve(&adj, Submission::fused_attention(heads)).expect("serves");
    }
    let stats = engine.stats();
    assert!(stats.pool_misses > 0, "first round must allocate: {stats:?}");
    assert!(stats.pool_hits > 0, "later rounds must reuse pooled scratch: {stats:?}");
}

/// Mid-drain expiry on the view path: a victim whose deadline lapses
/// while the worker grinds a heavy job is swept before dispatch — its
/// live rider still batches and answers, the victim's output buffer is
/// never assembled or written (no launch of its kind beyond the rider's,
/// nothing copied), and the answer is `Rejected { Expired }`.
#[test]
fn expired_victim_is_swept_without_writing_its_buffer() {
    let mut rng = gen::rng(0x2c3);
    let heavy_adj = Adjacency::new(gen::random_csr(1024, 1024, 0.15, &mut rng));
    let heavy_x = gen::random_dense(1024, 256, &mut rng);
    let small = gen::random_csr(24, 24, 0.3, &mut rng);
    let adj = Adjacency::new(small.clone());
    let victim_x = gen::random_dense(24, 3, &mut rng);
    let rider_x = gen::random_dense(24, 4, &mut rng);

    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 16,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        copy_batch: false,
        ..EngineConfig::default()
    });
    let heavy = engine.submit(&heavy_adj, Submission::spmm(heavy_x)).expect("heavy admits");
    std::thread::sleep(Duration::from_millis(10));
    // The victim's deadline is far shorter than the heavy job's runtime,
    // so it expires in the queue; the rider has no deadline and drains.
    let victim = engine
        .submit(&adj, Submission::spmm(victim_x).deadline(Duration::from_millis(1)))
        .expect("victim admits while its deadline is still open");
    let rider = engine.submit(&adj, Submission::spmm(rider_x)).expect("rider admits");

    let res = victim.wait();
    assert!(
        matches!(res, Err(EngineError::Rejected { reason: RejectReason::Expired })),
        "expired victim must answer Rejected {{ Expired }}, got {res:?}"
    );
    heavy.wait_dense().expect("heavy still serves");
    rider.wait_dense().expect("live rider still serves");

    let stats = engine.stats();
    assert_eq!(stats.expired, 1, "exactly the victim expired: {stats:?}");
    assert_eq!(stats.completed, 2, "heavy + rider answered: {stats:?}");
    assert_eq!(stats.priority(Priority::Normal).expired, 1);
    assert_eq!(stats.bytes_copied, 0, "nothing may be staged for the victim: {stats:?}");
    // The victim never reached assembly: every recorded SpMM dispatch is
    // a singleton (heavy, then the rider alone after the sweep).
    let w = stats.widths_of("spmm").expect("spmm dispatched");
    assert_eq!(w.max_width, 1, "the swept victim must not widen any launch: {stats:?}");
    assert_eq!(w.batches, 2, "heavy + rider dispatched exactly once each: {stats:?}");
}
