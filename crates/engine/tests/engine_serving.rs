//! Behavioral tests for the serving engine: correctness of served
//! results, batching under a busy worker, backpressure, shape
//! validation, drain-on-shutdown, and the tuned configuration path.
//!
//! These tests deliberately exercise the deprecated per-op wrappers
//! (`engine.spmm`, `engine.attention`, …) alongside the `Submission`
//! surface: the wrappers are kept as one-line shims and must stay
//! behaviorally identical.
#![allow(deprecated)]

use sparsetir_engine::{Adjacency, Engine, EngineConfig, EngineError};
use sparsetir_ir::exec::Runtime;
use sparsetir_kernels::prelude::{
    attention_pipeline_launch, fused_sage_pipeline_launch, sddmm_execute, tuned_spmm_execute,
    AttnHead, SpmmConfig,
};
use sparsetir_smat::prelude::*;
use std::sync::Arc;

fn power_law_csr(n: usize, seed: u64) -> Csr {
    let mut rng = gen::rng(seed);
    gen::random_csr_with_row_lengths(
        n,
        n,
        |r| {
            use rand::Rng;
            let u: f64 = r.gen_range(0.0..1.0);
            ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
        },
        &mut rng,
    )
}

fn bit_eq(a: &Dense, b: &Dense) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn served_spmm_matches_direct_execution() {
    let mut rng = gen::rng(21);
    let a = gen::random_csr(24, 20, 0.2, &mut rng);
    let x = gen::random_dense(20, 6, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig::default());
    let served = engine.spmm(&adj, x.clone()).expect("serves");
    let direct = tuned_spmm_execute(&a, &x, &SpmmConfig::default_csr()).expect("executes");
    assert!(bit_eq(&served, &direct), "served result must be bit-identical to direct execution");
    assert!(served.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
    let stats = engine.stats();
    assert_eq!((stats.submitted, stats.completed, stats.failed), (1, 1, 0));
    assert!(stats.latency_ns_max > 0);
}

#[test]
fn served_sddmm_matches_direct_execution() {
    let mut rng = gen::rng(22);
    let a = gen::random_csr(12, 10, 0.25, &mut rng);
    let x = gen::random_dense(12, 5, &mut rng);
    let y = gen::random_dense(5, 10, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig::default());
    let served = engine.sddmm(&adj, x.clone(), y.clone()).expect("serves");
    let direct = sddmm_execute(&a, &x, &y).expect("executes");
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(s.to_bits(), d.to_bits());
    }
}

/// A busy single worker accumulates queued same-adjacency requests, which
/// must then dispatch as one wider batch — and every batched result must
/// still be bit-identical to unbatched execution.
#[test]
fn queued_requests_batch_and_stay_bit_identical() {
    let big = power_law_csr(1500, 31);
    let small = power_law_csr(64, 32);
    let adj_big = Adjacency::new(big);
    let adj = Adjacency::new(small.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(33);
    // Occupy the single worker with a heavyweight request (compile +
    // run is milliseconds; the submissions below are microseconds).
    let plug = engine
        .submit_spmm(&adj_big, gen::random_dense(adj_big.csr().cols(), 32, &mut rng))
        .expect("submits");
    let xs: Vec<Dense> = (0..6).map(|_| gen::random_dense(64, 4, &mut rng)).collect();
    let tickets: Vec<_> =
        xs.iter().map(|x| engine.submit_spmm(&adj, x.clone()).expect("submits")).collect();
    plug.wait_dense().expect("plug completes");
    for (x, t) in xs.iter().zip(tickets) {
        let got = t.wait_dense().expect("completes");
        let want = tuned_spmm_execute(&small, x, &SpmmConfig::default_csr()).expect("executes");
        assert!(bit_eq(&got, &want));
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 7);
    assert!(stats.max_batch >= 2, "queued requests should have batched: {stats:?}");
    assert!(
        stats.batches < stats.completed,
        "batching must dispatch fewer kernels than requests: {stats:?}"
    );
}

#[test]
fn try_submit_saturates_on_a_full_queue() {
    let big = power_law_csr(1500, 41);
    let adj_big = Adjacency::new(big.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 1,
        max_batch: 1,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(42);
    // First request occupies the worker for milliseconds; second fills
    // the depth-1 queue; the third must bounce.
    let t1 =
        engine.submit_spmm(&adj_big, gen::random_dense(big.cols(), 32, &mut rng)).expect("submits");
    let t2 =
        engine.submit_spmm(&adj_big, gen::random_dense(big.cols(), 2, &mut rng)).expect("submits");
    let err = engine
        .try_submit_spmm(&adj_big, gen::random_dense(big.cols(), 2, &mut rng))
        .expect_err("queue is full");
    assert_eq!(err, EngineError::Saturated);
    assert_eq!(engine.stats().rejected, 1);
    t1.wait_dense().expect("completes");
    t2.wait_dense().expect("completes");
}

#[test]
fn shape_mismatches_are_rejected_at_submit() {
    let mut rng = gen::rng(51);
    let a = gen::random_csr(10, 8, 0.3, &mut rng);
    let adj = Adjacency::new(a);
    let engine = Engine::new(EngineConfig::default());
    let bad = gen::random_dense(9, 2, &mut rng);
    match engine.submit_spmm(&adj, bad) {
        Err(EngineError::Shape(msg)) => assert!(msg.contains("9 rows"), "{msg}"),
        other => panic!("expected shape error, got {other:?}"),
    }
    let x = gen::random_dense(10, 3, &mut rng);
    let y_bad = gen::random_dense(4, 8, &mut rng); // y.rows != x.cols
    assert!(matches!(engine.submit_sddmm(&adj, x, y_bad), Err(EngineError::Shape(_))));
    assert_eq!(engine.stats().submitted, 0, "rejected requests never enqueue");
}

/// Dropping the engine drains the queue: already-submitted requests are
/// still answered, and submissions after shutdown fail.
#[test]
fn shutdown_drains_pending_requests() {
    let mut rng = gen::rng(61);
    let a = gen::random_csr(40, 40, 0.15, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 4,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let xs: Vec<Dense> = (0..5).map(|_| gen::random_dense(40, 3, &mut rng)).collect();
    let tickets: Vec<_> =
        xs.iter().map(|x| engine.submit_spmm(&adj, x.clone()).expect("submits")).collect();
    drop(engine);
    for (x, t) in xs.iter().zip(tickets) {
        let got = t.wait_dense().expect("drained on shutdown");
        assert!(got.approx_eq(&a.spmm(x).unwrap(), 1e-4));
    }
}

/// Concurrent clients hammering one engine from many threads: every
/// response must be the right answer for *its* request (no cross-request
/// mixups from the batching split), and the counters must reconcile.
#[test]
fn concurrent_clients_get_their_own_answers() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 6;
    let a = power_law_csr(96, 71);
    let adj = Adjacency::new(a.clone());
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_depth: 32,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    }));
    let a = Arc::new(a);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let adj = adj.clone();
            let a = Arc::clone(&a);
            s.spawn(move || {
                let mut rng = gen::rng(100 + client as u64);
                for i in 0..PER_CLIENT {
                    // Mixed widths so the column split-back is exercised.
                    let w = 1 + (client + i) % 5;
                    let x = gen::random_dense(96, w, &mut rng);
                    let got = engine.spmm(&adj, x.clone()).expect("serves");
                    let want = a.spmm(&x).unwrap();
                    assert!(
                        got.approx_eq(&want, 1e-4),
                        "client {client} request {i} got a wrong answer"
                    );
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.failed, 0);
    assert!(stats.queue_high_water >= 1);
}

/// `tune: true` routes the first request of each adjacency through the
/// simulator-backed search exactly once, caches the decision, and keeps
/// serving correct results under the tuned (possibly hyb-decomposed)
/// configuration.
#[test]
fn tuned_engine_caches_one_decision_per_adjacency() {
    let a = power_law_csr(300, 81);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 16,
        max_batch: 4,
        tune: true,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(82);
    for _ in 0..3 {
        let x = gen::random_dense(300, 8, &mut rng);
        let got = engine.spmm(&adj, x.clone()).expect("serves");
        assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-3));
    }
    assert_eq!(engine.tune_cache().len(), 1, "one cached decision for one adjacency");
    assert_eq!(engine.tune_cache().misses(), 1, "only the first batch tunes");
    assert!(engine.tune_cache().hits() >= 1);
}

/// The engine's private runtime caches kernels across requests: repeated
/// same-width requests on one adjacency compile exactly once.
#[test]
fn repeated_requests_reuse_compiled_kernels() {
    let mut rng = gen::rng(91);
    let a = gen::random_csr(32, 32, 0.2, &mut rng);
    let adj = Adjacency::new(a);
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 16,
        max_batch: 1,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    for _ in 0..4 {
        let x = gen::random_dense(32, 4, &mut rng);
        engine.spmm(&adj, x).expect("serves");
    }
    assert_eq!(
        engine.runtime().compilations(),
        1,
        "four same-shape requests must share one compiled kernel"
    );
    assert_eq!(engine.runtime().cached(), 1);
}

/// The generic submit path serves every op through one ticket shape:
/// submit an [`OpRequest`], get an [`OpOutput`], convert with the typed
/// accessors.
#[test]
fn generic_submit_path_serves_every_op() {
    use sparsetir_engine::{OpOutput, OpRequest};
    let mut rng = gen::rng(101);
    let a = gen::random_csr(20, 16, 0.25, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig::default());

    let x = gen::random_dense(16, 4, &mut rng);
    let spmm = engine.serve(&adj, OpRequest::Spmm(x.clone())).expect("spmm serves");
    assert!(matches!(&spmm, OpOutput::Dense(_)));
    assert!(spmm.into_dense().unwrap().approx_eq(&a.spmm(&x).unwrap(), 1e-4));

    let sx = gen::random_dense(20, 3, &mut rng);
    let sy = gen::random_dense(3, 16, &mut rng);
    let sddmm =
        engine.serve(&adj, OpRequest::Sddmm((sx.clone(), sy.clone()))).expect("sddmm serves");
    let edges = sddmm.into_edges().unwrap();
    assert_eq!(edges.len(), a.nnz());

    let heads: Vec<Dense> = (0..3).map(|_| gen::random_dense(16, 2, &mut rng)).collect();
    let attn = engine.serve(&adj, OpRequest::Attention(heads.clone())).expect("attention serves");
    let outs = attn.into_heads().unwrap();
    assert_eq!(outs.len(), heads.len());
    for (h, out) in heads.iter().zip(&outs) {
        assert!(out.approx_eq(&a.spmm(h).unwrap(), 1e-4));
    }

    // An op-mismatched accessor is a typed error, not a panic.
    let again = engine.serve(&adj, OpRequest::Spmm(x)).expect("serves");
    assert!(matches!(again.into_edges(), Err(EngineError::Output(_))));
}

/// A worker panic while holding the queue lock poisons the mutex; the
/// engine must recover — the worker survives, later submits from client
/// threads succeed, and shutdown drains cleanly. Regression test for the
/// poisoned-`Mutex` `.lock().unwrap()` panic that used to cascade into
/// every subsequent `submit_*`/`shutdown` call.
#[test]
fn engine_survives_injected_worker_panic() {
    let mut rng = gen::rng(111);
    let a = gen::random_csr(24, 24, 0.2, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 16,
        max_batch: 4,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    // A request before the crash proves the worker was healthy.
    let x0 = gen::random_dense(24, 3, &mut rng);
    assert!(engine.spmm(&adj, x0).is_ok());

    engine.inject_worker_panic();

    // Submits *after* the induced panic must not panic in the client
    // thread and must still be served by the surviving worker.
    for i in 0..4 {
        let x = gen::random_dense(24, 2 + i % 3, &mut rng);
        let got = engine.spmm(&adj, x.clone()).expect("served after worker panic");
        assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
    }
    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 1, "the injected panic must be counted: {stats:?}");
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 0);
    // Shutdown (Drop) must not hang or panic on the once-poisoned mutex.
    drop(engine);
}

/// Concurrent clients racing an injected panic: nobody observes a client-
/// side panic, every request is answered, and the engine keeps batching.
#[test]
fn concurrent_submits_survive_worker_panic() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let a = power_law_csr(64, 121);
    let adj = Adjacency::new(a.clone());
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_depth: 16,
        max_batch: 4,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    }));
    engine.inject_worker_panic();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let adj = adj.clone();
            let a = a.clone();
            s.spawn(move || {
                let mut rng = gen::rng(500 + client as u64);
                for _ in 0..PER_CLIENT {
                    let x = gen::random_dense(64, 1 + client % 4, &mut rng);
                    let got = engine.spmm(&adj, x.clone()).expect("served");
                    assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.worker_panics, 1);
}

/// SDDMM requests queued behind a busy worker must fold into one
/// block-diagonal batch — and stay bit-identical to unbatched execution.
#[test]
fn queued_sddmm_requests_batch_and_stay_bit_identical() {
    let big = power_law_csr(1500, 131);
    let small = power_law_csr(48, 132);
    let adj_big = Adjacency::new(big);
    let adj = Adjacency::new(small.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(133);
    let plug = engine
        .submit_spmm(&adj_big, gen::random_dense(adj_big.csr().cols(), 32, &mut rng))
        .expect("submits");
    let k = 5;
    let reqs: Vec<(Dense, Dense)> = (0..5)
        .map(|_| (gen::random_dense(48, k, &mut rng), gen::random_dense(k, 48, &mut rng)))
        .collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(x, y)| engine.submit_sddmm(&adj, x.clone(), y.clone()).expect("submits"))
        .collect();
    plug.wait_dense().expect("plug completes");
    for ((x, y), t) in reqs.iter().zip(tickets) {
        let got = t.wait_edges().expect("completes");
        let want = sddmm_execute(&small, x, y).expect("executes");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 6);
    assert!(stats.max_batch >= 2, "queued SDDMM requests should have batched: {stats:?}");
}

/// Mixed-op queues never cross-batch: SpMM and SDDMM requests on one
/// adjacency dispatch as separate launches, and SDDMM requests with
/// different inner widths refuse to share a block-diagonal stack.
#[test]
fn incompatible_requests_do_not_batch() {
    let big = power_law_csr(1500, 141);
    let small = power_law_csr(32, 142);
    let adj_big = Adjacency::new(big);
    let adj = Adjacency::new(small.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(143);
    let plug = engine
        .submit_spmm(&adj_big, gen::random_dense(adj_big.csr().cols(), 32, &mut rng))
        .expect("submits");
    // Two SDDMM inner widths plus one SpMM, all queued behind the plug.
    let s1 = (gen::random_dense(32, 2, &mut rng), gen::random_dense(2, 32, &mut rng));
    let s2 = (gen::random_dense(32, 3, &mut rng), gen::random_dense(3, 32, &mut rng));
    let t1 = engine.submit_sddmm(&adj, s1.0.clone(), s1.1.clone()).expect("submits");
    let t2 = engine.submit_sddmm(&adj, s2.0.clone(), s2.1.clone()).expect("submits");
    let x = gen::random_dense(32, 4, &mut rng);
    let t3 = engine.submit_spmm(&adj, x.clone()).expect("submits");
    plug.wait_dense().expect("plug completes");
    let got1 = t1.wait_edges().expect("completes");
    let got2 = t2.wait_edges().expect("completes");
    let got3 = t3.wait_dense().expect("completes");
    for (got, (sx, sy)) in [(got1, &s1), (got2, &s2)] {
        let want = sddmm_execute(&small, sx, sy).expect("executes");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
    assert!(got3.approx_eq(&small.spmm(&x).unwrap(), 1e-4));
    let stats = engine.stats();
    // plug + three incompatible dispatches = four separate batches.
    assert_eq!(stats.batches, 4, "{stats:?}");
    assert_eq!(stats.max_batch, 1, "{stats:?}");
}

fn random_head(a: &Csr, k: usize, vfeat: usize, rng: &mut rand::rngs::SmallRng) -> AttnHead {
    AttnHead {
        q: gen::random_dense(a.rows(), k, rng),
        kt: gen::random_dense(k, a.cols(), rng),
        v: gen::random_dense(a.cols(), vfeat, rng),
    }
}

/// The fused ops serve through the same generic path as everything else,
/// and their answers are bit-identical to the multi-launch pipeline run
/// outside the engine — serving adds batching, not rounding.
#[test]
fn served_fused_ops_match_their_pipeline_oracles() {
    let mut rng = gen::rng(151);
    let a = gen::random_csr(24, 20, 0.2, &mut rng);
    let adj = Adjacency::new(a.clone());
    let engine = Engine::new(EngineConfig { fuse: Some(true), ..EngineConfig::default() });

    let head = random_head(&a, 4, 3, &mut rng);
    let got = engine.fused_attention(&adj, vec![head.clone()]).expect("serves");
    assert_eq!(got.len(), 1);
    let oracle = attention_pipeline_launch(&Runtime::new(), &a, &head.q, &head.kt, &head.v, 1)
        .expect("pipeline oracle");
    assert!(bit_eq(&got[0], &oracle), "served fused attention must match the three-launch oracle");

    let x = gen::random_dense(20, 5, &mut rng);
    let w = gen::random_dense(5, 3, &mut rng);
    let sage = engine.fused_sage(&adj, x.clone(), w.clone()).expect("serves");
    let sage_oracle =
        fused_sage_pipeline_launch(&Runtime::new(), &a, &x, &w).expect("pipeline oracle");
    assert!(bit_eq(&sage, &sage_oracle), "served fused sage must match the two-launch oracle");

    let stats = engine.stats();
    assert_eq!(stats.widths_of("fused_attention").map(|h| h.batches), Some(1));
    assert_eq!(stats.widths_of("fused_sage").map(|h| h.batches), Some(1));
}

/// Toggling [`EngineConfig::fuse`] must *recompile* through the fresh
/// runtime rather than serve a stale cached kernel: the fused engine
/// caches one cross-op kernel, the unfused engine caches the pipeline's
/// three, and both answer bit-identically.
#[test]
fn engine_fuse_toggle_recompiles_instead_of_serving_stale_kernels() {
    let mut rng = gen::rng(161);
    let a = gen::random_csr(20, 18, 0.25, &mut rng);
    let adj = Adjacency::new(a.clone());
    let head = random_head(&a, 3, 2, &mut rng);

    let fused = Engine::new(EngineConfig { fuse: Some(true), ..EngineConfig::default() });
    let unfused = Engine::new(EngineConfig { fuse: Some(false), ..EngineConfig::default() });
    assert!(fused.runtime().fusion());
    assert!(!unfused.runtime().fusion());

    let yes = fused.fused_attention(&adj, vec![head.clone()]).expect("serves");
    let no = unfused.fused_attention(&adj, vec![head.clone()]).expect("serves");
    assert_eq!(fused.runtime().cached(), 1, "fused path is one cross-op kernel");
    assert_eq!(unfused.runtime().cached(), 3, "unfused path is the three-launch pipeline");
    assert!(bit_eq(&yes[0], &no[0]), "both modes must agree bit-for-bit");

    // Re-serving hits each engine's cache: no recompilation either way.
    fused.fused_attention(&adj, vec![head.clone()]).expect("serves");
    unfused.fused_attention(&adj, vec![head]).expect("serves");
    assert_eq!(fused.runtime().compilations(), 1);
    assert_eq!(unfused.runtime().compilations(), 3);
}

/// Fused attention requests queued behind a busy worker fold into one
/// widened launch — but only compatible `(k, vfeat)` shapes share it —
/// and the per-op-kind width histogram records exactly that.
#[test]
fn queued_fused_attention_batches_and_the_width_histogram_records_it() {
    let big = power_law_csr(1500, 171);
    let small = power_law_csr(48, 172);
    let adj_big = Adjacency::new(big);
    let adj = Adjacency::new(small.clone());
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 64,
        max_batch: 8,
        tune: false,
        fuse: Some(true),
        batch_window: None,
        ..EngineConfig::default()
    });
    let mut rng = gen::rng(173);
    let plug = engine
        .submit_spmm(&adj_big, gen::random_dense(adj_big.csr().cols(), 32, &mut rng))
        .expect("submits");
    // Two compatible (k=2, vfeat=2) requests plus one incompatible
    // (k=3, vfeat=2): the pair must share a launch, the odd one out must
    // dispatch alone.
    let reqs: Vec<Vec<AttnHead>> = vec![
        vec![random_head(&small, 2, 2, &mut rng)],
        vec![random_head(&small, 2, 2, &mut rng), random_head(&small, 2, 2, &mut rng)],
        vec![random_head(&small, 3, 2, &mut rng)],
    ];
    let tickets: Vec<_> = reqs
        .iter()
        .map(|heads| engine.submit_fused_attention(&adj, heads.clone()).expect("submits"))
        .collect();
    plug.wait_dense().expect("plug completes");
    for (heads, t) in reqs.iter().zip(tickets) {
        let got = t.wait_heads().expect("completes");
        assert_eq!(got.len(), heads.len());
        for (head, out) in heads.iter().zip(&got) {
            let want =
                attention_pipeline_launch(&Runtime::new(), &small, &head.q, &head.kt, &head.v, 1)
                    .expect("pipeline oracle");
            assert!(bit_eq(out, &want), "batched fused attention must match the oracle");
        }
    }
    let stats = engine.stats();
    let widths = stats.widths_of("fused_attention").expect("histogram has the kind");
    assert_eq!(widths.batches, 2, "compatible pair + lone incompatible: {stats:?}");
    assert_eq!(widths.width_sum, 3);
    assert_eq!(widths.max_width, 2);
    assert!((widths.mean_width() - 1.5).abs() < 1e-9);
    let spmm = stats.widths_of("spmm").expect("the plug was an spmm");
    assert_eq!((spmm.batches, spmm.max_width), (1, 1));
}
