//! Dynamic-graph serving tests: the engine's incremental-update path
//! (`Engine::apply_delta`) against rebuild-from-scratch, and the
//! stale-while-retune state machine around the drift threshold.
//!
//! The headline property: for arbitrary proptest-generated streams of
//! edge inserts/deletes interleaved with SpMM / SDDMM / fused-attention
//! queries, the incrementally-patched adjacency answers **bit-identically**
//! to an adjacency rebuilt from scratch out of the updated edge set.
//! The deterministic tests pin the tuning state machine: a delta below
//! the drift threshold recompiles nothing (`Runtime::compilations()` is
//! flat) and skips the retune; a delta above it triggers exactly one
//! background retune while requests keep being answered from the
//! pre-seeded stale decision — no serving gap.

use proptest::prelude::*;
use sparsetir_engine::{Adjacency, Engine, EngineConfig, EngineError, OpOutput, Submission};
use sparsetir_kernels::prelude::AttnHead;
use sparsetir_smat::prelude::*;
use std::collections::BTreeMap;

fn dynamic_engine(tune: bool) -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_depth: 32,
        max_batch: 8,
        tune,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    })
}

/// Strategy: a base matrix plus a stream of delta batches against its
/// shape (upserts, explicit-zero upserts, deletes — often of absent
/// edges, which must be no-ops).
fn base_and_stream(
    max_dim: usize,
    max_nnz: usize,
    batches: usize,
) -> impl Strategy<Value = (Csr, Vec<GraphDelta>)> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        let base = proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        });
        let op = (
            0..rows as u32,
            0..cols as u32,
            prop_oneof![
                (0.1f32..2.0f32).prop_map(Some),
                (0.1f32..2.0f32).prop_map(Some),
                (0.1f32..2.0f32).prop_map(Some),
                Just(Some(0.0f32)),
                Just(None),
                Just(None),
            ],
        );
        let stream =
            proptest::collection::vec(proptest::collection::vec(op, 1..10), 1..batches + 1)
                .prop_map(|batches| {
                    batches
                        .into_iter()
                        .map(|ops| {
                            let mut d = GraphDelta::new();
                            for (r, c, v) in ops {
                                match v {
                                    Some(v) => d.upsert(r, c, v),
                                    None => d.delete(r, c),
                                };
                            }
                            d
                        })
                        .collect::<Vec<_>>()
                })
                .boxed();
        (base, stream)
    })
}

/// Rebuild-from-scratch oracle: replay base + deltas through an edge map.
fn oracle_after(base: &Csr, deltas: &[GraphDelta]) -> Csr {
    let mut edges: BTreeMap<(u32, u32), f32> = BTreeMap::new();
    for r in 0..base.rows() {
        let (cols, vals) = base.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            edges.insert((r as u32, c), v);
        }
    }
    for d in deltas {
        for &(r, c, v) in d.normalized_ops().iter() {
            match v {
                Some(v) => {
                    edges.insert((r, c), v);
                }
                None => {
                    edges.remove(&(r, c));
                }
            }
        }
    }
    let entries: Vec<(u32, u32, f32)> = edges.into_iter().map(|((r, c), v)| (r, c, v)).collect();
    Csr::from_coo(&Coo::from_entries(base.rows(), base.cols(), entries).expect("in-bounds"))
}

/// Build the query for step `step` against a matrix of this shape:
/// cycles through the three served op families.
fn query_for(step: usize, rows: usize, cols: usize, seed: u64) -> Submission {
    let rng = &mut gen::rng(seed.wrapping_add(step as u64));
    let k = 1 + step % 3;
    match step % 3 {
        0 => Submission::spmm(gen::random_dense(cols, k, rng)),
        1 => Submission::sddmm(gen::random_dense(rows, k, rng), gen::random_dense(k, cols, rng)),
        _ => Submission::fused_attention(vec![AttnHead {
            q: gen::random_dense(rows, k, rng),
            kt: gen::random_dense(k, cols, rng),
            v: gen::random_dense(cols, 2, rng),
        }]),
    }
}

fn outputs_bit_eq(a: &OpOutput, b: &OpOutput) -> Result<(), TestCaseError> {
    let dense_eq = |x: &Dense, y: &Dense, tag: &str| -> Result<(), TestCaseError> {
        if (x.rows(), x.cols()) != (y.rows(), y.cols()) {
            return Err(TestCaseError::fail(format!("{tag}: shape mismatch")));
        }
        for (i, (g, w)) in x.data().iter().zip(y.data()).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
            }
        }
        Ok(())
    };
    match (a, b) {
        (OpOutput::Dense(x), OpOutput::Dense(y)) => dense_eq(x, y, "dense"),
        (OpOutput::Edges(x), OpOutput::Edges(y)) => {
            if x.len() != y.len() {
                return Err(TestCaseError::fail("edges: length mismatch"));
            }
            for (i, (g, w)) in x.iter().zip(y).enumerate() {
                if g.to_bits() != w.to_bits() {
                    return Err(TestCaseError::fail(format!("edges: elem {i}: {g} vs {w}")));
                }
            }
            Ok(())
        }
        (OpOutput::Heads(xs), OpOutput::Heads(ys)) => {
            if xs.len() != ys.len() {
                return Err(TestCaseError::fail("heads: count mismatch"));
            }
            for (h, (x, y)) in xs.iter().zip(ys).enumerate() {
                dense_eq(x, y, &format!("head {h}"))?;
            }
            Ok(())
        }
        _ => Err(TestCaseError::fail("output variant mismatch")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleaved update/query streams: after every delta
    /// batch, the engine-served answers on the incrementally-patched
    /// adjacency are bit-identical to the answers on an adjacency rebuilt
    /// from scratch — across all three served op families.
    #[test]
    fn incremental_serving_matches_rebuild_from_scratch(
        case in base_and_stream(10, 30, 4),
        seed in 0u64..1 << 32,
    ) {
        let (base, stream) = case;
        let (rows, cols) = (base.rows(), base.cols());
        let engine = dynamic_engine(false);
        let mut inc = Adjacency::new(base.clone());
        for (step, _) in stream.iter().enumerate() {
            inc = engine.apply_delta(&inc, &stream[step]).expect("in-bounds delta");
            let rebuilt = Adjacency::new(oracle_after(&base, &stream[..=step]));
            // The patched matrix itself is bit-identical to the rebuild…
            prop_assert_eq!(inc.csr(), rebuilt.csr());
            prop_assert_eq!(inc.version(), step as u64 + 1);
            // …and so is everything the engine serves from it.
            let query = query_for(step, rows, cols, seed);
            let from_inc = engine.serve(&inc, query.clone()).expect("serves incremental");
            let from_rebuild = engine.serve(&rebuilt, query).expect("serves rebuild");
            outputs_bit_eq(&from_inc, &from_rebuild)?;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.deltas_applied, stream.len() as u64);
        // Every delta either kept the anchor or started a retune pass.
        prop_assert_eq!(stats.retunes_skipped + stats.retunes_started, stream.len() as u64);
    }
}

/// A values-only (nnz-preserving) delta below the drift threshold leaves
/// the tuning anchor in place: the successor serves through the same
/// cached tune decision and the same compiled kernels — zero
/// recompilations, asserted via `Runtime::compilations()` — while its
/// answers reflect the *new* values.
#[test]
fn below_threshold_delta_recompiles_nothing() {
    let mut rng = gen::rng(0x71);
    let n = 8;
    // Diagonal matrix: every row degree 1.
    let base = Csr::from_coo(
        &Coo::from_entries(n, n, (0..n as u32).map(|i| (i, i, 1.0f32)).collect::<Vec<_>>())
            .expect("in-bounds"),
    );
    let engine = dynamic_engine(true);
    let adj0 = Adjacency::new(base);
    let x = gen::random_dense(n, 4, &mut rng);

    engine.serve(&adj0, Submission::spmm(x.clone())).expect("warms kernel and tune cache");
    let compiled_before = engine.runtime().compilations();
    let misses_before = engine.tune_cache().misses();
    assert_eq!(misses_before, 1, "the warmup tuned once");

    // Re-weight every diagonal edge: structure (and hence the degree
    // histogram) is untouched, so drift is exactly zero.
    let mut delta = GraphDelta::new();
    for i in 0..n as u32 {
        delta.upsert(i, i, 2.0 + i as f32);
    }
    let adj1 = engine.apply_delta(&adj0, &delta).expect("in-bounds delta");
    assert_eq!(adj1.version(), 1);
    assert_eq!(adj1.anchor(), adj0.anchor(), "below threshold keeps the tuning anchor");

    let served = engine
        .serve(&adj1, Submission::spmm(x.clone()))
        .expect("serves the successor")
        .into_dense()
        .expect("dense");
    let reference = adj1.csr().spmm(&x).expect("reference");
    assert!(
        served.approx_eq(&reference, 1e-4),
        "the successor must serve the *updated* values (max |Δ| = {})",
        served.max_abs_diff(&reference)
    );
    assert_eq!(
        engine.runtime().compilations(),
        compiled_before,
        "an nnz-preserving below-threshold delta must recompile nothing"
    );
    assert_eq!(engine.tune_cache().misses(), misses_before, "no re-tune either");

    let stats = engine.stats();
    assert_eq!(stats.deltas_applied, 1);
    assert_eq!(stats.retunes_skipped, 1);
    assert_eq!(stats.retunes_started, 0);
    assert_eq!(stats.retunes_completed, 0);
}

/// A delta that moves every row across a log2-degree bucket boundary
/// drifts far past the threshold: the successor re-anchors, exactly one
/// background retune pass runs, and the requests issued while it is in
/// flight are answered from the pre-seeded stale decision — the tune
/// cache records no extra miss at any point (no serving gap).
#[test]
fn above_threshold_delta_retunes_exactly_once_without_serving_gap() {
    let mut rng = gen::rng(0x72);
    let n = 16;
    let base = Csr::from_coo(
        &Coo::from_entries(n, n, (0..n as u32).map(|i| (i, i, 1.0f32)).collect::<Vec<_>>())
            .expect("in-bounds"),
    );
    let engine = dynamic_engine(true);
    let adj0 = Adjacency::new(base);
    let x = gen::random_dense(n, 4, &mut rng);
    engine.serve(&adj0, Submission::spmm(x.clone())).expect("warms kernel and tune cache");
    assert_eq!(engine.tune_cache().misses(), 1);

    // Add a second edge to every row: every row's degree doubles, the
    // whole histogram shifts a bin — drift 2.0 >> 0.1.
    let mut delta = GraphDelta::new();
    for i in 0..n as u32 {
        delta.upsert(i, (i + 1) % n as u32, 0.5);
    }
    let adj1 = engine.apply_delta(&adj0, &delta).expect("in-bounds delta");
    assert_eq!(adj1.version(), 1);
    assert_ne!(adj1.anchor(), adj0.anchor(), "above threshold re-anchors");
    assert_eq!(adj1.anchor(), adj1.sparsity(), "the new anchor is the successor's own fingerprint");
    assert_eq!(engine.stats().retunes_started, 1, "exactly one retune pass");

    // Serve immediately — the background retune may still be running;
    // the stale decision pre-seeded under the new anchor must answer.
    let served = engine
        .serve(&adj1, Submission::spmm(x.clone()))
        .expect("no serving gap while the retune is in flight")
        .into_dense()
        .expect("dense");
    let reference = adj1.csr().spmm(&x).expect("reference");
    assert!(served.approx_eq(&reference, 1e-4), "stale-config answers are still correct");
    assert_eq!(engine.tune_cache().misses(), 1, "the stale seed hit — no blocking re-tune");

    engine.quiesce_retunes();
    let stats = engine.stats();
    assert_eq!(stats.deltas_applied, 1);
    assert_eq!(stats.retunes_started, 1);
    assert_eq!(stats.retunes_completed, 1, "the background pass finished");
    assert_eq!(stats.retunes_in_flight(), 0);
    assert_eq!(stats.retunes_skipped, 0);
    assert_eq!(stats.worker_panics, 0, "the retune thread must not have panicked");

    // After the swap, requests hit the *fresh* decision — still no miss.
    let again = engine
        .serve(&adj1, Submission::spmm(x.clone()))
        .expect("serves after the swap")
        .into_dense()
        .expect("dense");
    assert!(again.approx_eq(&reference, 1e-4));
    assert_eq!(engine.tune_cache().misses(), 1);
}

/// A delta addressing rows/columns outside the adjacency is refused with
/// a typed shape error, and the adjacency is left untouched.
#[test]
fn out_of_bounds_delta_is_a_shape_error() {
    let base =
        Csr::from_coo(&Coo::from_entries(4, 4, vec![(0u32, 0u32, 1.0f32)]).expect("in-bounds"));
    let engine = dynamic_engine(false);
    let adj = Adjacency::new(base);
    let mut delta = GraphDelta::new();
    delta.upsert(9, 0, 1.0);
    let err = engine.apply_delta(&adj, &delta).expect_err("out of bounds");
    assert!(matches!(err, EngineError::Shape(_)), "typed shape refusal, got {err:?}");
    assert_eq!(adj.version(), 0);
    assert_eq!(engine.stats().deltas_applied, 0, "a refused delta is not counted as applied");
}
