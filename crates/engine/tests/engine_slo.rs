//! SLO-machinery tests: expired-at-drain shedding (the refused request's
//! operands must never reach a kernel), exact quantiles out of the
//! log-bucketed latency histogram on a known stream, and priority
//! scheduling under a saturating low-priority flood.

use proptest::prelude::*;
use sparsetir_engine::{
    Adjacency, Engine, EngineConfig, EngineError, LatencyHistogram, Priority, RejectReason,
    Submission,
};
use sparsetir_smat::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn slo_config() -> EngineConfig {
    EngineConfig {
        workers: 1,
        queue_depth: 16,
        max_batch: 4,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    }
}

/// One expired-at-drain scenario: a heavy SpMM occupies the single
/// worker while a cheap SDDMM victim of shape `(sn, k)` with a deadline
/// far shorter than the occupant's runtime waits in the queue.
fn expired_at_drain_case(seed: u64, sn: usize, k: usize) {
    let mut rng = gen::rng(seed);
    // Heavy occupant: a dense-ish SpMM that keeps the worker busy far
    // longer than the victim's deadline.
    let heavy_graph = gen::random_csr(1024, 1024, 0.15, &mut rng);
    let heavy_adj = Adjacency::new(heavy_graph);
    let heavy_x = gen::random_dense(1024, 256, &mut rng);
    // Cheap victim: an SDDMM on a small graph. Its op kind has no
    // execution estimate yet, so admission optimistically accepts it.
    let small_graph = gen::random_csr(sn, sn, 0.3, &mut rng);
    let small_adj = Adjacency::new(small_graph);
    let sx = gen::random_dense(sn, k, &mut rng);
    let sy = gen::random_dense(k, sn, &mut rng);

    let engine = Engine::new(slo_config());
    let heavy = engine.submit(&heavy_adj, Submission::spmm(heavy_x)).expect("heavy admits");
    // Let the idle worker pop the heavy job before the victim arrives.
    std::thread::sleep(Duration::from_millis(10));
    let victim = engine
        .submit(&small_adj, Submission::sddmm(sx, sy).deadline(Duration::from_millis(1)))
        .expect("victim admits: deadline is in the future and the kind is cold");

    let res = victim.wait();
    assert!(
        matches!(res, Err(EngineError::Rejected { reason: RejectReason::Expired })),
        "expired-at-drain must answer Rejected {{ Expired }}, got {res:?}"
    );
    heavy.wait_dense().expect("heavy job still serves");

    let stats = engine.stats();
    assert_eq!(stats.expired, 1, "exactly the victim expired: {stats:?}");
    assert_eq!(stats.completed, 1, "only the heavy job executed");
    assert_eq!(stats.priority(Priority::Normal).expired, 1);
    // Drain-time expiry is its own counter: the request *was* admitted,
    // so the admission-shed tallies stay untouched.
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.shed.total(), 0);
    // The proof the operands never reached a kernel: only the heavy
    // SpMM was ever compiled, and no SDDMM batch was launched.
    assert_eq!(engine.runtime().cached(), 1, "no kernel may be compiled for the shed SDDMM");
    assert!(stats.widths_of("sddmm").is_none(), "no SDDMM launch may be recorded");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A request that was admissible at submit time but whose deadline
    /// lapses while the single worker grinds through a long-running job
    /// is answered `Rejected { reason: Expired }` at drain — and its
    /// operands never reach `execute_batch_on`: across random victim
    /// shapes the engine compiles no kernel for it and completes no
    /// request for it.
    #[test]
    fn expired_at_drain_is_shed_without_executing(
        seed in 0x51u64..0x61,
        sn in 8usize..32,
        k in 1usize..6,
    ) {
        expired_at_drain_case(seed, sn, k);
    }
}

/// The log-bucketed histogram answers exact percentiles for a stream of
/// power-of-two latencies (each sample sits on its bucket's lower
/// bound): 50×1µs-ish, 45×64µs-ish, 5×1ms-ish.
#[test]
fn histogram_percentiles_are_exact_on_a_known_stream() {
    let mut h = LatencyHistogram::default();
    for _ in 0..50 {
        h.record(1 << 10);
    }
    for _ in 0..45 {
        h.record(1 << 16);
    }
    for _ in 0..5 {
        h.record(1 << 20);
    }
    assert_eq!(h.count(), 100);
    assert_eq!(h.p50(), 1 << 10, "rank 50 lands on the last 2^10 sample");
    assert_eq!(h.p95(), 1 << 16, "rank 95 lands on the last 2^16 sample");
    assert_eq!(h.p99(), 1 << 20, "rank 99 lands in the 2^20 bucket");
    assert_eq!(h.quantile(0.0), 1 << 10, "rank clamps to the first sample");
    assert_eq!(h.quantile(1.0), 1 << 20, "rank 100 is the maximum bucket");
    // Off-power samples floor to their bucket's lower bound.
    let mut h2 = LatencyHistogram::default();
    h2.record(1500);
    assert_eq!(h2.p50(), 1 << 10);
}

/// The admission eviction path, pinned end to end: with the single
/// worker occupied and the queue full of Lo work, a Hi submission takes
/// the queue tail's slot. The evicted victim is answered
/// `Rejected { QueueFull }` (exactly once — its shed is tallied once,
/// under *its own* priority class, and it never executes), everything
/// else completes.
#[test]
fn eviction_victim_is_answered_queue_full_exactly_once() {
    let mut rng = gen::rng(0x53);
    let heavy_adj = Adjacency::new(gen::random_csr(1024, 1024, 0.15, &mut rng));
    let heavy_x = gen::random_dense(1024, 256, &mut rng);
    let small_adj = Adjacency::new(gen::random_csr(32, 32, 0.3, &mut rng));
    let x = gen::random_dense(32, 4, &mut rng);

    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 2,
        max_batch: 1,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let heavy = engine.submit(&heavy_adj, Submission::spmm(heavy_x)).expect("heavy admits");
    // Let the idle worker pop the heavy job so the queue is free.
    std::thread::sleep(Duration::from_millis(10));
    let lo_kept = engine
        .try_submit(&small_adj, Submission::spmm(x.clone()).priority(Priority::Lo))
        .expect("first Lo fills slot 1");
    let lo_victim = engine
        .try_submit(&small_adj, Submission::spmm(x.clone()).priority(Priority::Lo))
        .expect("second Lo fills slot 2");
    // Queue full of Lo: the Hi submission must evict the tail, not be
    // refused.
    let hi = engine
        .try_submit(&small_adj, Submission::spmm(x.clone()).priority(Priority::Hi))
        .expect("Hi evicts a Lo victim instead of being rejected");

    let res = lo_victim.wait();
    assert!(
        matches!(res, Err(EngineError::Rejected { reason: RejectReason::QueueFull })),
        "the evicted victim must be answered Rejected {{ QueueFull }}, got {res:?}"
    );
    heavy.wait_dense().expect("heavy serves");
    lo_kept.wait_dense().expect("surviving Lo serves");
    hi.wait_dense().expect("evicting Hi serves");

    let stats = engine.stats();
    assert_eq!(stats.completed, 3, "heavy + surviving Lo + Hi; the victim never executed");
    assert_eq!(stats.rejected, 1, "exactly one shed event");
    assert_eq!(stats.shed.queue_full, 1, "tagged as a full-queue shed");
    assert_eq!(stats.priority(Priority::Lo).shed, 1, "counted under the VICTIM's class");
    assert_eq!(stats.priority(Priority::Lo).served, 1);
    assert_eq!(stats.priority(Priority::Hi).shed, 0, "the evictor sheds nothing");
    assert_eq!(stats.priority(Priority::Hi).served, 1, "the evicting Hi request");
    assert_eq!(stats.priority(Priority::Normal).served, 1, "the heavy occupant");
}

/// An equal-priority submission never evicts: against a full queue of
/// its own class it is the one refused, every queued ticket completes,
/// and the shed is tallied under the *submitter's* priority.
#[test]
fn equal_priority_submission_never_evicts() {
    let mut rng = gen::rng(0x54);
    let heavy_adj = Adjacency::new(gen::random_csr(1024, 1024, 0.15, &mut rng));
    let heavy_x = gen::random_dense(1024, 256, &mut rng);
    let small_adj = Adjacency::new(gen::random_csr(32, 32, 0.3, &mut rng));
    let x = gen::random_dense(32, 4, &mut rng);

    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 2,
        max_batch: 1,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    });
    let heavy = engine.submit(&heavy_adj, Submission::spmm(heavy_x)).expect("heavy admits");
    std::thread::sleep(Duration::from_millis(10));
    let queued: Vec<_> = (0..2)
        .map(|i| {
            engine
                .try_submit(&small_adj, Submission::spmm(x.clone()))
                .unwrap_or_else(|e| panic!("Normal request {i} fills the queue: {e:?}"))
        })
        .collect();
    let res = engine.try_submit(&small_adj, Submission::spmm(x.clone()));
    assert!(
        matches!(res, Err(EngineError::Rejected { reason: RejectReason::QueueFull })),
        "an equal-priority submission must be refused, not evict: {res:?}"
    );
    for (i, t) in queued.into_iter().enumerate() {
        t.wait_dense().unwrap_or_else(|e| panic!("queued request {i} must survive: {e:?}"));
    }
    heavy.wait_dense().expect("heavy serves");

    let stats = engine.stats();
    assert_eq!(stats.completed, 3, "heavy + both queued requests");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.shed.queue_full, 1);
    assert_eq!(stats.priority(Priority::Normal).shed, 1, "counted under the SUBMITTER's class");
    assert_eq!(stats.priority(Priority::Normal).served, 3);
}

/// A saturating Lo-priority flood cannot starve Hi traffic: with the
/// queue permanently full of Lo work, every blocking Hi submission is
/// admitted (evicting a Lo victim if needed), ordered ahead of the
/// backlog, and served within its deadline.
#[test]
fn hi_priority_is_never_starved_by_a_lo_flood() {
    let mut rng = gen::rng(0x52);
    let graph = gen::random_csr(64, 64, 0.2, &mut rng);
    let adj = Adjacency::new(graph);
    let lo_x = gen::random_dense(64, 8, &mut rng);
    let hi_x = gen::random_dense(64, 4, &mut rng);
    let hi_y = gen::random_dense(4, 64, &mut rng);

    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        queue_depth: 4,
        max_batch: 1,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    }));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let adj = adj.clone();
            let lo_x = lo_x.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Fire-and-forget: the dropped ticket still counts as
                    // served/shed in the stats.
                    let _ = engine
                        .try_submit(&adj, Submission::spmm(lo_x.clone()).priority(Priority::Lo));
                    std::thread::yield_now();
                }
            });
        }
        for i in 0..8 {
            let sub = Submission::sddmm(hi_x.clone(), hi_y.clone())
                .deadline(Duration::from_secs(5))
                .priority(Priority::Hi);
            let out = engine.serve(&adj, sub);
            assert!(out.is_ok(), "Hi request {i} starved or shed: {out:?}");
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = engine.stats();
    assert_eq!(stats.priority(Priority::Hi).served, 8, "every Hi request must be served");
    assert_eq!(stats.priority(Priority::Hi).shed, 0);
    assert!(stats.rejected > 0, "the Lo flood must have been shed: {stats:?}");
    assert!(stats.shed.queue_full > 0, "full-queue rejections must be tagged");
}
