//! Property-based differential test: for random CSR matrices and random
//! request sets — feature widths 0, 1, and mixed — the batched engine
//! output must be bit-identical to a sequential loop of
//! `csr_spmm_execute` calls, including the column split-back. This is the
//! serving-path analogue of the executor's interpreter-differential
//! suite: batching must be a pure performance transformation.

use proptest::prelude::*;
use sparsetir_engine::{Adjacency, Engine, EngineConfig};
use sparsetir_kernels::prelude::{csr_spmm_execute, spmm_batched_execute, SpmmConfig};
use sparsetir_smat::prelude::*;

/// Strategy: a small random sparse matrix (dims 1..=max_dim, bounded nnz).
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        })
    })
}

/// Strategy: a request set of 1..=6 feature widths drawn from {0, 1,
/// 2..=7} — the 0 and 1 edge cases appear often by construction.
fn request_widths() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(prop_oneof![Just(0usize), Just(1usize), 2usize..8], 1..7)
}

fn random_feats(a: &Csr, widths: &[usize], seed: u64) -> Vec<Dense> {
    let mut rng = gen::rng(seed);
    widths.iter().map(|&w| gen::random_dense(a.cols(), w, &mut rng)).collect()
}

fn assert_bit_identical(got: &Dense, want: &Dense, tag: &str) -> Result<(), TestCaseError> {
    if (got.rows(), got.cols()) != (want.rows(), want.cols()) {
        return Err(TestCaseError::fail(format!(
            "{tag}: shape {}x{} vs {}x{}",
            got.rows(),
            got.cols(),
            want.rows(),
            want.cols()
        )));
    }
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pure batching primitive: one stacked launch vs a sequential
    /// loop of single-request executions.
    #[test]
    fn batched_kernel_matches_sequential_loop(
        a in sparse_matrix(20, 60),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let xs = random_feats(&a, &widths, seed);
        let refs: Vec<&Dense> = xs.iter().collect();
        let batched = spmm_batched_execute(&a, &refs, &SpmmConfig::default_csr())
            .expect("batched execution");
        prop_assert_eq!(batched.len(), xs.len());
        for (i, (x, got)) in xs.iter().zip(&batched).enumerate() {
            let want = csr_spmm_execute(&a, x).expect("sequential execution");
            assert_bit_identical(got, &want, &format!("request {i}"))?;
        }
    }

    /// The full engine path: requests submitted as tickets (so the worker
    /// can fold them into batches), answers compared against the
    /// sequential loop.
    #[test]
    fn engine_output_matches_sequential_loop(
        a in sparse_matrix(16, 48),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let xs = random_feats(&a, &widths, seed);
        let adj = Adjacency::new(a.clone());
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_depth: 16,
            max_batch: 8,
            tune: false,
        });
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| engine.submit_spmm(&adj, x.clone()).expect("submits"))
            .collect();
        for (i, (x, t)) in xs.iter().zip(tickets).enumerate() {
            let got = t.wait().expect("engine answers");
            let want = csr_spmm_execute(&a, x).expect("sequential execution");
            assert_bit_identical(&got, &want, &format!("request {i}"))?;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.completed, xs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }
}
