//! Property-based differential tests: for random CSR matrices and random
//! request sets — widths 0, 1, and mixed — the batched engine output of
//! *every served op* (SpMM, SDDMM, multi-head attention) must be
//! bit-identical to a sequential loop of the op's single-request
//! `*_execute` calls, including the stack/split round-trips. This is the
//! serving-path analogue of the executor's interpreter-differential
//! suite: batching must be a pure performance transformation.
//!
//! The suite goes through the deprecated per-op wrappers on purpose:
//! they are one-line shims over the `Submission` path and must keep
//! answering bit-identically across the API redesign.
#![allow(deprecated)]

use proptest::prelude::*;
use sparsetir_engine::{Adjacency, Engine, EngineConfig};
use sparsetir_ir::exec::Runtime;
use sparsetir_kernels::prelude::{
    attention_pipeline_launch, csr_spmm_execute, sddmm_batched_execute, sddmm_execute,
    spmm_batched_execute, AttnHead, SpmmConfig,
};
use sparsetir_smat::prelude::*;

/// Strategy: a small random sparse matrix (dims 1..=max_dim, bounded nnz).
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        })
    })
}

/// Strategy: a request set of 1..=6 feature widths drawn from {0, 1,
/// 2..=7} — the 0 and 1 edge cases appear often by construction.
fn request_widths() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(prop_oneof![Just(0usize), Just(1usize), 2usize..8], 1..7)
}

/// Strategy: per-request head counts for attention (0-head requests are
/// legal and must split back to empty results).
fn head_counts() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(prop_oneof![Just(0usize), Just(1usize), 2usize..4], 1..5)
}

fn random_feats(a: &Csr, widths: &[usize], seed: u64) -> Vec<Dense> {
    let mut rng = gen::rng(seed);
    widths.iter().map(|&w| gen::random_dense(a.cols(), w, &mut rng)).collect()
}

/// SDDMM operand pairs at the given inner (reduction) widths.
fn random_pairs(a: &Csr, widths: &[usize], seed: u64) -> Vec<(Dense, Dense)> {
    let mut rng = gen::rng(seed);
    widths
        .iter()
        .map(|&k| {
            (gen::random_dense(a.rows(), k, &mut rng), gen::random_dense(k, a.cols(), &mut rng))
        })
        .collect()
}

fn assert_bit_identical(got: &Dense, want: &Dense, tag: &str) -> Result<(), TestCaseError> {
    if (got.rows(), got.cols()) != (want.rows(), want.cols()) {
        return Err(TestCaseError::fail(format!(
            "{tag}: shape {}x{} vs {}x{}",
            got.rows(),
            got.cols(),
            want.rows(),
            want.cols()
        )));
    }
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
        }
    }
    Ok(())
}

fn assert_bits_eq(got: &[f32], want: &[f32], tag: &str) -> Result<(), TestCaseError> {
    if got.len() != want.len() {
        return Err(TestCaseError::fail(format!("{tag}: len {} vs {}", got.len(), want.len())));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(TestCaseError::fail(format!("{tag}: elem {i}: {g} vs {w}")));
        }
    }
    Ok(())
}

fn test_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_depth: 16,
        max_batch: 8,
        tune: false,
        fuse: None,
        batch_window: None,
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pure SpMM batching primitive: one stacked launch vs a
    /// sequential loop of single-request executions.
    #[test]
    fn batched_kernel_matches_sequential_loop(
        a in sparse_matrix(20, 60),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let xs = random_feats(&a, &widths, seed);
        let batched = spmm_batched_execute(&a, &xs, &SpmmConfig::default_csr())
            .expect("batched execution");
        prop_assert_eq!(batched.len(), xs.len());
        for (i, (x, got)) in xs.iter().zip(&batched).enumerate() {
            let want = csr_spmm_execute(&a, x).expect("sequential execution");
            assert_bit_identical(got, &want, &format!("request {i}"))?;
        }
    }

    /// The full engine SpMM path: requests submitted as tickets (so the
    /// worker can fold them into batches), answers compared against the
    /// sequential loop.
    #[test]
    fn engine_output_matches_sequential_loop(
        a in sparse_matrix(16, 48),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let xs = random_feats(&a, &widths, seed);
        let adj = Adjacency::new(a.clone());
        let engine = test_engine();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| engine.submit_spmm(&adj, x.clone()).expect("submits"))
            .collect();
        for (i, (x, t)) in xs.iter().zip(tickets).enumerate() {
            let got = t.wait_dense().expect("engine answers");
            let want = csr_spmm_execute(&a, x).expect("sequential execution");
            assert_bit_identical(&got, &want, &format!("request {i}"))?;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.completed, xs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }

    /// The pure SDDMM batching primitive (block-diagonal stacking): one
    /// launch over `blockdiag(A, …, A)` vs a sequential loop of
    /// `sddmm_execute` calls. All requests share one inner width here
    /// (the batching contract); widths 0 and 1 are included.
    #[test]
    fn batched_sddmm_kernel_matches_sequential_loop(
        a in sparse_matrix(14, 40),
        k in prop_oneof![Just(0usize), Just(1usize), 2usize..7],
        n in 1usize..5,
        seed in 0u64..1 << 32,
    ) {
        let reqs = random_pairs(&a, &vec![k; n], seed);
        let batched = sddmm_batched_execute(&a, &reqs).expect("batched execution");
        prop_assert_eq!(batched.len(), reqs.len());
        for (i, ((x, y), got)) in reqs.iter().zip(&batched).enumerate() {
            let want = sddmm_execute(&a, x, y).expect("sequential execution");
            assert_bits_eq(got, &want, &format!("request {i}"))?;
        }
    }

    /// The full engine SDDMM path with *mixed* inner widths: compatible
    /// requests batch block-diagonally, incompatible ones dispatch alone,
    /// and every answer must still be bit-identical to the sequential
    /// loop.
    #[test]
    fn engine_sddmm_output_matches_sequential_loop(
        a in sparse_matrix(12, 36),
        widths in request_widths(),
        seed in 0u64..1 << 32,
    ) {
        let reqs = random_pairs(&a, &widths, seed);
        let adj = Adjacency::new(a.clone());
        let engine = test_engine();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|(x, y)| engine.submit_sddmm(&adj, x.clone(), y.clone()).expect("submits"))
            .collect();
        for (i, ((x, y), t)) in reqs.iter().zip(tickets).enumerate() {
            let got = t.wait_edges().expect("engine answers");
            let want = sddmm_execute(&a, x, y).expect("sequential execution");
            assert_bits_eq(&got, &want, &format!("request {i}"))?;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.completed, reqs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }

    /// The full engine multi-head attention path: per-request head lists
    /// (including 0-head requests) batch column-wise across requests, and
    /// every head's answer must be bit-identical to a sequential
    /// `csr_spmm_execute` loop over the heads.
    #[test]
    fn engine_attention_output_matches_sequential_loop(
        a in sparse_matrix(12, 36),
        heads_per_req in head_counts(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let reqs: Vec<Vec<Dense>> = heads_per_req
            .iter()
            .map(|&h| (0..h).map(|_| gen::random_dense(a.cols(), 1 + (h % 4), &mut rng)).collect())
            .collect();
        let adj = Adjacency::new(a.clone());
        let engine = test_engine();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|heads| engine.submit_attention(&adj, heads.clone()).expect("submits"))
            .collect();
        for (i, (heads, t)) in reqs.iter().zip(tickets).enumerate() {
            let got = t.wait_heads().expect("engine answers");
            prop_assert_eq!(got.len(), heads.len());
            for (h, (x, out)) in heads.iter().zip(&got).enumerate() {
                let want = csr_spmm_execute(&a, x).expect("sequential execution");
                assert_bit_identical(out, &want, &format!("request {i} head {h}"))?;
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.completed, reqs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }
}

/// Strategy: per-request fused-attention shapes `(heads, k, vfeat)`.
/// Head counts include 0 (legal, splits back to an empty result); the
/// `(k, vfeat)` pairs vary across requests so incompatible requests must
/// dispatch separately rather than cross-batch.
fn fused_attn_shapes() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec(
        (prop_oneof![Just(0usize), Just(1usize), 2usize..4], 1usize..4, 1usize..4),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused-attention serving path vs the sequential three-launch
    /// oracle: over random adjacencies (empty rows appear by
    /// construction), 0-head requests, and mixed per-request head counts
    /// and `(k, vfeat)` shapes, every head the batched fused engine
    /// answers must be bit-identical to its own unbatched three-launch
    /// pipeline run. Cross-op fusion and batching must both be pure
    /// performance transformations.
    #[test]
    fn engine_fused_attention_matches_three_launch_oracle(
        a in sparse_matrix(12, 36),
        shapes in fused_attn_shapes(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = gen::rng(seed);
        let reqs: Vec<Vec<AttnHead>> = shapes
            .iter()
            .map(|&(heads, k, vfeat)| {
                (0..heads)
                    .map(|_| AttnHead {
                        q: gen::random_dense(a.rows(), k, &mut rng),
                        kt: gen::random_dense(k, a.cols(), &mut rng),
                        v: gen::random_dense(a.cols(), vfeat, &mut rng),
                    })
                    .collect()
            })
            .collect();
        let adj = Adjacency::new(a.clone());
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_depth: 16,
            max_batch: 8,
            tune: false,
            fuse: Some(true),
            batch_window: None,
            ..EngineConfig::default()
        });
        let tickets: Vec<_> = reqs
            .iter()
            .map(|heads| engine.submit_fused_attention(&adj, heads.clone()).expect("submits"))
            .collect();
        let oracle_rt = Runtime::new();
        for (i, (heads, t)) in reqs.iter().zip(tickets).enumerate() {
            let got = t.wait_heads().expect("engine answers");
            prop_assert_eq!(got.len(), heads.len());
            for (h, (head, out)) in heads.iter().zip(&got).enumerate() {
                let want =
                    attention_pipeline_launch(&oracle_rt, &a, &head.q, &head.kt, &head.v, 1)
                        .expect("three-launch oracle");
                assert_bit_identical(out, &want, &format!("request {i} head {h}"))?;
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.completed, reqs.len() as u64);
        prop_assert_eq!(stats.failed, 0);
        // Requests with distinct (k, vfeat) shapes must not have shared a
        // launch: the widest recorded fused-attention batch is bounded by
        // the largest same-shape group (0-head requests ride with any
        // group, so they relax the bound).
        let distinct: std::collections::HashSet<(usize, usize)> = shapes
            .iter()
            .filter(|s| s.0 > 0)
            .map(|&(_, k, v)| (k, v))
            .collect();
        if let Some(w) = stats.widths_of("fused_attention") {
            let zero_heads = shapes.iter().filter(|s| s.0 == 0).count();
            let largest_group = shapes
                .iter()
                .filter(|s| s.0 > 0)
                .map(|&(_, k, v)| (k, v))
                .fold(std::collections::HashMap::new(), |mut m, kv| {
                    *m.entry(kv).or_insert(0usize) += 1;
                    m
                })
                .into_values()
                .max()
                .unwrap_or(0);
            prop_assert!(
                w.max_width <= largest_group + zero_heads,
                "incompatible shapes cross-batched: max_width {} vs {} same-shape + {} zero-head \
                 (distinct shapes: {:?})",
                w.max_width,
                largest_group,
                zero_heads,
                distinct
            );
        }
    }
}
