//! # sparsetir-engine
//!
//! A concurrent, batched serving front end over the SparseTIR kernel
//! cache. SparseTIR's premise — compile once per sparsity structure, then
//! reuse the composed kernel across many inputs (§2's amortization
//! argument) — is exactly the shape of an inference-serving workload:
//! the adjacency is fixed, requests differ only in their dense feature
//! operands. The [`Engine`] packages that reuse behind a multi-tenant
//! request queue:
//!
//! * **One generic request path for every op**: requests are the
//!   [`OpRequest`] enum over the kernel crate's
//!   [`SparseOp`](sparsetir_kernels::op::SparseOp) layer — SpMM, SDDMM,
//!   multi-head attention, the cross-op fused attention pipeline and the
//!   fused GraphSAGE layer step all submit, batch, tune and answer
//!   through the same machinery ([`Engine::submit`] → [`Ticket`] →
//!   [`OpOutput`]), with thin typed wrappers for ergonomics.
//! * **Cross-op fusion with a kill switch**: [`EngineConfig::fuse`]
//!   selects whether fused ops compile their whole pipeline into one
//!   kernel or fall back to the multi-launch path (`None` follows the
//!   `SPARSETIR_NO_FUSE` environment variable). The flag is baked into
//!   the engine's shared runtime, so toggling it recompiles rather than
//!   serving stale cached kernels.
//! * **One shared [`Runtime`](sparsetir_ir::exec::Runtime) and an
//!   op-agnostic [`TuneCache`](sparsetir_autotune::TuneCache)** per
//!   engine: every worker compiles through the same striped kernel cache
//!   and reuses the same per-`(adjacency, op)` tuning decisions.
//! * **Batching by adjacency fingerprint**: concurrent requests that
//!   share an [`Adjacency`] and satisfy their op's batching contract are
//!   folded into one widened kernel launch — column stacking for
//!   SpMM/attention, block-diagonal stacking for SDDMM — and split back
//!   per request. The fixed per-request costs (lowering, IR
//!   fingerprinting, dispatch) are paid once per batch. Results are
//!   bit-identical to unbatched execution.
//! * **Bounded queue with backpressure**: blocking submits wait while
//!   the queue is at `queue_depth`; [`Engine::try_submit`] fails fast
//!   with [`EngineError::Saturated`] instead.
//! * **Crash containment**: a panicking worker answers its riders with
//!   [`EngineError::Exec`], recovers the queue mutex from poisoning, and
//!   keeps serving ([`EngineStats::worker_panics`] counts the events).
//! * **Per-request latency and throughput stats** ([`EngineStats`]),
//!   fed by every worker.
//!
//! The `serving_throughput` experiment in `sparsetir-bench` measures the
//! batched-vs-unbatched requests/sec of this engine for both SpMM and
//! SDDMM, and `sparsetir-nn`'s serving path drives GraphSAGE inference
//! through it.

#![warn(missing_docs)]

mod engine;
mod stats;

pub use engine::{
    Adjacency, Engine, EngineConfig, EngineError, OpOutput, OpRequest, Ticket, DEFAULT_QUEUE_DEPTH,
};
pub use stats::{EngineStats, OpBatchWidth};
