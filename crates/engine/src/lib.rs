//! # sparsetir-engine
//!
//! A concurrent, batched serving front end over the SparseTIR kernel
//! cache. SparseTIR's premise — compile once per sparsity structure, then
//! reuse the composed kernel across many inputs (§2's amortization
//! argument) — is exactly the shape of an inference-serving workload:
//! the adjacency is fixed, requests differ only in their dense feature
//! operands. The [`Engine`] packages that reuse behind a multi-tenant
//! request queue:
//!
//! * **One shared [`Runtime`](sparsetir_ir::exec::Runtime) and
//!   [`TuneCache`](sparsetir_autotune::TuneCache)** per engine: every
//!   worker compiles through the same striped kernel cache and reuses the
//!   same per-adjacency tuning decisions.
//! * **Batching by adjacency fingerprint**: concurrent SpMM requests that
//!   share an [`Adjacency`] are stacked column-wise into one kernel
//!   launch of width `Σ feat_i` and split back per request — the fixed
//!   per-request costs (lowering, IR fingerprinting, the per-non-zero
//!   index walk) are paid once per batch. Results are bit-identical to
//!   unbatched execution.
//! * **Bounded queue with backpressure**: [`Engine::submit_spmm`] blocks
//!   while the queue is at `queue_depth`; [`Engine::try_submit_spmm`]
//!   fails fast with [`EngineError::Saturated`] instead.
//! * **Per-request latency and throughput stats** ([`EngineStats`]),
//!   fed by every worker.
//!
//! The `serving_throughput` experiment in `sparsetir-bench` measures the
//! batched-vs-unbatched requests/sec of this engine, and
//! `sparsetir-nn`'s serving path drives GraphSAGE inference through it.

#![warn(missing_docs)]

mod engine;
mod stats;

pub use engine::{
    Adjacency, Engine, EngineConfig, EngineError, SddmmTicket, SpmmTicket, DEFAULT_QUEUE_DEPTH,
};
pub use stats::EngineStats;
