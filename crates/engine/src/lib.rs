//! # sparsetir-engine
//!
//! A concurrent, batched, SLO-aware serving front end over the SparseTIR
//! kernel cache. SparseTIR's premise — compile once per sparsity
//! structure, then reuse the composed kernel across many inputs (§2's
//! amortization argument) — is exactly the shape of an inference-serving
//! workload: the adjacency is fixed, requests differ only in their dense
//! feature operands. The [`Engine`] packages that reuse behind a
//! multi-tenant request queue:
//!
//! * **One generic submission path for every op**: a [`Submission`]
//!   wraps the [`OpRequest`] enum over the kernel crate's
//!   [`SparseOp`](sparsetir_kernels::op::SparseOp) layer — SpMM, SDDMM,
//!   multi-head attention, the cross-op fused attention pipeline and the
//!   fused GraphSAGE layer step all submit, batch, tune and answer
//!   through the same machinery ([`Engine::submit`] → [`Ticket`] →
//!   [`OpOutput`]). Built via `Submission::spmm(feat).deadline(d)
//!   .priority(Priority::Hi)`-style constructors; the pre-0.2 per-op
//!   `submit_*`/sync wrappers remain as deprecated one-line shims.
//! * **SLO envelopes**: submissions carry optional deadlines and a
//!   [`Priority`] class. The queue is priority-then-deadline ordered;
//!   admission sheds work with typed [`EngineError::Rejected`] answers
//!   ([`RejectReason`]: full queue, infeasible deadline, already
//!   expired) instead of only blocking, evicting lower-priority queued
//!   work for higher-priority arrivals; the drain loop drops expired
//!   requests unexecuted.
//! * **Adaptive batch window** ([`EngineConfig::batch_window`]): a
//!   worker with rider room and a drained queue waits briefly for more
//!   compatible arrivals when traffic predicts them, and fires
//!   immediately under deadline pressure. `None` keeps the legacy
//!   greedy drain.
//! * **Cross-op fusion with a kill switch**: [`EngineConfig::fuse`]
//!   selects whether fused ops compile their whole pipeline into one
//!   kernel or fall back to the multi-launch path (`None` follows the
//!   `SPARSETIR_NO_FUSE` environment variable). The flag is baked into
//!   the engine's shared runtime, so toggling it recompiles rather than
//!   serving stale cached kernels.
//! * **One shared [`Runtime`](sparsetir_ir::exec::Runtime) and an
//!   op-agnostic [`TuneCache`](sparsetir_autotune::TuneCache)** per
//!   engine: every worker compiles through the same striped kernel cache
//!   and reuses the same per-`(adjacency, op)` tuning decisions.
//! * **Batching by adjacency fingerprint**: concurrent requests that
//!   share an [`Adjacency`] and satisfy their op's batching contract are
//!   folded into one widened kernel launch — column stacking for
//!   SpMM/attention, block-diagonal stacking for SDDMM — and split back
//!   per request. The fixed per-request costs (lowering, IR
//!   fingerprinting, dispatch) are paid once per batch. Results are
//!   bit-identical to unbatched execution.
//! * **Bounded queue with backpressure**: blocking submits wait while
//!   the queue is at `queue_depth` (deadlined submissions wait at most
//!   until their deadline); [`Engine::try_submit`] fails fast with
//!   [`EngineError::Rejected`] instead.
//! * **Crash containment**: a panicking worker answers its riders with
//!   [`EngineError::Exec`], recovers the queue mutex from poisoning, and
//!   keeps serving ([`EngineStats::worker_panics`] counts the events).
//! * **Tail-latency observability**: [`EngineStats`] carries a
//!   log-bucketed, lock-free p50/p95/p99 [`LatencyHistogram`],
//!   per-priority served/shed/expired counters ([`PriorityStats`]) and
//!   per-reason shed counters ([`ShedStats`]) alongside the batching and
//!   throughput counters.
//!
//! * **Incremental graph updates with stale-while-retune serving**:
//!   [`Engine::apply_delta`] patches a served [`Adjacency`] with a
//!   [`GraphDelta`] batch of edge inserts/deletes (two-pointer merge in
//!   `sparsetir-smat`, bit-identical to a rebuild), bumping a monotonic
//!   version. While the log2-degree histogram stays within
//!   [`EngineConfig::drift_threshold`] the successor keeps its
//!   predecessor's tuning *anchor* — cached tune decisions and compiled
//!   kernels keep serving with zero recompilation. Past the threshold,
//!   stale decisions are pre-seeded under the new anchor (no serving
//!   gap) and one background thread re-tunes and atomically swaps them
//!   in ([`EngineStats::retunes_started`]/`retunes_completed`/
//!   `retunes_skipped`/`deltas_applied` count the state machine).
//!
//! The `serving_throughput` and `serving_slo` experiments in
//! `sparsetir-bench` measure this engine's batched-vs-unbatched
//! requests/sec and its deadline-hit-rate under overload,
//! `dynamic_graphs` measures incremental-update-vs-rebuild throughput,
//! and `sparsetir-nn`'s serving path drives GraphSAGE inference through
//! it.

#![warn(missing_docs)]

mod engine;
mod stats;
mod submission;

pub use engine::{
    Adjacency, Engine, EngineConfig, EngineError, OpOutput, OpRequest, Ticket,
    DEFAULT_DRIFT_THRESHOLD, DEFAULT_QUEUE_DEPTH,
};
pub use stats::{EngineStats, LatencyHistogram, OpBatchWidth, PriorityStats, ShedStats};
pub use submission::{Priority, RejectReason, Submission, SubmitOpts};
// The delta type `apply_delta` consumes, re-exported so serving callers
// need not depend on `sparsetir-smat` directly.
pub use sparsetir_smat::prelude::GraphDelta;
