//! The serving engine: a bounded multi-producer request queue drained by
//! a worker pool that batches fingerprint-compatible SpMM requests into
//! single wider kernel launches.

use crate::stats::{EngineStats, StatsInner};
use sparsetir_autotune::{tune_spmm, SparsityFingerprint, TuneCache, TuneKey};
use sparsetir_gpusim::prelude::GpuSpec;
use sparsetir_ir::exec::Runtime;
use sparsetir_kernels::prelude::{sddmm_execute_on, spmm_batched_execute_on, SpmmConfig};
use sparsetir_smat::prelude::{Csr, Dense};
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Default bound on the request queue (the backpressure knob).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Error answered to a serving client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Request shapes are incompatible with the adjacency.
    Shape(String),
    /// The bounded queue was full (`try_submit_*` only; blocking submits
    /// wait instead).
    Saturated,
    /// The engine shut down before (or while) answering.
    Shutdown,
    /// Kernel lowering/compilation/execution failed.
    Exec(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Shape(msg) => write!(f, "engine shape error: {msg}"),
            EngineError::Saturated => write!(f, "engine queue is full"),
            EngineError::Shutdown => write!(f, "engine has shut down"),
            EngineError::Exec(msg) => write!(f, "engine execution error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A shareable, fingerprinted adjacency: the unit of kernel reuse and
/// request batching. The fingerprint is a content hash over the full CSR
/// (shape, structure and values), computed once at construction, so the
/// engine can group same-adjacency requests in O(1) per request —
/// cloning an `Adjacency` is an `Arc` bump.
///
/// Two requests batch together only when their fingerprints *and* their
/// matrix dimensions match; distinct matrices colliding in the 64-bit
/// hash is the usual negligible-probability caveat.
#[derive(Debug, Clone)]
pub struct Adjacency {
    csr: Arc<Csr>,
    fingerprint: u64,
    /// Structural sparsity summary for [`TuneCache`] keys, precomputed so
    /// the tuned path never rescans the matrix per batch.
    sparsity: Arc<SparsityFingerprint>,
}

impl Adjacency {
    /// Fingerprint and wrap a CSR adjacency for serving.
    #[must_use]
    pub fn new(csr: Csr) -> Adjacency {
        let mut h = DefaultHasher::new();
        csr.rows().hash(&mut h);
        csr.cols().hash(&mut h);
        csr.indptr().hash(&mut h);
        csr.indices().hash(&mut h);
        for v in csr.values() {
            v.to_bits().hash(&mut h);
        }
        let sparsity = Arc::new(SparsityFingerprint::of(&csr));
        Adjacency { csr: Arc::new(csr), fingerprint: h.finish(), sparsity }
    }

    /// The wrapped matrix.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The content fingerprint requests are batched by.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when `other` may share a batched kernel launch with `self`.
    fn batches_with(&self, other: &Adjacency) -> bool {
        self.fingerprint == other.fingerprint
            && self.csr.rows() == other.csr.rows()
            && self.csr.cols() == other.csr.cols()
            && self.csr.nnz() == other.csr.nnz()
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bound on queued (not yet dispatched) requests — the backpressure
    /// knob: blocking submits wait for space, `try_submit_*` fails with
    /// [`EngineError::Saturated`].
    pub queue_depth: usize,
    /// Most requests folded into one batched kernel launch; `1` disables
    /// batching (every request runs alone — the unbatched baseline the
    /// `serving_throughput` experiment compares against).
    pub max_batch: usize,
    /// When true, the first request for each adjacency runs the
    /// simulator-backed `tune_spmm` search and the winning format/schedule
    /// configuration is cached in the engine's [`TuneCache`] for every
    /// later batch on that adjacency. When false, all SpMM requests use
    /// [`SpmmConfig::default_csr`].
    pub tune: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_batch: 8,
            tune: false,
        }
    }
}

struct SpmmJob {
    adj: Adjacency,
    feat: Dense,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Dense, EngineError>>,
}

struct SddmmJob {
    adj: Adjacency,
    x: Dense,
    y: Dense,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Vec<f32>, EngineError>>,
}

enum Job {
    Spmm(SpmmJob),
    Sddmm(SddmmJob),
}

struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    config: EngineConfig,
    runtime: Arc<Runtime>,
    tune_cache: TuneCache<SpmmConfig>,
    /// Single-flight guard for tuning searches: [`TuneCache`] computes
    /// outside its lock by design, so without this, workers racing the
    /// *first* batches of one adjacency would each pay the full search.
    tune_flight: Mutex<()>,
    stats: StatsInner,
}

/// Pending result of a submitted SpMM request.
#[derive(Debug)]
#[must_use = "wait() on the ticket to receive the result"]
pub struct SpmmTicket {
    rx: mpsc::Receiver<Result<Dense, EngineError>>,
}

impl SpmmTicket {
    /// Block until the engine answers.
    ///
    /// # Errors
    /// Propagates the worker-side error, or [`EngineError::Shutdown`]
    /// when the engine died before answering.
    pub fn wait(self) -> Result<Dense, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Shutdown))
    }
}

/// Pending result of a submitted SDDMM request.
#[derive(Debug)]
#[must_use = "wait() on the ticket to receive the result"]
pub struct SddmmTicket {
    rx: mpsc::Receiver<Result<Vec<f32>, EngineError>>,
}

impl SddmmTicket {
    /// Block until the engine answers.
    ///
    /// # Errors
    /// Propagates the worker-side error, or [`EngineError::Shutdown`]
    /// when the engine died before answering.
    pub fn wait(self) -> Result<Vec<f32>, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Shutdown))
    }
}

/// Multi-tenant serving engine: owns a shared kernel-cache [`Runtime`]
/// and [`TuneCache`], accepts SpMM/SDDMM requests from any number of
/// client threads, and batches concurrent SpMM requests that share an
/// [`Adjacency`] fingerprint into single wider kernel launches.
///
/// Dropping the engine shuts it down: queued requests are still drained
/// and answered, then the workers exit.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Start an engine with `config.workers` worker threads and a fresh
    /// kernel cache.
    #[must_use]
    pub fn new(config: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            config: config.clone(),
            runtime: Arc::new(Runtime::new()),
            tune_cache: TuneCache::new(),
            tune_flight: Mutex::new(()),
            stats: StatsInner::default(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sparsetir-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// The engine's kernel-cache runtime (for compilation accounting:
    /// `runtime().compilations()`, `runtime().cached()`).
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.shared.runtime
    }

    /// The engine's per-adjacency tuning cache.
    #[must_use]
    pub fn tune_cache(&self) -> &TuneCache<SpmmConfig> {
        &self.shared.tune_cache
    }

    /// Snapshot the serving counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }

    /// Submit an SpMM request (`adj · feat`), blocking while the queue is
    /// at capacity.
    ///
    /// # Errors
    /// [`EngineError::Shape`] on a row-count mismatch and
    /// [`EngineError::Shutdown`] after shutdown.
    pub fn submit_spmm(&self, adj: &Adjacency, feat: Dense) -> Result<SpmmTicket, EngineError> {
        self.spmm_job(adj, feat, true)
    }

    /// Submit an SpMM request without blocking.
    ///
    /// # Errors
    /// Like [`Engine::submit_spmm`], plus [`EngineError::Saturated`]
    /// when the queue is full.
    pub fn try_submit_spmm(&self, adj: &Adjacency, feat: Dense) -> Result<SpmmTicket, EngineError> {
        self.spmm_job(adj, feat, false)
    }

    /// Blocking convenience: submit an SpMM request and wait for the
    /// result.
    ///
    /// # Errors
    /// See [`Engine::submit_spmm`] and [`SpmmTicket::wait`].
    pub fn spmm(&self, adj: &Adjacency, feat: Dense) -> Result<Dense, EngineError> {
        self.submit_spmm(adj, feat)?.wait()
    }

    /// Submit an SDDMM request (`adj ⊙ (x · y)` sampled at the non-zeros),
    /// blocking while the queue is at capacity.
    ///
    /// # Errors
    /// [`EngineError::Shape`] on incompatible operand shapes and
    /// [`EngineError::Shutdown`] after shutdown.
    pub fn submit_sddmm(
        &self,
        adj: &Adjacency,
        x: Dense,
        y: Dense,
    ) -> Result<SddmmTicket, EngineError> {
        if x.rows() != adj.csr().rows() || y.cols() != adj.csr().cols() || y.rows() != x.cols() {
            return Err(EngineError::Shape(format!(
                "sddmm operands {}x{} · {}x{} incompatible with {}x{} adjacency",
                x.rows(),
                x.cols(),
                y.rows(),
                y.cols(),
                adj.csr().rows(),
                adj.csr().cols()
            )));
        }
        let (tx, rx) = mpsc::channel();
        self.push(
            Job::Sddmm(SddmmJob { adj: adj.clone(), x, y, enqueued: Instant::now(), reply: tx }),
            true,
        )?;
        Ok(SddmmTicket { rx })
    }

    /// Blocking convenience: submit an SDDMM request and wait for the
    /// per-non-zero results.
    ///
    /// # Errors
    /// See [`Engine::submit_sddmm`] and [`SddmmTicket::wait`].
    pub fn sddmm(&self, adj: &Adjacency, x: Dense, y: Dense) -> Result<Vec<f32>, EngineError> {
        self.submit_sddmm(adj, x, y)?.wait()
    }

    fn spmm_job(
        &self,
        adj: &Adjacency,
        feat: Dense,
        block: bool,
    ) -> Result<SpmmTicket, EngineError> {
        if feat.rows() != adj.csr().cols() {
            return Err(EngineError::Shape(format!(
                "feature matrix has {} rows, adjacency has {} cols",
                feat.rows(),
                adj.csr().cols()
            )));
        }
        let (tx, rx) = mpsc::channel();
        self.push(
            Job::Spmm(SpmmJob { adj: adj.clone(), feat, enqueued: Instant::now(), reply: tx }),
            block,
        )?;
        Ok(SpmmTicket { rx })
    }

    fn push(&self, job: Job, block: bool) -> Result<(), EngineError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                return Err(EngineError::Shutdown);
            }
            if st.queue.len() < self.shared.config.queue_depth.max(1) {
                break;
            }
            if !block {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Saturated);
            }
            st = self.shared.not_full.wait(st).unwrap();
        }
        st.queue.push_back(job);
        let depth = st.queue.len();
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break match job {
                        // Greedily fold queued same-fingerprint SpMM
                        // requests into this dispatch (up to max_batch).
                        Job::Spmm(first) => Work::SpmmBatch(drain_batch(
                            &mut st.queue,
                            first,
                            shared.config.max_batch,
                        )),
                        Job::Sddmm(job) => Work::Sddmm(job),
                    };
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).unwrap();
            }
        };
        // Space was freed: wake blocked submitters.
        shared.not_full.notify_all();
        match work {
            Work::SpmmBatch(batch) => serve_spmm_batch(shared, batch),
            Work::Sddmm(job) => serve_sddmm(shared, job),
        }
    }
}

enum Work {
    SpmmBatch(Vec<SpmmJob>),
    Sddmm(SddmmJob),
}

/// Pull every queued SpMM job batch-compatible with `first` (same
/// adjacency fingerprint and dimensions) out of the queue, preserving the
/// relative order of everything else.
fn drain_batch(queue: &mut VecDeque<Job>, first: SpmmJob, max_batch: usize) -> Vec<SpmmJob> {
    let mut batch = vec![first];
    if max_batch <= 1 {
        return batch;
    }
    let mut i = 0;
    while i < queue.len() && batch.len() < max_batch {
        let compatible = matches!(
            &queue[i],
            Job::Spmm(job) if batch[0].adj.batches_with(&job.adj)
        );
        if compatible {
            match queue.remove(i) {
                Some(Job::Spmm(job)) => batch.push(job),
                _ => unreachable!("matched an SpMM job at index i"),
            }
        } else {
            i += 1;
        }
    }
    batch
}

/// The format/schedule configuration for one adjacency: the engine-owned
/// [`TuneCache`] memoizes the (simulator-backed) search per sparsity
/// fingerprint, so only the first batch on a new adjacency pays it. The
/// decision is keyed on the adjacency alone — widths vary per batch, so
/// the search runs at the triggering request's width and the winner is
/// reused for all widths (the §2 amortization trade).
fn spmm_config_for(shared: &Shared, adj: &Adjacency, feat: usize) -> SpmmConfig {
    if !shared.config.tune {
        return SpmmConfig::default_csr();
    }
    let spec = GpuSpec::v100();
    let key = TuneKey {
        workload: "spmm",
        backend: "gpusim",
        device: spec.device_id(),
        extra: vec![],
        fingerprint: (*adj.sparsity).clone(),
    };
    // Double-checked single flight: serve hits without the guard, and
    // take it only on a miss — TuneCache computes outside its own lock,
    // so concurrent first batches of one adjacency would otherwise each
    // run the full search, while a global guard on the hit path would
    // serialize unrelated adjacencies behind a slow search.
    if let Some(config) = shared.tune_cache.get(&key) {
        return config;
    }
    let _flight = shared.tune_flight.lock().unwrap();
    shared.tune_cache.get_or_insert_with(key, || tune_spmm(&spec, adj.csr(), feat.max(1)).config).0
}

fn serve_spmm_batch(shared: &Shared, batch: Vec<SpmmJob>) {
    let config = spmm_config_for(shared, &batch[0].adj, batch[0].feat.cols());
    let xs: Vec<&Dense> = batch.iter().map(|j| &j.feat).collect();
    let result = spmm_batched_execute_on(&shared.runtime, batch[0].adj.csr(), &xs, &config);
    shared.stats.record_batch(batch.len());
    match result {
        Ok(outs) => {
            for (job, out) in batch.into_iter().zip(outs) {
                finish(shared, job.enqueued, true, || job.reply.send(Ok(out)).is_ok());
            }
        }
        Err(e) => {
            let err = EngineError::Exec(e.to_string());
            for job in batch {
                let err = err.clone();
                finish(shared, job.enqueued, false, || job.reply.send(Err(err)).is_ok());
            }
        }
    }
}

fn serve_sddmm(shared: &Shared, job: SddmmJob) {
    shared.stats.record_batch(1);
    let result = sddmm_execute_on(&shared.runtime, job.adj.csr(), &job.x, &job.y)
        .map_err(|e| EngineError::Exec(e.to_string()));
    let ok = result.is_ok();
    finish(shared, job.enqueued, ok, || job.reply.send(result).is_ok());
}

/// Record latency + outcome and deliver the reply (a client that dropped
/// its ticket is not an error).
fn finish(shared: &Shared, enqueued: Instant, ok: bool, send: impl FnOnce() -> bool) {
    shared.stats.record_latency(enqueued.elapsed().as_nanos() as u64);
    let counter = if ok { &shared.stats.completed } else { &shared.stats.failed };
    counter.fetch_add(1, Ordering::Relaxed);
    let _ = send();
}
