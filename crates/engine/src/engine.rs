//! The serving engine: a bounded multi-producer request queue drained by
//! a worker pool that folds fingerprint-compatible requests of *any*
//! batchable [`SparseOp`] — SpMM, SDDMM, multi-head attention — into
//! single widened kernel launches through one generic request path.
//!
//! Since the SLO redesign the queue is priority-then-deadline ordered,
//! admission sheds infeasible or expired work with typed
//! [`EngineError::Rejected`] answers instead of only blocking, the drain
//! loop drops already-expired requests without executing them, and an
//! optional adaptive batch window trades a bounded wait for wider
//! batches when arrivals predict more compatible riders.

use crate::stats::{EngineStats, StatsInner};
use crate::submission::{Priority, RejectReason, Submission};
use sparsetir_autotune::{tune_op, SparsityFingerprint, TunableOp, TuneCache, TuneKey};
use sparsetir_gpusim::prelude::GpuSpec;
use sparsetir_ir::exec::{fusion_default, Runtime};
use sparsetir_kernels::prelude::{
    bytes_copied_on_thread, copy_batch_default, AttentionOp, AttnHead, FusedAttentionOp,
    FusedSageOp, OpConfig, SddmmOp, SparseOp, SpmmOp,
};
use sparsetir_smat::prelude::{Csr, Dense, GraphDelta};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default bound on the request queue (the backpressure knob).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Default [`EngineConfig::drift_threshold`]: how far the log2-degree
/// histogram may drift (L1 distance over row count — a single moved row
/// contributes 2) before [`Engine::apply_delta`] re-anchors the tuning
/// identity and triggers a background retune. At `0.1`, five percent of
/// rows changing degree bin re-tunes; anything less keeps serving the
/// existing decisions.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.1;

/// Lock a mutex, recovering from poisoning: a panicking worker must not
/// wedge every subsequent submit/shutdown on the client threads. The
/// queue state stays structurally consistent across a worker unwind (a
/// popped job either completes or is answered with an error), so the
/// poison flag carries no information we act on.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Error answered to a serving client.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Request shapes are incompatible with the adjacency.
    Shape(String),
    /// Pre-0.2 name for a full-queue refusal. The generic submit path
    /// answers [`EngineError::Rejected`] with
    /// [`RejectReason::QueueFull`] instead; only the deprecated
    /// `try_submit_spmm` wrapper still maps back to this variant for its
    /// legacy callers.
    Saturated,
    /// The engine shut down before (or while) answering.
    Shutdown,
    /// The admission controller or drain loop refused the submission;
    /// the reason says whether the queue was full, the deadline was
    /// infeasible, or the deadline had already passed.
    Rejected {
        /// Why the submission was refused.
        reason: RejectReason,
    },
    /// Kernel lowering/compilation/execution failed (including a worker
    /// panic, which the engine survives).
    Exec(String),
    /// A ticket was asked for a different op's output variant.
    Output(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Shape(msg) => write!(f, "engine shape error: {msg}"),
            EngineError::Saturated => write!(f, "engine queue is full"),
            EngineError::Shutdown => write!(f, "engine has shut down"),
            EngineError::Rejected { reason } => write!(f, "engine rejected submission: {reason}"),
            EngineError::Exec(msg) => write!(f, "engine execution error: {msg}"),
            EngineError::Output(msg) => write!(f, "engine output error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A shareable, fingerprinted adjacency: the unit of kernel reuse and
/// request batching. The fingerprint is a content hash over the full CSR
/// (shape, structure and values), computed once at construction, so the
/// engine can group same-adjacency requests in O(1) per request —
/// cloning an `Adjacency` is an `Arc` bump.
///
/// Two requests batch together only when their fingerprints *and* their
/// matrix dimensions match; distinct matrices colliding in the 64-bit
/// hash is the usual negligible-probability caveat.
#[derive(Debug, Clone)]
pub struct Adjacency {
    csr: Arc<Csr>,
    fingerprint: u64,
    /// Structural sparsity summary of *this* matrix, precomputed so the
    /// tuned path never rescans the matrix per batch.
    sparsity: Arc<SparsityFingerprint>,
    /// The *tuning anchor*: the structural fingerprint [`TuneCache`] keys
    /// are built from. Freshly-wrapped adjacencies anchor on their own
    /// `sparsity`; [`Engine::apply_delta`] deliberately keeps the previous
    /// anchor while the degree histogram stays within the drift threshold,
    /// so every cached tune decision (and every compiled kernel keyed off
    /// it) survives small structural updates.
    anchor: Arc<SparsityFingerprint>,
    /// Monotonic delta version: `0` at construction, `+1` per
    /// [`Engine::apply_delta`]. Together with `anchor` this is the
    /// versioned fingerprint of the issue: the version says *how many*
    /// updates happened, the anchor says whether tuning identity changed.
    version: u64,
}

impl Adjacency {
    /// Fingerprint and wrap a CSR adjacency for serving.
    #[must_use]
    pub fn new(csr: Csr) -> Adjacency {
        let mut h = DefaultHasher::new();
        csr.rows().hash(&mut h);
        csr.cols().hash(&mut h);
        csr.indptr().hash(&mut h);
        csr.indices().hash(&mut h);
        for v in csr.values() {
            v.to_bits().hash(&mut h);
        }
        let sparsity = Arc::new(SparsityFingerprint::of(&csr));
        Adjacency {
            csr: Arc::new(csr),
            fingerprint: h.finish(),
            anchor: Arc::clone(&sparsity),
            sparsity,
            version: 0,
        }
    }

    /// The wrapped matrix.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The content fingerprint requests are batched by.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The structural sparsity summary of this matrix.
    #[must_use]
    pub fn sparsity(&self) -> &SparsityFingerprint {
        &self.sparsity
    }

    /// The tuning anchor: the fingerprint tune decisions are keyed by.
    /// Equal to [`Adjacency::sparsity`] until an [`Engine::apply_delta`]
    /// below the drift threshold carries an older anchor forward.
    #[must_use]
    pub fn anchor(&self) -> &SparsityFingerprint {
        &self.anchor
    }

    /// Monotonic update version (`0` for a freshly wrapped matrix).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when `other` may share a batched kernel launch with `self`.
    fn batches_with(&self, other: &Adjacency) -> bool {
        self.fingerprint == other.fingerprint
            && self.csr.rows() == other.csr.rows()
            && self.csr.cols() == other.csr.cols()
            && self.csr.nnz() == other.csr.nnz()
    }
}

/// One request for any served op, as queued by the generic submit path.
/// The variant carries exactly the op's [`SparseOp::Operands`]. Build
/// through [`Submission`]'s per-op constructors for the serving surface;
/// a bare `OpRequest` converts `Into<Submission>` with default options.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum OpRequest {
    /// SpMM `A · X`: one dense feature operand.
    Spmm(Dense),
    /// SDDMM `A ⊙ (X · Y)`: the dense operand pair.
    Sddmm((Dense, Dense)),
    /// Multi-head attention aggregation: one feature operand per head.
    Attention(Vec<Dense>),
    /// Cross-op fused attention pipeline (SDDMM → edge-softmax → SpMM in
    /// one kernel): one `(Q, Kᵀ, V)` triple per head.
    FusedAttention(Vec<AttnHead>),
    /// Cross-op fused GraphSAGE layer step (gather → normalize → matmul
    /// in one kernel): the `(X, W)` operand pair.
    FusedSage((Dense, Dense)),
}

impl OpRequest {
    /// The op kind tag this request routes to (`"spmm"`, `"sddmm"`,
    /// `"attention"`) — useful for logging and metrics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            OpRequest::Spmm(_) => SpmmOp::kind(),
            OpRequest::Sddmm(_) => SddmmOp::kind(),
            OpRequest::Attention(_) => AttentionOp::kind(),
            OpRequest::FusedAttention(_) => FusedAttentionOp::kind(),
            OpRequest::FusedSage(_) => FusedSageOp::kind(),
        }
    }

    /// Shape-validate against the adjacency via the op's own contract.
    fn validate(&self, adj: &Adjacency) -> Result<(), EngineError> {
        match self {
            OpRequest::Spmm(x) => SpmmOp::validate(adj.csr(), x),
            OpRequest::Sddmm(pair) => SddmmOp::validate(adj.csr(), pair),
            OpRequest::Attention(heads) => AttentionOp::validate(adj.csr(), heads),
            OpRequest::FusedAttention(heads) => FusedAttentionOp::validate(adj.csr(), heads),
            OpRequest::FusedSage(pair) => FusedSageOp::validate(adj.csr(), pair),
        }
        .map_err(EngineError::Shape)
    }

    /// The op-level batching contract, lifted to the request enum: same
    /// kind, and the op's [`SparseOp::can_batch`] agrees.
    fn can_batch_with(&self, other: &OpRequest) -> bool {
        match (self, other) {
            (OpRequest::Spmm(a), OpRequest::Spmm(b)) => SpmmOp::can_batch(a, b),
            (OpRequest::Sddmm(a), OpRequest::Sddmm(b)) => SddmmOp::can_batch(a, b),
            (OpRequest::Attention(a), OpRequest::Attention(b)) => AttentionOp::can_batch(a, b),
            (OpRequest::FusedAttention(a), OpRequest::FusedAttention(b)) => {
                FusedAttentionOp::can_batch(a, b)
            }
            (OpRequest::FusedSage(a), OpRequest::FusedSage(b)) => FusedSageOp::can_batch(a, b),
            _ => false,
        }
    }
}

/// The result of any served op — the one shape of output handling every
/// ticket answers with. Typed accessors convert back to the op's native
/// result.
#[derive(Debug, Clone)]
pub enum OpOutput {
    /// A dense matrix (SpMM).
    Dense(Dense),
    /// Per-non-zero edge values (SDDMM).
    Edges(Vec<f32>),
    /// One dense matrix per head (attention).
    Heads(Vec<Dense>),
}

impl OpOutput {
    fn variant(&self) -> &'static str {
        match self {
            OpOutput::Dense(_) => "Dense",
            OpOutput::Edges(_) => "Edges",
            OpOutput::Heads(_) => "Heads",
        }
    }

    /// The op kinds that produce an output variant — so a mismatch error
    /// names both sides' ops, not just the variant tags.
    fn kinds_of(variant: &'static str) -> &'static str {
        match variant {
            "Dense" => "spmm|fused_sage",
            "Edges" => "sddmm",
            _ => "attention|fused_attention",
        }
    }

    fn mismatch(expected: &'static str, got: &OpOutput) -> EngineError {
        EngineError::Output(format!(
            "expected {expected} ({}), got {} ({})",
            OpOutput::kinds_of(expected),
            got.variant(),
            OpOutput::kinds_of(got.variant()),
        ))
    }

    /// The dense SpMM result.
    ///
    /// # Errors
    /// [`EngineError::Output`] when this output belongs to a different
    /// op; the message carries the expected and actual variant + op
    /// kinds.
    pub fn into_dense(self) -> Result<Dense, EngineError> {
        match self {
            OpOutput::Dense(d) => Ok(d),
            other => Err(OpOutput::mismatch("Dense", &other)),
        }
    }

    /// The per-non-zero SDDMM result.
    ///
    /// # Errors
    /// [`EngineError::Output`] when this output belongs to a different
    /// op; the message carries the expected and actual variant + op
    /// kinds.
    pub fn into_edges(self) -> Result<Vec<f32>, EngineError> {
        match self {
            OpOutput::Edges(v) => Ok(v),
            other => Err(OpOutput::mismatch("Edges", &other)),
        }
    }

    /// The per-head attention result.
    ///
    /// # Errors
    /// [`EngineError::Output`] when this output belongs to a different
    /// op; the message carries the expected and actual variant + op
    /// kinds.
    pub fn into_heads(self) -> Result<Vec<Dense>, EngineError> {
        match self {
            OpOutput::Heads(v) => Ok(v),
            other => Err(OpOutput::mismatch("Heads", &other)),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bound on queued (not yet dispatched) requests — the backpressure
    /// knob: blocking submits wait for space (at most until their
    /// deadline), `try_submit*` fails with [`EngineError::Rejected`]
    /// (`QueueFull`).
    pub queue_depth: usize,
    /// Most requests folded into one batched kernel launch; `1` disables
    /// batching (every request runs alone — the unbatched baseline the
    /// `serving_throughput` experiment compares against).
    pub max_batch: usize,
    /// When true, the first batch for each `(adjacency, op)` pair runs
    /// the op's simulator-backed search through the generic `tune_op`
    /// path and the winning configuration is cached in the engine's
    /// [`TuneCache`] for every later batch on that pair. When false, all
    /// requests use the op's default configuration. A submission-level
    /// [`SubmitOpts::tune`](crate::SubmitOpts::tune) overrides this per
    /// request.
    pub tune: bool,
    /// Cross-op fusion for the fused op paths: `Some(true)` compiles the
    /// whole pipeline into one kernel, `Some(false)` forces the
    /// multi-launch fallback, and `None` (the default) follows the
    /// `SPARSETIR_NO_FUSE` environment kill switch via
    /// [`fusion_default`]. The flag is baked into the engine's shared
    /// [`Runtime`] at construction, so the two modes never share cached
    /// kernels.
    pub fuse: Option<bool>,
    /// Adaptive batch window: after draining a batch that still has
    /// rider room, a worker with an otherwise-empty queue waits up to
    /// this long for more compatible arrivals before firing — but only
    /// while arrivals are recent, and never when the wait would push the
    /// batch's most urgent deadline past feasibility. `None` (the
    /// default) keeps the legacy greedy drain: fire immediately with
    /// whatever is queued.
    pub batch_window: Option<Duration>,
    /// When true, batched launches run the legacy copying contract —
    /// stack operands into widened staging buffers, split the wide
    /// result back per rider — instead of the zero-copy segmented-view
    /// assembly. The two paths are bit-identical; the copy path survives
    /// as the differential oracle and the rollback switch. Defaults to
    /// the `SPARSETIR_COPY_BATCH` environment kill switch (set = copy)
    /// via [`copy_batch_default`].
    pub copy_batch: bool,
    /// Degree-histogram drift (see [`SparsityFingerprint::drift`]) above
    /// which [`Engine::apply_delta`] re-anchors the adjacency's tuning
    /// identity and schedules a background retune. At or below the
    /// threshold the old anchor is kept: cached tune decisions and
    /// compiled kernels keep serving unchanged. Defaults to
    /// [`DEFAULT_DRIFT_THRESHOLD`].
    pub drift_threshold: f64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_batch: 8,
            tune: false,
            fuse: None,
            batch_window: None,
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }
    }
}

struct Job {
    adj: Adjacency,
    req: OpRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    priority: Priority,
    tune: Option<bool>,
    /// Admission order, for stable FIFO among equal (priority, deadline)
    /// keys — default-option submissions order exactly like the pre-SLO
    /// queue.
    seq: u64,
    reply: mpsc::Sender<Result<OpOutput, EngineError>>,
}

struct QueueState {
    queue: VecDeque<Job>,
    /// Crash-safety test hook (see [`Engine::inject_worker_panic`]):
    /// each pending injection makes one draining worker panic while it
    /// holds the queue lock.
    inject_panics: usize,
    /// Monotonic admission counter feeding [`Job::seq`].
    seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    config: EngineConfig,
    runtime: Arc<Runtime>,
    tune_cache: TuneCache<OpConfig>,
    /// Single-flight guard for tuning searches: [`TuneCache`] computes
    /// outside its lock by design, so without this, workers racing the
    /// *first* batches of one adjacency would each pay the full search.
    tune_flight: Mutex<()>,
    /// Engine birth instant: the epoch for [`Shared::last_arrival_ns`].
    t0: Instant,
    /// Nanoseconds-since-`t0` of the most recent admission — the
    /// adaptive batch window's arrival-rate signal (a stale value means
    /// waiting for riders is pointless).
    last_arrival_ns: AtomicU64,
    /// Every tune decision taken under an anchor fingerprint, with a
    /// type-erased replay closure — the worklist a background retune runs
    /// when [`Engine::apply_delta`] re-anchors past the drift threshold.
    retune_registry: Mutex<HashMap<SparsityFingerprint, Vec<RetuneRecord>>>,
    /// In-flight background retune threads; joined by
    /// [`Engine::quiesce_retunes`] and at drop.
    retune_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: StatsInner,
}

/// One tune decision to replay on re-anchor: the cache key it lives
/// under, plus a closure re-running the op's `tune_op` search (the op
/// type and request shape are captured; only the matrix varies).
struct RetuneRecord {
    key: TuneKey,
    retune: Arc<dyn Fn(&Csr) -> OpConfig + Send + Sync>,
}

impl Shared {
    fn note_arrival(&self) {
        self.last_arrival_ns.store(self.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// True when something was admitted within the last `horizon`.
    fn arrival_recent(&self, horizon: Duration) -> bool {
        let last = self.last_arrival_ns.load(Ordering::Relaxed);
        self.t0.elapsed().saturating_sub(Duration::from_nanos(last)) <= horizon
    }
}

/// Pending result of any submitted request: the one generic ticket every
/// op answers through. [`Ticket::wait`] yields the unified [`OpOutput`];
/// the `wait_*` conveniences convert to the op's native result.
#[derive(Debug)]
#[must_use = "wait() on the ticket to receive the result"]
pub struct Ticket {
    rx: mpsc::Receiver<Result<OpOutput, EngineError>>,
}

impl Ticket {
    /// Block until the engine answers.
    ///
    /// # Errors
    /// Propagates the worker-side error, or [`EngineError::Shutdown`]
    /// when the engine died before answering.
    pub fn wait(self) -> Result<OpOutput, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Shutdown))
    }

    /// Wait and unwrap a dense (SpMM) result.
    ///
    /// # Errors
    /// Like [`Ticket::wait`], plus [`EngineError::Output`] on an op
    /// mismatch.
    pub fn wait_dense(self) -> Result<Dense, EngineError> {
        self.wait()?.into_dense()
    }

    /// Wait and unwrap a per-non-zero (SDDMM) result.
    ///
    /// # Errors
    /// Like [`Ticket::wait`], plus [`EngineError::Output`] on an op
    /// mismatch.
    pub fn wait_edges(self) -> Result<Vec<f32>, EngineError> {
        self.wait()?.into_edges()
    }

    /// Wait and unwrap a per-head (attention) result.
    ///
    /// # Errors
    /// Like [`Ticket::wait`], plus [`EngineError::Output`] on an op
    /// mismatch.
    pub fn wait_heads(self) -> Result<Vec<Dense>, EngineError> {
        self.wait()?.into_heads()
    }
}

/// Multi-tenant serving engine: owns a shared kernel-cache [`Runtime`]
/// and an op-agnostic [`TuneCache`], accepts [`Submission`]s for any
/// served [`SparseOp`] from any number of client threads through one
/// generic submit path, and batches concurrent requests that share an
/// [`Adjacency`] fingerprint (and satisfy the op's batching contract)
/// into single widened kernel launches.
///
/// Submissions carry optional SLO envelopes — a deadline and a
/// [`Priority`] class. The queue serves higher priorities first and
/// earlier deadlines first within a class; the admission controller
/// sheds work it cannot serve in time ([`EngineError::Rejected`]); the
/// drain loop drops expired requests unexecuted.
///
/// Dropping the engine shuts it down: queued requests are still drained
/// and answered, then the workers exit.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Start an engine with `config.workers` worker threads and a fresh
    /// kernel cache.
    #[must_use]
    pub fn new(config: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inject_panics: 0,
                seq: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            config: config.clone(),
            runtime: Arc::new(Runtime::with_fusion(config.fuse.unwrap_or_else(fusion_default))),
            tune_cache: TuneCache::new(),
            tune_flight: Mutex::new(()),
            t0: Instant::now(),
            last_arrival_ns: AtomicU64::new(0),
            retune_registry: Mutex::new(HashMap::new()),
            retune_threads: Mutex::new(Vec::new()),
            stats: StatsInner::default(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sparsetir-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// The engine's kernel-cache runtime (for compilation accounting:
    /// `runtime().compilations()`, `runtime().cached()`).
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.shared.runtime
    }

    /// The engine's per-(adjacency, op) tuning cache.
    #[must_use]
    pub fn tune_cache(&self) -> &TuneCache<OpConfig> {
        &self.shared.tune_cache
    }

    /// Snapshot the serving counters. Buffer-pool hit/miss counts come
    /// from the shared runtime's size-classed scratch pool; every other
    /// field comes from the engine's own atomics.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.shared.stats.snapshot();
        let (hits, misses) = self.shared.runtime.pool().counters();
        stats.pool_hits = hits;
        stats.pool_misses = misses;
        stats
    }

    /// Submit any op, blocking while the queue is at capacity — the one
    /// generic submit path every typed wrapper routes through. Accepts a
    /// [`Submission`] (op + SLO options) or a bare [`OpRequest`]
    /// (default options — the legacy contract).
    ///
    /// A submission with a deadline blocks on a full queue at most until
    /// that deadline, and is shed at admission when the deadline is
    /// infeasible or already passed.
    ///
    /// # Errors
    /// [`EngineError::Shape`] when the operands are incompatible with
    /// the adjacency, [`EngineError::Rejected`] when the admission
    /// controller sheds the submission, and [`EngineError::Shutdown`]
    /// after shutdown.
    pub fn submit(
        &self,
        adj: &Adjacency,
        sub: impl Into<Submission>,
    ) -> Result<Ticket, EngineError> {
        self.submit_request(adj, sub.into(), true)
    }

    /// Submit any op without blocking: a full queue answers
    /// [`EngineError::Rejected`] (`QueueFull`) immediately (unless the
    /// submission outranks queued work, which it evicts instead).
    ///
    /// # Errors
    /// Like [`Engine::submit`].
    pub fn try_submit(
        &self,
        adj: &Adjacency,
        sub: impl Into<Submission>,
    ) -> Result<Ticket, EngineError> {
        self.submit_request(adj, sub.into(), false)
    }

    /// Blocking convenience: submit any op and wait for the unified
    /// [`OpOutput`].
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait`].
    pub fn serve(
        &self,
        adj: &Adjacency,
        sub: impl Into<Submission>,
    ) -> Result<OpOutput, EngineError> {
        self.submit(adj, sub)?.wait()
    }

    /// Submit an SpMM request (`adj · feat`), blocking while the queue is
    /// at capacity.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    #[deprecated(since = "0.2.0", note = "use engine.submit(adj, Submission::spmm(feat))")]
    pub fn submit_spmm(&self, adj: &Adjacency, feat: Dense) -> Result<Ticket, EngineError> {
        self.submit(adj, Submission::spmm(feat))
    }

    /// Submit an SpMM request without blocking.
    ///
    /// # Errors
    /// See [`Engine::try_submit`]; a full queue answers the legacy
    /// [`EngineError::Saturated`].
    #[deprecated(since = "0.2.0", note = "use engine.try_submit(adj, Submission::spmm(feat))")]
    pub fn try_submit_spmm(&self, adj: &Adjacency, feat: Dense) -> Result<Ticket, EngineError> {
        self.try_submit(adj, Submission::spmm(feat)).map_err(|e| match e {
            EngineError::Rejected { reason: RejectReason::QueueFull } => EngineError::Saturated,
            other => other,
        })
    }

    /// Blocking convenience: SpMM request → dense result.
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait_dense`].
    #[deprecated(since = "0.2.0", note = "use engine.serve(adj, Submission::spmm(feat))")]
    pub fn spmm(&self, adj: &Adjacency, feat: Dense) -> Result<Dense, EngineError> {
        self.submit(adj, Submission::spmm(feat))?.wait_dense()
    }

    /// Submit an SDDMM request (`adj ⊙ (x · y)` sampled at the
    /// non-zeros), blocking while the queue is at capacity.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    #[deprecated(since = "0.2.0", note = "use engine.submit(adj, Submission::sddmm(x, y))")]
    pub fn submit_sddmm(&self, adj: &Adjacency, x: Dense, y: Dense) -> Result<Ticket, EngineError> {
        self.submit(adj, Submission::sddmm(x, y))
    }

    /// Blocking convenience: SDDMM request → per-non-zero values.
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait_edges`].
    #[deprecated(since = "0.2.0", note = "use engine.serve(adj, Submission::sddmm(x, y))")]
    pub fn sddmm(&self, adj: &Adjacency, x: Dense, y: Dense) -> Result<Vec<f32>, EngineError> {
        self.submit(adj, Submission::sddmm(x, y))?.wait_edges()
    }

    /// Submit a multi-head attention aggregation (one SpMM per head over
    /// the shared mask), blocking while the queue is at capacity.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    #[deprecated(since = "0.2.0", note = "use engine.submit(adj, Submission::attention(heads))")]
    pub fn submit_attention(
        &self,
        adj: &Adjacency,
        heads: Vec<Dense>,
    ) -> Result<Ticket, EngineError> {
        self.submit(adj, Submission::attention(heads))
    }

    /// Blocking convenience: attention request → per-head results.
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait_heads`].
    #[deprecated(since = "0.2.0", note = "use engine.serve(adj, Submission::attention(heads))")]
    pub fn attention(&self, adj: &Adjacency, heads: Vec<Dense>) -> Result<Vec<Dense>, EngineError> {
        self.submit(adj, Submission::attention(heads))?.wait_heads()
    }

    /// Submit a fused attention pipeline request (SDDMM → edge-softmax →
    /// SpMM in one kernel, one `(Q, Kᵀ, V)` triple per head), blocking
    /// while the queue is at capacity.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    #[deprecated(
        since = "0.2.0",
        note = "use engine.submit(adj, Submission::fused_attention(heads))"
    )]
    pub fn submit_fused_attention(
        &self,
        adj: &Adjacency,
        heads: Vec<AttnHead>,
    ) -> Result<Ticket, EngineError> {
        self.submit(adj, Submission::fused_attention(heads))
    }

    /// Blocking convenience: fused attention request → per-head results.
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait_heads`].
    #[deprecated(
        since = "0.2.0",
        note = "use engine.serve(adj, Submission::fused_attention(heads))"
    )]
    pub fn fused_attention(
        &self,
        adj: &Adjacency,
        heads: Vec<AttnHead>,
    ) -> Result<Vec<Dense>, EngineError> {
        self.submit(adj, Submission::fused_attention(heads))?.wait_heads()
    }

    /// Submit a fused GraphSAGE layer step (gather → normalize → matmul
    /// in one kernel over operands `(X, W)`), blocking while the queue is
    /// at capacity.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    #[deprecated(since = "0.2.0", note = "use engine.submit(adj, Submission::fused_sage(x, w))")]
    pub fn submit_fused_sage(
        &self,
        adj: &Adjacency,
        x: Dense,
        w: Dense,
    ) -> Result<Ticket, EngineError> {
        self.submit(adj, Submission::fused_sage(x, w))
    }

    /// Blocking convenience: fused SAGE request → dense layer output.
    ///
    /// # Errors
    /// See [`Engine::submit`] and [`Ticket::wait_dense`].
    #[deprecated(since = "0.2.0", note = "use engine.serve(adj, Submission::fused_sage(x, w))")]
    pub fn fused_sage(&self, adj: &Adjacency, x: Dense, w: Dense) -> Result<Dense, EngineError> {
        self.submit(adj, Submission::fused_sage(x, w))?.wait_dense()
    }

    /// Apply a batch of edge updates to a served adjacency, returning the
    /// successor `Adjacency` (version bumped by one) while the engine
    /// keeps serving — the *stale-while-retune* state machine:
    ///
    /// - **Below (or at) the drift threshold** the successor keeps the
    ///   predecessor's tuning *anchor*: every cached tune decision and
    ///   compiled kernel stays valid, nothing recompiles, and
    ///   [`EngineStats::retunes_skipped`] ticks.
    /// - **Above the threshold** the successor anchors on its own
    ///   fingerprint. Every tune decision recorded under the old anchor is
    ///   *pre-seeded* under the new anchor's keys (stale but correct — the
    ///   matrix changed shape-compatibly, so the old schedule still runs),
    ///   then ONE background thread replays the tuning searches against
    ///   the updated matrix and atomically overwrites each seed in the
    ///   [`TuneCache`] as it lands. Requests never observe a gap: they hit
    ///   either the stale or the fresh decision.
    ///
    /// The predecessor adjacency stays fully servable (requests holding it
    /// batch and execute as before) — callers swap to the successor at
    /// their own pace.
    ///
    /// # Errors
    /// [`EngineError::Shape`] when the delta addresses rows/columns
    /// outside the adjacency.
    pub fn apply_delta(
        &self,
        adj: &Adjacency,
        delta: &GraphDelta,
    ) -> Result<Adjacency, EngineError> {
        let shared = &self.shared;
        let next_csr =
            adj.csr().apply_delta(delta).map_err(|e| EngineError::Shape(e.to_string()))?;
        let mut next = Adjacency::new(next_csr);
        next.version = adj.version + 1;
        shared.stats.deltas_applied.fetch_add(1, Ordering::Relaxed);
        let drift = adj.anchor.drift(&next.sparsity);
        if drift <= shared.config.drift_threshold {
            next.anchor = Arc::clone(&adj.anchor);
            shared.stats.retunes_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(next);
        }
        // Re-anchor: move the old anchor's tune records to the new one,
        // seeding each new key with the stale decision so lookups keep
        // hitting while the background pass runs.
        let mut work = Vec::new();
        {
            let mut reg = lock(&shared.retune_registry);
            let records = reg.remove(&*adj.anchor).unwrap_or_default();
            let entry = reg.entry((*next.anchor).clone()).or_default();
            for rec in records {
                let mut key = rec.key.clone();
                key.fingerprint = (*next.anchor).clone();
                if entry.iter().any(|r| r.key == key) {
                    continue;
                }
                if let Some(stale) = shared.tune_cache.peek(&rec.key) {
                    shared.tune_cache.insert(key.clone(), stale);
                }
                work.push((key.clone(), Arc::clone(&rec.retune)));
                entry.push(RetuneRecord { key, retune: rec.retune });
            }
        }
        shared.stats.retunes_started.fetch_add(1, Ordering::Relaxed);
        let csr = Arc::clone(&next.csr);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("sparsetir-retune".into())
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for (key, retune) in &work {
                        let fresh = retune(&csr);
                        shared.tune_cache.insert(key.clone(), fresh);
                    }
                }));
                if result.is_err() {
                    shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
                shared.stats.retunes_completed.fetch_add(1, Ordering::Relaxed);
            })
            .expect("spawn retune thread");
        lock(&self.shared.retune_threads).push(handle);
        Ok(next)
    }

    /// Join every background retune spawned by [`Engine::apply_delta`].
    /// Serving does not require this — stale decisions answer until the
    /// swap — but tests and orderly shutdowns use it to observe the
    /// settled state ([`EngineStats::retunes_completed`] catches up to
    /// [`EngineStats::retunes_started`]).
    pub fn quiesce_retunes(&self) {
        let handles: Vec<_> = lock(&self.shared.retune_threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Crash-safety regression hook: make the next worker that drains the
    /// queue panic *while holding the queue lock*, poisoning the mutex.
    /// The engine must recover — the worker survives, later submits
    /// succeed, and [`EngineStats::worker_panics`] counts the event.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) {
        let mut st = lock(&self.shared.state);
        st.inject_panics += 1;
        drop(st);
        self.shared.not_empty.notify_one();
    }

    fn submit_request(
        &self,
        adj: &Adjacency,
        sub: Submission,
        block: bool,
    ) -> Result<Ticket, EngineError> {
        let Submission { req, opts } = sub;
        req.validate(adj)?;
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            adj: adj.clone(),
            req,
            enqueued: now,
            deadline: opts.deadline.map(|d| now + d),
            priority: opts.priority,
            tune: opts.tune,
            seq: 0,
            reply: tx,
        };
        self.push(job, block)?;
        Ok(Ticket { rx })
    }

    fn push(&self, job: Job, block: bool) -> Result<(), EngineError> {
        let mut evicted = None;
        let result = self.admit(job, block, &mut evicted);
        // Answer the eviction victim outside the queue lock; its ticket
        // may already be dropped.
        if let Some(v) = evicted {
            self.shared.stats.shed(RejectReason::QueueFull, v.priority);
            let _ = v.reply.send(Err(EngineError::Rejected { reason: RejectReason::QueueFull }));
        }
        result
    }

    /// The admission controller: find (or free) a queue slot, shed what
    /// cannot be served in time, and insert in priority-then-deadline
    /// order.
    fn admit(
        &self,
        mut job: Job,
        block: bool,
        evicted: &mut Option<Job>,
    ) -> Result<(), EngineError> {
        let shared = &self.shared;
        let depth = shared.config.queue_depth.max(1);
        let mut st = lock(&shared.state);
        loop {
            if st.shutdown {
                return Err(EngineError::Shutdown);
            }
            let now = Instant::now();
            if job.deadline.is_some_and(|dl| dl <= now) {
                shared.stats.shed(RejectReason::Expired, job.priority);
                return Err(EngineError::Rejected { reason: RejectReason::Expired });
            }
            if st.queue.len() < depth {
                break;
            }
            // Full queue: a higher-priority submission takes the slot of
            // the queue's lowest-ranked entry instead of waiting behind
            // it — this is what keeps Hi traffic unstarvable under a
            // saturating Lo flood.
            if st.queue.back().is_some_and(|back| back.priority < job.priority) {
                *evicted = st.queue.pop_back();
                break;
            }
            if !block {
                shared.stats.shed(RejectReason::QueueFull, job.priority);
                return Err(EngineError::Rejected { reason: RejectReason::QueueFull });
            }
            st = match job.deadline {
                // A deadlined blocking submit waits for space at most
                // until its deadline (the next loop turn sheds it as
                // Expired).
                Some(dl) => {
                    let left = dl.saturating_duration_since(now);
                    shared.not_full.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner).0
                }
                None => shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner),
            };
        }
        st.seq += 1;
        job.seq = st.seq;
        let pos = insert_pos(&st.queue, &job);
        // Deadline-feasibility check: with `pos` requests served first
        // at roughly the op's estimated execution time each (single
        // worker, no batching assumed — a deliberately conservative
        // model), would this request still answer in time? Shed now
        // rather than let it expire in the queue. No estimate yet (cold
        // kind) admits optimistically.
        if let Some(dl) = job.deadline {
            let est = shared.stats.exec_estimate_ns(job.req.kind());
            if est > 0 {
                let eta = Duration::from_nanos(est.saturating_mul(pos as u64 + 1));
                if Instant::now() + eta > dl {
                    shared.stats.shed(RejectReason::DeadlineInfeasible, job.priority);
                    return Err(EngineError::Rejected { reason: RejectReason::DeadlineInfeasible });
                }
            }
        }
        st.queue.insert(pos, job);
        let qdepth = st.queue.len();
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.queue_high_water.fetch_max(qdepth, Ordering::Relaxed);
        shared.note_arrival();
        drop(st);
        // notify_all, not notify_one: a worker parked in the adaptive
        // batch window also consumes wakeups, so a single notify could
        // be swallowed by a window-waiter while an idle worker sleeps.
        self.shared.not_empty.notify_all();
        Ok(())
    }
}

/// Queue ordering: priority descending, then deadline ascending
/// (deadline-less after deadlined within a class), then admission order.
/// Default-option submissions therefore keep exact FIFO order — the
/// pre-SLO queue discipline.
fn orders_before(a: &Job, b: &Job) -> bool {
    if a.priority != b.priority {
        return a.priority > b.priority;
    }
    match (a.deadline, b.deadline) {
        (Some(x), Some(y)) if x != y => x < y,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        _ => a.seq < b.seq,
    }
}

/// Where `job` slots into the ordered queue (after every entry it does
/// not outrank — stable for ties).
fn insert_pos(queue: &VecDeque<Job>, job: &Job) -> usize {
    queue.partition_point(|q| !orders_before(job, q))
}

impl Drop for Engine {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.quiesce_retunes();
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The engine-side face of a servable op: how to pull this op's typed
/// operands out of the [`OpRequest`] enum and wrap its output back into
/// the unified [`OpOutput`]. Everything else — batching, tuning,
/// execution — comes from the generic [`SparseOp`]/[`TunableOp`]
/// contracts, so adding a served op is one enum variant plus one impl of
/// this glue.
trait Served: TunableOp<Adj = Csr> {
    fn extract(req: OpRequest) -> Self::Operands;
    fn peek(req: &OpRequest) -> &Self::Operands;
    fn wrap(out: Self::Output) -> OpOutput;
}

impl Served for SpmmOp {
    fn extract(req: OpRequest) -> Dense {
        match req {
            OpRequest::Spmm(x) => x,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn peek(req: &OpRequest) -> &Dense {
        match req {
            OpRequest::Spmm(x) => x,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn wrap(out: Dense) -> OpOutput {
        OpOutput::Dense(out)
    }
}

impl Served for SddmmOp {
    fn extract(req: OpRequest) -> (Dense, Dense) {
        match req {
            OpRequest::Sddmm(pair) => pair,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn peek(req: &OpRequest) -> &(Dense, Dense) {
        match req {
            OpRequest::Sddmm(pair) => pair,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn wrap(out: Vec<f32>) -> OpOutput {
        OpOutput::Edges(out)
    }
}

impl Served for AttentionOp {
    fn extract(req: OpRequest) -> Vec<Dense> {
        match req {
            OpRequest::Attention(heads) => heads,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn peek(req: &OpRequest) -> &Vec<Dense> {
        match req {
            OpRequest::Attention(heads) => heads,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn wrap(out: Vec<Dense>) -> OpOutput {
        OpOutput::Heads(out)
    }
}

impl Served for FusedAttentionOp {
    fn extract(req: OpRequest) -> Vec<AttnHead> {
        match req {
            OpRequest::FusedAttention(heads) => heads,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn peek(req: &OpRequest) -> &Vec<AttnHead> {
        match req {
            OpRequest::FusedAttention(heads) => heads,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn wrap(out: Vec<Dense>) -> OpOutput {
        OpOutput::Heads(out)
    }
}

impl Served for FusedSageOp {
    fn extract(req: OpRequest) -> (Dense, Dense) {
        match req {
            OpRequest::FusedSage(pair) => pair,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn peek(req: &OpRequest) -> &(Dense, Dense) {
        match req {
            OpRequest::FusedSage(pair) => pair,
            _ => unreachable!("kind-matched batch"),
        }
    }

    fn wrap(out: Dense) -> OpOutput {
        OpOutput::Dense(out)
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // A panic anywhere in a tick — including the injected lock-held
        // panic of the crash-safety tests — must not kill the worker:
        // catch it, count it, keep draining. The queue mutex recovers
        // from the poisoning via `lock`.
        match catch_unwind(AssertUnwindSafe(|| worker_tick(shared))) {
            Ok(true) => {}
            Ok(false) => return,
            Err(_) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One drain-and-serve iteration; `false` means shutdown.
fn worker_tick(shared: &Shared) -> bool {
    let mut expired = Vec::new();
    let batch = {
        let mut st = lock(&shared.state);
        loop {
            if st.inject_panics > 0 {
                st.inject_panics -= 1;
                panic!("injected worker panic (crash-safety test hook)")
            }
            // Expired-at-drain requests are swept out before dispatch
            // and answered Expired — their operands never reach
            // `execute_batch_on`.
            sweep_expired(&mut st.queue, &mut expired);
            if let Some(first) = st.queue.pop_front() {
                // Greedily fold queued compatible requests (same
                // adjacency fingerprint, same op, op-level can_batch)
                // into this dispatch, up to max_batch.
                let mut batch = vec![first];
                drain_compatible(&mut st.queue, &mut batch, shared.config.max_batch);
                if let Some(window) = shared.config.batch_window {
                    drop(hold_for_riders(shared, st, &mut batch, &mut expired, window));
                }
                break batch;
            }
            if !expired.is_empty() {
                // Nothing left to serve, but sweep results to deliver.
                break Vec::new();
            }
            if st.shutdown {
                return false;
            }
            st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    };
    // Space was freed: wake blocked submitters.
    shared.not_full.notify_all();
    answer_expired(shared, expired);
    if !batch.is_empty() {
        serve_batch(shared, batch);
    }
    true
}

/// Remove every queued job whose deadline has passed, preserving order.
fn sweep_expired(queue: &mut VecDeque<Job>, expired: &mut Vec<Job>) {
    let now = Instant::now();
    let mut i = 0;
    while i < queue.len() {
        if queue[i].deadline.is_some_and(|dl| dl <= now) {
            if let Some(job) = queue.remove(i) {
                expired.push(job);
            }
        } else {
            i += 1;
        }
    }
}

/// Answer drain-time-expired jobs with `Rejected { Expired }` — latency
/// is recorded (they waited in the queue), but they never execute.
fn answer_expired(shared: &Shared, expired: Vec<Job>) {
    for job in expired {
        shared.stats.record_latency(job.enqueued.elapsed().as_nanos() as u64);
        shared.stats.expire(job.priority);
        let _ = job.reply.send(Err(EngineError::Rejected { reason: RejectReason::Expired }));
    }
}

/// Pull every queued job batch-compatible with the batch out of the
/// queue, preserving the relative order of everything else.
fn drain_compatible(queue: &mut VecDeque<Job>, batch: &mut Vec<Job>, max_batch: usize) {
    if max_batch <= 1 {
        return;
    }
    let mut i = 0;
    while i < queue.len() && batch.len() < max_batch {
        // Pairwise against the whole batch, not just the head: batching
        // contracts need not be transitive (a 0-head fused-attention
        // request rides with any shape, but must not bridge two
        // incompatible shape groups into one launch).
        let job = &queue[i];
        let compatible = batch[0].adj.batches_with(&job.adj)
            && batch.iter().all(|b| b.req.can_batch_with(&job.req));
        if compatible {
            if let Some(job) = queue.remove(i) {
                batch.push(job);
            }
        } else {
            i += 1;
        }
    }
}

/// The adaptive batch window: with rider room left and an otherwise
/// drained queue, park briefly for more compatible arrivals — but fire
/// immediately under deadline pressure (the wait plus the op's estimated
/// execution must still fit the batch's most urgent deadline), when
/// arrivals have gone quiet, or when incompatible work is already
/// waiting behind us.
fn hold_for_riders<'a>(
    shared: &Shared,
    mut st: MutexGuard<'a, QueueState>,
    batch: &mut Vec<Job>,
    expired: &mut Vec<Job>,
    window: Duration,
) -> MutexGuard<'a, QueueState> {
    let give_up = Instant::now() + window;
    let est = Duration::from_nanos(shared.stats.exec_estimate_ns(batch[0].req.kind()));
    loop {
        if batch.len() >= shared.config.max_batch.max(1) || !st.queue.is_empty() || st.shutdown {
            break;
        }
        let now = Instant::now();
        if let Some(urgent) = batch.iter().filter_map(|j| j.deadline).min() {
            if urgent.saturating_duration_since(now) <= window + est {
                break;
            }
        }
        if !shared.arrival_recent(window.max(Duration::from_millis(1)) * 8) {
            break;
        }
        let left = give_up.saturating_duration_since(now);
        if left.is_zero() {
            break;
        }
        let (guard, timeout) =
            shared.not_empty.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner);
        st = guard;
        sweep_expired(&mut st.queue, expired);
        drain_compatible(&mut st.queue, batch, shared.config.max_batch);
        if timeout.timed_out() {
            break;
        }
    }
    st
}

/// One dispatch: route the kind-matched batch to its op's generic serve
/// path.
fn serve_batch(shared: &Shared, batch: Vec<Job>) {
    match &batch[0].req {
        OpRequest::Spmm(_) => serve_as::<SpmmOp>(shared, batch),
        OpRequest::Sddmm(_) => serve_as::<SddmmOp>(shared, batch),
        OpRequest::Attention(_) => serve_as::<AttentionOp>(shared, batch),
        OpRequest::FusedAttention(_) => serve_as::<FusedAttentionOp>(shared, batch),
        OpRequest::FusedSage(_) => serve_as::<FusedSageOp>(shared, batch),
    }
}

/// The configuration for one `(adjacency, op)` pair: the engine-owned
/// [`TuneCache`] memoizes the op's simulator-backed `tune_op` search per
/// sparsity fingerprint, so only the first batch on a new pair pays it.
/// The decision is keyed on the adjacency and op kind alone — request
/// shapes vary per batch, so the search runs at the triggering request's
/// shape and the winner is reused for all shapes (the §2 amortization
/// trade). `tune` is the engine-wide flag unless the batch head's
/// submission overrode it.
fn op_config_for<O>(shared: &Shared, adj: &Adjacency, shape: &[usize], tune: bool) -> O::Config
where
    O: Served,
    OpConfig: From<O::Config>,
    O::Config: TryFrom<OpConfig>,
{
    if !tune {
        return O::default_config();
    }
    let spec = GpuSpec::v100();
    // Keyed on the *anchor*, not the matrix's own fingerprint: a
    // below-threshold `apply_delta` successor shares its predecessor's
    // anchor, so its batches hit the predecessor's cached decision —
    // stale-while-retune serving in the hit path.
    let key = TuneKey {
        workload: O::kind(),
        backend: "gpusim",
        device: spec.device_id(),
        extra: vec![],
        fingerprint: (*adj.anchor).clone(),
    };
    // Double-checked single flight: serve hits without the guard, and
    // take it only on a miss — TuneCache computes outside its own lock,
    // so concurrent first batches of one adjacency would otherwise each
    // run the full search, while a global guard on the hit path would
    // serialize unrelated adjacencies behind a slow search.
    let cached = match shared.tune_cache.get(&key) {
        Some(config) => config,
        None => {
            let _flight = lock(&shared.tune_flight);
            let (config, hit) = shared.tune_cache.get_or_insert_with(key.clone(), || {
                tune_op::<O>(&spec, adj.csr(), shape).config.into()
            });
            if !hit {
                // First decision under this anchor: remember how to redo
                // it, so a future re-anchor can replay the search against
                // the updated matrix in the background.
                let shape = shape.to_vec();
                let record = RetuneRecord {
                    key: key.clone(),
                    retune: Arc::new(move |csr: &Csr| {
                        tune_op::<O>(&GpuSpec::v100(), csr, &shape).config.into()
                    }),
                };
                let mut reg = lock(&shared.retune_registry);
                let entry = reg.entry(key.fingerprint.clone()).or_default();
                if !entry.iter().any(|r| r.key == key) {
                    entry.push(record);
                }
            }
            config
        }
    };
    O::Config::try_from(cached).unwrap_or_else(|_| O::default_config())
}

/// Serve one kind-matched batch through the op's generic contract:
/// config lookup → widened `execute_batch_on` → per-request replies. A
/// panicking kernel answers every rider with [`EngineError::Exec`]
/// instead of killing the worker.
fn serve_as<O>(shared: &Shared, batch: Vec<Job>)
where
    O: Served,
    OpConfig: From<O::Config>,
    O::Config: TryFrom<OpConfig>,
{
    let shape = O::shape_of(O::peek(&batch[0].req));
    let adj = batch[0].adj.clone();
    // The batch head decides the tuning mode for its riders (one launch,
    // one configuration).
    let tune = batch[0].tune.unwrap_or(shared.config.tune);
    shared.stats.record_batch(O::kind(), batch.len());
    let width = batch.len().max(1) as u64;
    let mut replies = Vec::with_capacity(batch.len());
    let mut reqs = Vec::with_capacity(batch.len());
    for job in batch {
        replies.push((job.enqueued, job.priority, job.reply));
        reqs.push(O::extract(job.req));
    }
    // The config lookup sits inside the catch: a panicking tuning search
    // must answer its riders with `Exec` too, not drop their replies.
    let started = Instant::now();
    // Sample the thread-local copy counter around the launch: the worker
    // thread runs the whole batch, so the delta is exactly the bytes the
    // batching layer staged for these riders (0 on the view path).
    let copied_before = bytes_copied_on_thread();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let config = op_config_for::<O>(shared, &adj, &shape, tune);
        O::execute_batch_mode_on(
            &shared.runtime,
            adj.csr(),
            &reqs,
            &config,
            shared.config.copy_batch,
        )
    }));
    shared
        .stats
        .bytes_copied
        .fetch_add(bytes_copied_on_thread().saturating_sub(copied_before), Ordering::Relaxed);
    match result {
        Ok(Ok(outs)) => {
            // Per-request execution estimate for admission: the batch's
            // wall time amortized over its riders.
            shared.stats.record_exec(O::kind(), started.elapsed().as_nanos() as u64 / width);
            for ((enqueued, priority, reply), out) in replies.into_iter().zip(outs) {
                finish(shared, enqueued, priority, true, || reply.send(Ok(O::wrap(out))).is_ok());
            }
        }
        Ok(Err(e)) => {
            answer_error(shared, replies, &EngineError::Exec(e.to_string()));
        }
        Err(panic) => {
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked while executing the batch".to_string());
            answer_error(shared, replies, &EngineError::Exec(format!("worker panic: {msg}")));
        }
    }
}

type Reply = (Instant, Priority, mpsc::Sender<Result<OpOutput, EngineError>>);

fn answer_error(shared: &Shared, replies: Vec<Reply>, err: &EngineError) {
    for (enqueued, priority, reply) in replies {
        let err = err.clone();
        finish(shared, enqueued, priority, false, || reply.send(Err(err)).is_ok());
    }
}

/// Record latency + outcome and deliver the reply (a client that dropped
/// its ticket is not an error).
fn finish(
    shared: &Shared,
    enqueued: Instant,
    priority: Priority,
    ok: bool,
    send: impl FnOnce() -> bool,
) {
    shared.stats.record_latency(enqueued.elapsed().as_nanos() as u64);
    if ok {
        shared.stats.serve(priority);
    } else {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
    }
    let _ = send();
}
