//! The options-carrying submission surface: one request type per served
//! op plus the SLO envelope it travels in — deadline, priority class and
//! per-request tuning override. `Submission` is the v0.2 public face of
//! [`Engine::submit`](crate::Engine::submit); the old per-op wrapper
//! methods are thin deprecated shims over these constructors.

use crate::engine::OpRequest;
use sparsetir_kernels::prelude::AttnHead;
use sparsetir_smat::prelude::Dense;
use std::fmt;
use std::time::Duration;

/// Priority class of a submission. Declaration order is serving order:
/// the queue serves all `Hi` work before any `Normal` work before any
/// `Lo` work (ties broken by deadline, then arrival). A full queue evicts
/// its newest strictly-lower-priority entry to admit higher-priority
/// work, so `Hi` traffic is never starved by a saturating `Lo` flood.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort background work: first to be shed under load.
    Lo,
    /// The default class — what every legacy wrapper submits.
    #[default]
    Normal,
    /// Latency-sensitive work: served ahead of every other class and
    /// admitted by evicting queued `Lo`/`Normal` work when the queue is
    /// full.
    Hi,
}

impl Priority {
    /// Every class, in per-priority-counter slot order (`Lo`, `Normal`,
    /// `Hi`).
    pub const ALL: [Priority; 3] = [Priority::Lo, Priority::Normal, Priority::Hi];

    /// Stable display name (`"lo"`, `"normal"`, `"hi"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::Lo => "lo",
            Priority::Normal => "normal",
            Priority::Hi => "hi",
        }
    }

    /// Index into per-priority counter arrays.
    #[must_use]
    pub(crate) fn slot(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why the admission controller refused (or the drain loop dropped) a
/// submission — the payload of
/// [`EngineError::Rejected`](crate::EngineError::Rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded queue was at capacity and the submission was neither
    /// willing to block nor of higher priority than anything queued.
    /// Also answered to a queued request evicted to admit
    /// higher-priority work.
    QueueFull,
    /// The deadline cannot be met even by the engine's own estimate of
    /// queue wait plus execution time, so the request was shed at
    /// admission instead of wasting a slot.
    DeadlineInfeasible,
    /// The deadline had already passed — at admission, while blocking on
    /// a full queue, or at drain time (the worker drops expired requests
    /// without executing them).
    Expired,
}

impl RejectReason {
    /// Stable display name (`"queue_full"`, `"deadline_infeasible"`,
    /// `"expired"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineInfeasible => "deadline_infeasible",
            RejectReason::Expired => "expired",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-request serving options. Build through the [`Submission`]
/// builder methods (the struct is `#[non_exhaustive]`; start from
/// `SubmitOpts::default()` when constructing directly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SubmitOpts {
    /// Answer-by budget, relative to submission time. `None` (the
    /// default) never expires — the legacy blocking contract. With a
    /// deadline set, the admission controller sheds the request when the
    /// deadline is infeasible or already passed, a blocking submit waits
    /// for queue space at most until the deadline, and the drain loop
    /// drops the request unexecuted once the deadline passes.
    pub deadline: Option<Duration>,
    /// Priority class; [`Priority::Normal`] by default.
    pub priority: Priority,
    /// Per-request override of
    /// [`EngineConfig::tune`](crate::EngineConfig::tune); `None` follows
    /// the engine-wide flag. The first request of a batch decides for
    /// its riders (batched requests share one launch configuration).
    pub tune: Option<bool>,
}

/// One op request plus its serving options — what [`Engine::submit`]
/// accepts. Constructed per op and refined builder-style:
///
/// ```
/// use sparsetir_engine::{Priority, Submission};
/// use sparsetir_smat::prelude::Dense;
/// use std::time::Duration;
///
/// let feat = Dense::zeros(8, 4);
/// let sub = Submission::spmm(feat)
///     .deadline(Duration::from_millis(5))
///     .priority(Priority::Hi);
/// assert_eq!(sub.kind(), "spmm");
/// ```
///
/// A bare [`OpRequest`] converts `Into<Submission>` with default options
/// (no deadline, [`Priority::Normal`], engine-wide tuning), so
/// `engine.submit(&adj, req)` keeps compiling — the legacy behavior is
/// the default-options corner of this surface.
///
/// [`Engine::submit`]: crate::Engine::submit
#[derive(Debug, Clone)]
pub struct Submission {
    pub(crate) req: OpRequest,
    pub(crate) opts: SubmitOpts,
}

impl Submission {
    /// Wrap any [`OpRequest`] with default options.
    #[must_use]
    pub fn new(req: OpRequest) -> Submission {
        Submission { req, opts: SubmitOpts::default() }
    }

    /// An SpMM request (`adj · feat`).
    #[must_use]
    pub fn spmm(feat: Dense) -> Submission {
        Submission::new(OpRequest::Spmm(feat))
    }

    /// An SDDMM request (`adj ⊙ (x · y)` sampled at the non-zeros).
    #[must_use]
    pub fn sddmm(x: Dense, y: Dense) -> Submission {
        Submission::new(OpRequest::Sddmm((x, y)))
    }

    /// A multi-head attention aggregation request (one feature operand
    /// per head).
    #[must_use]
    pub fn attention(heads: Vec<Dense>) -> Submission {
        Submission::new(OpRequest::Attention(heads))
    }

    /// A cross-op fused attention pipeline request (one `(Q, Kᵀ, V)`
    /// triple per head).
    #[must_use]
    pub fn fused_attention(heads: Vec<AttnHead>) -> Submission {
        Submission::new(OpRequest::FusedAttention(heads))
    }

    /// A fused GraphSAGE layer-step request (operands `(X, W)`).
    #[must_use]
    pub fn fused_sage(x: Dense, w: Dense) -> Submission {
        Submission::new(OpRequest::FusedSage((x, w)))
    }

    /// Set the answer-by budget, relative to submission time.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Submission {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Set the priority class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Submission {
        self.opts.priority = priority;
        self
    }

    /// Override the engine-wide tuning flag for this request.
    #[must_use]
    pub fn tune(mut self, tune: bool) -> Submission {
        self.opts.tune = Some(tune);
        self
    }

    /// Replace the whole options block.
    #[must_use]
    pub fn with_opts(mut self, opts: SubmitOpts) -> Submission {
        self.opts = opts;
        self
    }

    /// The wrapped op request.
    #[must_use]
    pub fn request(&self) -> &OpRequest {
        &self.req
    }

    /// The serving options.
    #[must_use]
    pub fn opts(&self) -> &SubmitOpts {
        &self.opts
    }

    /// The op kind tag this submission routes to (`"spmm"`, `"sddmm"`,
    /// …).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.req.kind()
    }
}

impl From<OpRequest> for Submission {
    fn from(req: OpRequest) -> Submission {
        Submission::new(req)
    }
}
