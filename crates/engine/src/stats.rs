//! Engine serving statistics: lock-free counters updated by workers and
//! submitters, snapshotted into [`EngineStats`] on demand. Since the SLO
//! redesign this includes a log-bucketed latency histogram (p50/p95/p99
//! without locks on the serving path), per-[`Priority`] outcome
//! counters, per-[`RejectReason`] shed counters, and an EWMA execution-
//! time estimate per op kind that feeds the admission controller's
//! deadline-feasibility check.

use crate::submission::{Priority, RejectReason};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every op kind the engine can dispatch, in snapshot order. The
/// per-kind width histogram is a fixed array of atomics (no locks on the
/// serving path); an unknown kind tag falls through to the global
/// counters only.
const OP_KINDS: [&str; 5] = ["spmm", "sddmm", "attention", "fused_attention", "fused_sage"];

/// Power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` ns, which covers the full `u64` nanosecond range.
const LATENCY_BUCKETS: usize = 64;

/// Floor log₂ bucket index of a nanosecond sample (0 ns records as 1 ns).
fn latency_bucket(ns: u64) -> usize {
    63 - ns.max(1).leading_zeros() as usize
}

/// Per-kind batch-width counters (one slot per [`OP_KINDS`] entry).
#[derive(Default)]
struct KindWidths {
    batches: AtomicU64,
    width_sum: AtomicU64,
    max_width: AtomicUsize,
}

/// Lock-free log₂-bucketed latency histogram (the worker-side half of
/// [`LatencyHistogram`]).
struct LatencyHistInner {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistInner {
    fn default() -> LatencyHistInner {
        LatencyHistInner { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistInner {
    fn record(&self, ns: u64) {
        self.buckets[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Per-priority outcome counters (one slot per [`Priority::ALL`] entry).
#[derive(Default)]
struct PriorityCounters {
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
}

/// Atomic counter block shared by the engine's submitters and workers.
#[derive(Default)]
pub(crate) struct StatsInner {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub expired: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_batch: AtomicUsize,
    pub queue_high_water: AtomicUsize,
    pub latency_ns_sum: AtomicU64,
    pub latency_ns_max: AtomicU64,
    pub worker_panics: AtomicU64,
    pub bytes_copied: AtomicU64,
    pub deltas_applied: AtomicU64,
    pub retunes_started: AtomicU64,
    pub retunes_completed: AtomicU64,
    pub retunes_skipped: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_infeasible: AtomicU64,
    shed_expired: AtomicU64,
    latency_hist: LatencyHistInner,
    per_priority: [PriorityCounters; 3],
    /// EWMA of per-request execution time per op kind (ns); 0 = no
    /// sample yet. Feeds the admission controller's feasibility check.
    exec_est_ns: [AtomicU64; OP_KINDS.len()],
    kind_widths: [KindWidths; OP_KINDS.len()],
}

impl StatsInner {
    pub fn record_latency(&self, ns: u64) {
        self.latency_ns_sum.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.latency_hist.record(ns);
    }

    /// Count one successfully answered request of `priority`.
    pub fn serve(&self, priority: Priority) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.per_priority[priority.slot()].served.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one admission-time rejection (`reason` tags the shed
    /// counter; `rejected` stays the headline total).
    pub fn shed(&self, reason: RejectReason, priority: Priority) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let counter = match reason {
            RejectReason::QueueFull => &self.shed_queue_full,
            RejectReason::DeadlineInfeasible => &self.shed_infeasible,
            RejectReason::Expired => &self.shed_expired,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.per_priority[priority.slot()].shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one drain-time expiry (the request was queued, then dropped
    /// unexecuted because its deadline passed).
    pub fn expire(&self, priority: Priority) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.per_priority[priority.slot()].expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one measured per-request execution time into the op kind's
    /// EWMA estimate (α = 1/4). A `compare_exchange_weak` loop replaces
    /// the old load-then-blind-store: under concurrent workers the blind
    /// store silently dropped whole updates (both racers fold from the
    /// same `old`, the slower store erasing the faster one's sample),
    /// skewing the estimate the admission controller's
    /// `DeadlineInfeasible` decisions ride on. With CAS every sample is
    /// folded in exactly once, in *some* serialization order.
    pub fn record_exec(&self, kind: &str, ns: u64) {
        if let Some(slot) = OP_KINDS.iter().position(|k| *k == kind) {
            let est = &self.exec_est_ns[slot];
            let mut old = est.load(Ordering::Relaxed);
            loop {
                let new = (if old == 0 { ns } else { old - old / 4 + ns / 4 }).max(1);
                match est.compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(current) => old = current,
                }
            }
        }
    }

    /// Current per-request execution estimate for an op kind (ns); 0
    /// when that kind has never executed.
    pub fn exec_estimate_ns(&self, kind: &str) -> u64 {
        OP_KINDS
            .iter()
            .position(|k| *k == kind)
            .map_or(0, |slot| self.exec_est_ns[slot].load(Ordering::Relaxed))
    }

    pub fn record_batch(&self, kind: &str, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size > 1 {
            self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(size, Ordering::Relaxed);
        if let Some(slot) = OP_KINDS.iter().position(|k| *k == kind) {
            let w = &self.kind_widths[slot];
            w.batches.fetch_add(1, Ordering::Relaxed);
            w.width_sum.fetch_add(size as u64, Ordering::Relaxed);
            w.max_width.fetch_max(size, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> EngineStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let op_widths = OP_KINDS
            .iter()
            .zip(&self.kind_widths)
            .map(|(kind, w)| OpBatchWidth {
                kind,
                batches: w.batches.load(Ordering::Relaxed),
                width_sum: w.width_sum.load(Ordering::Relaxed),
                max_width: w.max_width.load(Ordering::Relaxed),
            })
            .filter(|w| w.batches > 0)
            .collect();
        let priorities = std::array::from_fn(|slot| PriorityStats {
            served: self.per_priority[slot].served.load(Ordering::Relaxed),
            shed: self.per_priority[slot].shed.load(Ordering::Relaxed),
            expired: self.per_priority[slot].expired.load(Ordering::Relaxed),
        });
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            latency_ns_sum: self.latency_ns_sum.load(Ordering::Relaxed),
            latency_ns_max: self.latency_ns_max.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            pool_hits: 0,
            pool_misses: 0,
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            retunes_started: self.retunes_started.load(Ordering::Relaxed),
            retunes_completed: self.retunes_completed.load(Ordering::Relaxed),
            retunes_skipped: self.retunes_skipped.load(Ordering::Relaxed),
            shed: ShedStats {
                queue_full: self.shed_queue_full.load(Ordering::Relaxed),
                deadline_infeasible: self.shed_infeasible.load(Ordering::Relaxed),
                expired: self.shed_expired.load(Ordering::Relaxed),
            },
            latency: self.latency_hist.snapshot(),
            priorities,
            op_widths,
        }
    }
}

/// Log₂-bucketed enqueue-to-answer latency histogram: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` ns. Quantiles report the lower bound of
/// the bucket holding the requested rank, so they are exact on
/// power-of-two streams and within 2× otherwise — the right fidelity for
/// tail-latency gating without locks on the serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram { buckets: vec![0; LATENCY_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// Fold one nanosecond sample in (snapshot-side mirror of the
    /// engine's lock-free recording; useful for tests and aggregation).
    pub fn record(&mut self, ns: u64) {
        self.buckets[latency_bucket(ns)] += 1;
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the lower bound of the
    /// bucket holding rank `ceil(q · count)`; 0 when the histogram is
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }

    /// Median latency (ns).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (ns).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (ns).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts (`buckets()[i]` counts samples in
    /// `[2^i, 2^(i+1))` ns).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    fn saturating_sub(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        LatencyHistogram {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// Outcome counters of one [`Priority`] class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityStats {
    /// Requests of this class answered successfully.
    pub served: u64,
    /// Requests of this class refused at admission (any
    /// [`RejectReason`]).
    pub shed: u64,
    /// Requests of this class dropped unexecuted at drain time because
    /// their deadline had passed.
    pub expired: u64,
}

/// Admission-time shed counters, one per [`RejectReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedStats {
    /// Refused because the queue was full (includes queued requests
    /// evicted to admit higher-priority work).
    pub queue_full: u64,
    /// Shed because the deadline was infeasible by the engine's own
    /// estimate.
    pub deadline_infeasible: u64,
    /// Refused because the deadline had already passed at admission.
    pub expired: u64,
}

impl ShedStats {
    /// Total admission-time rejections.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.queue_full + self.deadline_infeasible + self.expired
    }
}

/// Served-batch-width histogram of one op kind: how many kernel
/// dispatches that kind got and how wide they were — the batching-
/// efficacy signal per op, not just globally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBatchWidth {
    /// Op kind tag (`"spmm"`, `"fused_attention"`, …).
    pub kind: &'static str,
    /// Kernel dispatches of this kind.
    pub batches: u64,
    /// Total requests over those dispatches (`Σ` batch widths).
    pub width_sum: u64,
    /// Widest single dispatch.
    pub max_width: usize,
}

impl OpBatchWidth {
    /// Mean served batch width (0 when this kind never dispatched).
    #[must_use]
    pub fn mean_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.width_sum as f64 / self.batches as f64
        }
    }
}

/// A point-in-time snapshot of an [`Engine`](crate::Engine)'s serving
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Submissions refused at admission — non-blocking submits against a
    /// full queue, deadline-infeasible or already-expired submissions,
    /// and queued requests evicted for higher-priority work. [`Self::shed`]
    /// splits this total by reason.
    pub rejected: u64,
    /// Queued requests dropped unexecuted at drain time because their
    /// deadline had passed (answered
    /// [`RejectReason::Expired`]).
    pub expired: u64,
    /// Kernel dispatches (a batch of *n* requests counts once).
    pub batches: u64,
    /// Requests that were served as part of a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Largest batch dispatched so far.
    pub max_batch: usize,
    /// Deepest the request queue has been.
    pub queue_high_water: usize,
    /// Total enqueue-to-answer latency over all answered requests.
    pub latency_ns_sum: u64,
    /// Worst single-request enqueue-to-answer latency.
    pub latency_ns_max: u64,
    /// Worker panics survived (the affected requests are answered with
    /// [`EngineError::Exec`](crate::EngineError::Exec) and the worker
    /// keeps serving; the queue mutex recovers from the poisoning).
    pub worker_panics: u64,
    /// Scratch-buffer acquisitions served from the runtime's size-classed
    /// [`BufferPool`](sparsetir_ir::exec::BufferPool) without allocating.
    pub pool_hits: u64,
    /// Scratch-buffer acquisitions that fell through to a fresh
    /// allocation (cold classes, or a drained size class).
    pub pool_misses: u64,
    /// Operand/result bytes memcpy'd by the batching layer while serving.
    /// The zero-copy view path keeps this at 0 for batchable ops; it
    /// counts only under the `SPARSETIR_COPY_BATCH` oracle (or
    /// [`EngineConfig::copy_batch`](crate::EngineConfig::copy_batch)),
    /// where every batch stacks operands into widened staging buffers and
    /// splits results back out.
    pub bytes_copied: u64,
    /// Graph deltas applied through
    /// [`Engine::apply_delta`](crate::Engine::apply_delta).
    pub deltas_applied: u64,
    /// Background retune passes launched because a delta pushed the
    /// degree-histogram drift past
    /// [`EngineConfig::drift_threshold`](crate::EngineConfig::drift_threshold).
    pub retunes_started: u64,
    /// Background retune passes that finished and swapped their fresh
    /// configs into the tune cache.
    pub retunes_completed: u64,
    /// Deltas whose drift stayed at or under the threshold, so the old
    /// tuning anchor (and every cached decision under it) was kept.
    pub retunes_skipped: u64,
    /// Admission-time rejections split by [`RejectReason`].
    pub shed: ShedStats,
    /// Enqueue-to-answer latency histogram (completed, failed and
    /// drain-expired requests all record; admission rejections do not).
    pub latency: LatencyHistogram,
    /// Per-priority outcome counters, indexed by [`Priority::ALL`] order
    /// (use [`EngineStats::priority`]).
    pub priorities: [PriorityStats; 3],
    /// Per-op-kind served-batch-width histogram (kinds that never
    /// dispatched are omitted).
    pub op_widths: Vec<OpBatchWidth>,
}

impl EngineStats {
    /// Mean enqueue-to-answer latency in nanoseconds (0 when nothing has
    /// been answered).
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        let answered = self.completed + self.failed;
        if answered == 0 {
            0.0
        } else {
            self.latency_ns_sum as f64 / answered as f64
        }
    }

    /// Fraction of answered requests that rode in a batch of size ≥ 2.
    #[must_use]
    pub fn batching_rate(&self) -> f64 {
        let answered = self.completed + self.failed;
        if answered == 0 {
            0.0
        } else {
            self.batched_requests as f64 / answered as f64
        }
    }

    /// The width histogram of one op kind, if it ever dispatched.
    #[must_use]
    pub fn widths_of(&self, kind: &str) -> Option<&OpBatchWidth> {
        self.op_widths.iter().find(|w| w.kind == kind)
    }

    /// Outcome counters of one priority class.
    #[must_use]
    pub fn priority(&self, p: Priority) -> &PriorityStats {
        &self.priorities[p.slot()]
    }

    /// Retune passes still in flight (started but not yet completed) per
    /// this snapshot — under stale-while-retune serving these are being
    /// answered from the previous anchor's configs.
    #[must_use]
    pub fn retunes_in_flight(&self) -> u64 {
        self.retunes_started.saturating_sub(self.retunes_completed)
    }

    /// The change in counters since an `earlier` snapshot of the same
    /// engine: counts subtract (saturating), maxima and high-water marks
    /// keep the later value, and the per-kind width histogram keeps the
    /// later snapshot (widths are cumulative too, but per-kind deltas
    /// rarely matter mid-run).
    #[must_use]
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        let priorities = std::array::from_fn(|slot| PriorityStats {
            served: self.priorities[slot].served.saturating_sub(earlier.priorities[slot].served),
            shed: self.priorities[slot].shed.saturating_sub(earlier.priorities[slot].shed),
            expired: self.priorities[slot].expired.saturating_sub(earlier.priorities[slot].expired),
        });
        EngineStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            failed: self.failed.saturating_sub(earlier.failed),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            expired: self.expired.saturating_sub(earlier.expired),
            batches: self.batches.saturating_sub(earlier.batches),
            batched_requests: self.batched_requests.saturating_sub(earlier.batched_requests),
            max_batch: self.max_batch,
            queue_high_water: self.queue_high_water,
            latency_ns_sum: self.latency_ns_sum.saturating_sub(earlier.latency_ns_sum),
            latency_ns_max: self.latency_ns_max,
            worker_panics: self.worker_panics.saturating_sub(earlier.worker_panics),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            deltas_applied: self.deltas_applied.saturating_sub(earlier.deltas_applied),
            retunes_started: self.retunes_started.saturating_sub(earlier.retunes_started),
            retunes_completed: self.retunes_completed.saturating_sub(earlier.retunes_completed),
            retunes_skipped: self.retunes_skipped.saturating_sub(earlier.retunes_skipped),
            shed: ShedStats {
                queue_full: self.shed.queue_full.saturating_sub(earlier.shed.queue_full),
                deadline_infeasible: self
                    .shed
                    .deadline_infeasible
                    .saturating_sub(earlier.shed.deadline_infeasible),
                expired: self.shed.expired.saturating_sub(earlier.shed.expired),
            },
            latency: self.latency.saturating_sub(&earlier.latency),
            priorities,
            op_widths: self.op_widths.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential oracle for the α = 1/4 integer EWMA.
    fn ewma_step(old: u64, ns: u64) -> u64 {
        (if old == 0 { ns } else { old - old / 4 + ns / 4 }).max(1)
    }

    #[test]
    fn ewma_converges_to_constant_stream() {
        let stats = StatsInner::default();
        let mut oracle = 0u64;
        for _ in 0..64 {
            stats.record_exec("spmm", 10_000);
            oracle = ewma_step(oracle, 10_000);
        }
        assert_eq!(stats.exec_estimate_ns("spmm"), oracle);
        // The integer fixed point of old - old/4 + v/4 sits within one
        // rounding unit of v.
        assert!(stats.exec_estimate_ns("spmm").abs_diff(10_000) <= 4);
        assert_eq!(stats.exec_estimate_ns("sddmm"), 0, "other kinds stay cold");
        stats.record_exec("not-a-kind", 1); // unknown kinds are ignored
        assert_eq!(stats.exec_estimate_ns("not-a-kind"), 0);
    }

    /// Multi-thread hammer for the compare-exchange loop: with every
    /// thread feeding the same constant, the estimate must land on the
    /// EWMA fixed point of that constant — and never escape the sample
    /// range mid-flight. (The old blind store could drop whole updates
    /// under this contention; the CAS loop folds each exactly once.)
    #[test]
    fn ewma_hammer_converges_under_contention() {
        let stats = std::sync::Arc::new(StatsInner::default());
        let value = 8_192u64;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let stats = std::sync::Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        stats.record_exec("fused_attention", value);
                        let est = stats.exec_estimate_ns("fused_attention");
                        assert!(est > 0 && est <= value, "estimate {est} escaped (0, {value}]");
                    }
                });
            }
        });
        // Every interleaving folds only `value` samples, so the final
        // estimate is the fixed point (within integer-EWMA rounding).
        let fixed = {
            let mut x = 0u64;
            for _ in 0..64 {
                x = ewma_step(x, value);
            }
            x
        };
        assert!(
            stats.exec_estimate_ns("fused_attention").abs_diff(fixed) <= 4,
            "estimate {} did not converge to fixed point {fixed}",
            stats.exec_estimate_ns("fused_attention")
        );
    }
}
