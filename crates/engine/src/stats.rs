//! Engine serving statistics: lock-free counters updated by workers and
//! submitters, snapshotted into [`EngineStats`] on demand.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every op kind the engine can dispatch, in snapshot order. The
/// per-kind width histogram is a fixed array of atomics (no locks on the
/// serving path); an unknown kind tag falls through to the global
/// counters only.
const OP_KINDS: [&str; 5] = ["spmm", "sddmm", "attention", "fused_attention", "fused_sage"];

/// Per-kind batch-width counters (one slot per [`OP_KINDS`] entry).
#[derive(Default)]
struct KindWidths {
    batches: AtomicU64,
    width_sum: AtomicU64,
    max_width: AtomicUsize,
}

/// Atomic counter block shared by the engine's submitters and workers.
#[derive(Default)]
pub(crate) struct StatsInner {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_batch: AtomicUsize,
    pub queue_high_water: AtomicUsize,
    pub latency_ns_sum: AtomicU64,
    pub latency_ns_max: AtomicU64,
    pub worker_panics: AtomicU64,
    kind_widths: [KindWidths; OP_KINDS.len()],
}

impl StatsInner {
    pub fn record_latency(&self, ns: u64) {
        self.latency_ns_sum.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn record_batch(&self, kind: &str, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size > 1 {
            self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(size, Ordering::Relaxed);
        if let Some(slot) = OP_KINDS.iter().position(|k| *k == kind) {
            let w = &self.kind_widths[slot];
            w.batches.fetch_add(1, Ordering::Relaxed);
            w.width_sum.fetch_add(size as u64, Ordering::Relaxed);
            w.max_width.fetch_max(size, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> EngineStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let op_widths = OP_KINDS
            .iter()
            .zip(&self.kind_widths)
            .map(|(kind, w)| OpBatchWidth {
                kind,
                batches: w.batches.load(Ordering::Relaxed),
                width_sum: w.width_sum.load(Ordering::Relaxed),
                max_width: w.max_width.load(Ordering::Relaxed),
            })
            .filter(|w| w.batches > 0)
            .collect();
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            latency_ns_sum: self.latency_ns_sum.load(Ordering::Relaxed),
            latency_ns_max: self.latency_ns_max.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            op_widths,
        }
    }
}

/// Served-batch-width histogram of one op kind: how many kernel
/// dispatches that kind got and how wide they were — the batching-
/// efficacy signal per op, not just globally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBatchWidth {
    /// Op kind tag (`"spmm"`, `"fused_attention"`, …).
    pub kind: &'static str,
    /// Kernel dispatches of this kind.
    pub batches: u64,
    /// Total requests over those dispatches (`Σ` batch widths).
    pub width_sum: u64,
    /// Widest single dispatch.
    pub max_width: usize,
}

impl OpBatchWidth {
    /// Mean served batch width (0 when this kind never dispatched).
    #[must_use]
    pub fn mean_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.width_sum as f64 / self.batches as f64
        }
    }
}

/// A point-in-time snapshot of an [`Engine`](crate::Engine)'s serving
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// `try_submit_*` calls refused because the queue was full.
    pub rejected: u64,
    /// Kernel dispatches (a batch of *n* requests counts once).
    pub batches: u64,
    /// Requests that were served as part of a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Largest batch dispatched so far.
    pub max_batch: usize,
    /// Deepest the request queue has been.
    pub queue_high_water: usize,
    /// Total enqueue-to-completion latency over all answered requests.
    pub latency_ns_sum: u64,
    /// Worst single-request enqueue-to-completion latency.
    pub latency_ns_max: u64,
    /// Worker panics survived (the affected requests are answered with
    /// [`EngineError::Exec`](crate::EngineError::Exec) and the worker
    /// keeps serving; the queue mutex recovers from the poisoning).
    pub worker_panics: u64,
    /// Per-op-kind served-batch-width histogram (kinds that never
    /// dispatched are omitted).
    pub op_widths: Vec<OpBatchWidth>,
}

impl EngineStats {
    /// Mean enqueue-to-completion latency in nanoseconds (0 when nothing
    /// has completed).
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        let answered = self.completed + self.failed;
        if answered == 0 {
            0.0
        } else {
            self.latency_ns_sum as f64 / answered as f64
        }
    }

    /// Fraction of answered requests that rode in a batch of size ≥ 2.
    #[must_use]
    pub fn batching_rate(&self) -> f64 {
        let answered = self.completed + self.failed;
        if answered == 0 {
            0.0
        } else {
            self.batched_requests as f64 / answered as f64
        }
    }

    /// The width histogram of one op kind, if it ever dispatched.
    #[must_use]
    pub fn widths_of(&self, kind: &str) -> Option<&OpBatchWidth> {
        self.op_widths.iter().find(|w| w.kind == kind)
    }
}
