//! Property-based tests: every compressed format must reconstruct the same
//! dense matrix as the CSR it was built from, and every format-level SpMM
//! must agree with the CSR reference. These are the invariants the paper's
//! format decomposition relies on ("decompose A into A1..An such that
//! A = Σ Ai").

use proptest::prelude::*;
use sparsetir_smat::prelude::*;

/// Strategy: a small random sparse matrix given dims and a nnz bound.
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        })
    })
}

/// Like [`sparse_matrix`], but roughly a third of the stored values are
/// explicit zeros — entries the format must keep (they are part of the
/// sparsity structure) yet never confuse with padding.
fn sparse_matrix_with_zeros(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        proptest::collection::vec(
            (
                0..rows as u32,
                0..cols as u32,
                prop_oneof![Just(0.0f32), Just(0.0f32), 0.1f32..2.0f32, 0.1f32..2.0f32],
            ),
            1..max_nnz.min(total).max(2),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hyb_with_explicit_zeros_roundtrips(
        m in sparse_matrix_with_zeros(20, 48),
        c in 1usize..4,
        k in 0u32..4,
    ) {
        let hyb = Hyb::from_csr(&m, c, k).expect("positive c");
        prop_assert_eq!(hyb.to_dense(), m.to_dense());
    }

    #[test]
    fn hyb_padding_sums_structurally(
        m in sparse_matrix_with_zeros(20, 48),
        c in 1usize..4,
        k in 0u32..4,
    ) {
        // Per-bucket structural padding must always reconcile with the
        // matrix-level accounting, explicit zeros included.
        let hyb = Hyb::from_csr(&m, c, k).expect("positive c");
        let pad: usize = hyb
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .map(EllBucket::padding)
            .sum();
        prop_assert_eq!(pad, hyb.stored() - hyb.original_nnz());
        let real: usize = hyb
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .map(|b| b.real)
            .sum();
        prop_assert_eq!(real, hyb.original_nnz());
    }

    #[test]
    fn csr_dense_roundtrip(m in sparse_matrix(24, 64)) {
        prop_assert_eq!(Csr::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn csr_transpose_involution(m in sparse_matrix(24, 64)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        prop_assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn ell_roundtrip_when_wide_enough(m in sparse_matrix(16, 48)) {
        let width = m.row_lengths().into_iter().max().unwrap_or(0).max(1);
        let ell = Ell::from_csr(&m, width).expect("wide enough");
        prop_assert_eq!(ell.to_dense(), m.to_dense());
    }

    #[test]
    fn bsr_roundtrip(m in sparse_matrix(20, 48), block in 1usize..5) {
        let bsr = Bsr::from_csr(&m, block).expect("valid block");
        prop_assert_eq!(bsr.to_dense(), m.to_dense());
        // Stored count never shrinks below nnz.
        prop_assert!(bsr.stored() >= m.nnz());
    }

    #[test]
    fn dbsr_equals_bsr(m in sparse_matrix(20, 48), block in 1usize..5) {
        let bsr = Bsr::from_csr(&m, block).expect("valid block");
        let dbsr = Dbsr::from_bsr(&bsr);
        prop_assert_eq!(dbsr.to_dense(), bsr.to_dense());
        prop_assert_eq!(dbsr.nblocks(), bsr.nblocks());
        prop_assert_eq!(
            dbsr.nrows_compressed(),
            bsr.block_rows() - bsr.zero_block_rows()
        );
    }

    #[test]
    fn srbcrs_roundtrip(m in sparse_matrix(20, 48), t in 1usize..6, g in 1usize..6) {
        let s = SrBcrs::from_csr(&m, t, g).expect("valid params");
        prop_assert_eq!(s.to_dense(), m.to_dense());
        prop_assert_eq!(s.stored_tiles() % g, 0);
    }

    #[test]
    fn hyb_roundtrip(m in sparse_matrix(20, 64), c in 1usize..5, k in 0u32..4) {
        let hyb = Hyb::from_csr(&m, c, k).expect("valid params");
        prop_assert_eq!(hyb.to_dense(), m.to_dense());
        prop_assert!(hyb.stored() >= m.nnz());
        let ratio = hyb.padding_ratio();
        prop_assert!((0.0..1.0).contains(&ratio) || hyb.stored() == 0);
    }

    #[test]
    fn spmm_agreement_across_formats(m in sparse_matrix(16, 40), d in 1usize..6) {
        let mut r = gen::rng(99);
        let x = gen::random_dense(m.cols(), d, &mut r);
        let reference = m.spmm(&x).expect("csr spmm");

        let width = m.row_lengths().into_iter().max().unwrap_or(0).max(1);
        let ell = Ell::from_csr(&m, width).expect("wide enough");
        prop_assert!(ell.spmm(&x).unwrap().approx_eq(&reference, 1e-3));

        let bsr = Bsr::from_csr(&m, 2).expect("block");
        prop_assert!(bsr.spmm(&x).unwrap().approx_eq(&reference, 1e-3));

        let hyb = Hyb::with_default_k(&m, 2).expect("hyb");
        prop_assert!(hyb.spmm(&x).unwrap().approx_eq(&reference, 1e-3));

        let s = SrBcrs::from_csr(&m, 4, 2).expect("srbcrs");
        prop_assert!(s.spmm(&x).unwrap().approx_eq(&reference, 1e-3));
    }

    #[test]
    fn sddmm_scales_pattern(m in sparse_matrix(12, 30), d in 1usize..5) {
        let mut r = gen::rng(7);
        let x = gen::random_dense(m.rows(), d, &mut r);
        let y = gen::random_dense(d, m.cols(), &mut r);
        let out = m.sddmm(&x, &y).expect("sddmm");
        // Pattern must be preserved exactly.
        prop_assert_eq!(out.indptr(), m.indptr());
        prop_assert_eq!(out.indices(), m.indices());
        // Values must equal A ⊙ (X·Y) at the stored positions.
        let xy = x.matmul(&y).expect("gemm");
        for row in 0..m.rows() {
            let (cols, vals) = out.row(row);
            let (_, avals) = m.row(row);
            for ((&c, &v), &a) in cols.iter().zip(vals).zip(avals) {
                let expect = a * xy.get(row, c as usize);
                prop_assert!((v - expect).abs() <= 1e-3_f32.max(expect.abs() * 1e-3));
            }
        }
    }

    #[test]
    fn column_partition_sums_to_original(m in sparse_matrix(16, 48), parts in 1usize..6) {
        let sub = m.column_partition(parts);
        prop_assert_eq!(sub.len(), parts.max(1));
        let merged = sub.iter().fold(Dense::zeros(m.rows(), m.cols()), |acc, p| {
            acc.add(&p.to_dense()).expect("same shape")
        });
        prop_assert_eq!(merged, m.to_dense());
        let total: usize = sub.iter().map(Csr::nnz).sum();
        prop_assert_eq!(total, m.nnz());
    }

    #[test]
    fn csf_roundtrip_relations(
        entries in proptest::collection::vec((0u32..4, 0u32..10, 0u32..10, 0.1f32..1.0), 0..40)
    ) {
        let mut slices: Vec<Coo> = (0..4).map(|_| Coo::new(10, 10)).collect();
        for (rel, r, c, v) in entries {
            slices[rel as usize].push(r, c, v);
        }
        let csrs: Vec<Csr> = slices.iter().map(Csr::from_coo).collect();
        let csf = Csf3::from_relations(10, 10, &csrs).expect("valid");
        let back = csf.to_relations();
        for (orig, rt) in csrs.iter().zip(&back) {
            prop_assert_eq!(orig.to_dense(), rt.to_dense());
        }
        let total: usize = csrs.iter().map(Csr::nnz).sum();
        prop_assert_eq!(csf.nnz(), total);
    }
}
