//! Differential suite for the incremental-update layer: for arbitrary
//! streams of edge inserts/deletes, every incremental path —
//! `Csr::apply_delta`, the slack-array `DynCsr`, and the in-place
//! `Hyb::apply_delta` — must be **bit-identical** (exactly structurally
//! equal, after canonicalization for `Hyb`) to rebuilding the format from
//! scratch out of the updated edge set. This is the correctness contract
//! that lets the serving engine patch adjacencies instead of rebuilding.

use proptest::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a base matrix plus a stream of delta batches against its
/// shape. Each op is an upsert (with an explicit-zero value now and then —
/// stored zeros are structure, not absence) or a delete (often of an edge
/// that does not exist: those must be exact no-ops).
fn base_and_stream(
    max_dim: usize,
    max_nnz: usize,
    batches: usize,
) -> impl Strategy<Value = (Csr, Vec<GraphDelta>)> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(move |(rows, cols)| {
        let total = rows * cols;
        let base = proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, 0.1f32..2.0f32),
            0..max_nnz.min(total),
        )
        .prop_map(move |entries| {
            let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
            Csr::from_coo(&coo)
        });
        let op = (
            0..rows as u32,
            0..cols as u32,
            prop_oneof![
                (0.1f32..2.0f32).prop_map(Some),
                (0.1f32..2.0f32).prop_map(Some),
                (0.1f32..2.0f32).prop_map(Some),
                Just(Some(0.0f32)),
                Just(None),
                Just(None),
            ],
        );
        let stream =
            proptest::collection::vec(proptest::collection::vec(op, 1..12), 1..batches + 1)
                .prop_map(|batches| {
                    batches
                        .into_iter()
                        .map(|ops| {
                            let mut d = GraphDelta::new();
                            for (r, c, v) in ops {
                                match v {
                                    Some(v) => d.upsert(r, c, v),
                                    None => d.delete(r, c),
                                };
                            }
                            d
                        })
                        .collect::<Vec<_>>()
                });
        (base, stream)
    })
}

/// Rebuild-from-scratch oracle: replay base + deltas through an edge map.
fn oracle_after(base: &Csr, deltas: &[GraphDelta]) -> Csr {
    let mut edges: BTreeMap<(u32, u32), f32> = BTreeMap::new();
    for r in 0..base.rows() {
        let (cols, vals) = base.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            edges.insert((r as u32, c), v);
        }
    }
    for d in deltas {
        for &(r, c, v) in d.normalized_ops().iter() {
            match v {
                Some(v) => {
                    edges.insert((r, c), v);
                }
                None => {
                    edges.remove(&(r, c));
                }
            }
        }
    }
    let entries: Vec<(u32, u32, f32)> = edges.into_iter().map(|((r, c), v)| (r, c, v)).collect();
    Csr::from_coo(&Coo::from_entries(base.rows(), base.cols(), entries).expect("in-bounds"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental CSR == rebuild-from-scratch, bit-identically, after an
    /// arbitrary stream of update batches.
    #[test]
    fn csr_apply_delta_matches_rebuild(case in base_and_stream(14, 40, 6)) {
        let (base, stream) = case;
        let mut inc = base.clone();
        for d in &stream {
            inc = inc.apply_delta(d).expect("in-bounds delta");
        }
        prop_assert_eq!(inc, oracle_after(&base, &stream));
    }

    /// The slack-array CSR agrees with the tight merge (and hence the
    /// rebuild oracle) across the same streams, whatever mix of in-place
    /// patches and re-packs the stream provokes.
    #[test]
    fn dyncsr_matches_rebuild(case in base_and_stream(14, 40, 6)) {
        let (base, stream) = case;
        let mut dy = DynCsr::from_csr(&base);
        for d in &stream {
            dy.apply_delta(d).expect("in-bounds delta");
        }
        prop_assert_eq!(dy.to_csr(), oracle_after(&base, &stream));
    }

    /// Incremental hyb(c, k) == from-scratch hyb(c, k) as canonical
    /// structures — same buckets, same padding, same `real` accounting —
    /// after every batch of the stream, across the (c, k) grid.
    #[test]
    fn hyb_apply_delta_matches_from_scratch(
        case in base_and_stream(12, 36, 4),
        c in 1usize..4,
        k in 0u32..4,
    ) {
        let (base, stream) = case;
        let mut hyb = Hyb::from_csr(&base, c, k).expect("positive c");
        let mut cur = base;
        for d in &stream {
            let next = cur.apply_delta(d).expect("in-bounds delta");
            hyb.apply_delta(&cur, &next, d).expect("consistent snapshots");
            let mut rebuilt = Hyb::from_csr(&next, c, k).expect("positive c");
            let mut canonical = hyb.clone();
            prop_assert_eq!(canonical.canonicalize(), rebuilt.canonicalize());
            prop_assert_eq!(hyb.original_nnz(), next.nnz());
            cur = next;
        }
    }
}
