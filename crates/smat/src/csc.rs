//! Compressed Sparse Column (CSC) — the column-major dual of CSR, listed
//! in §3.1 among the formats expressible by axis composition (a CSC matrix
//! is a CSR matrix over swapped axes).

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// A CSC matrix: per-column pointer/row-index/value arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    /// Internally stored as the CSR of the transpose.
    transposed: Csr,
}

impl Csc {
    /// Convert from CSR.
    #[must_use]
    pub fn from_csr(csr: &Csr) -> Csc {
        Csc { rows: csr.rows(), cols: csr.cols(), transposed: csr.transpose() }
    }

    /// Logical row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.transposed.nnz()
    }

    /// Column pointer array (length `cols + 1`).
    #[must_use]
    pub fn indptr(&self) -> &[usize] {
        self.transposed.indptr()
    }

    /// Row indices per column.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        self.transposed.indices()
    }

    /// Values in column-major order.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        self.transposed.values()
    }

    /// Row indices and values of column `c`.
    #[must_use]
    pub fn col(&self, c: usize) -> (&[u32], &[f32]) {
        self.transposed.row(c)
    }

    /// Back to CSR.
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        self.transposed.transpose()
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        self.transposed.to_dense().transpose()
    }

    /// Reference SpMM `Y = self × X` (column-major traversal — the access
    /// pattern column-oriented kernels exploit).
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("csc spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for c in 0..self.cols {
            let (rows, vals) = self.col(c);
            let xrow = x.row(c).to_vec();
            for (&r, &v) in rows.iter().zip(vals) {
                let yrow = y.row_mut(r as usize);
                for (o, &xv) in yrow.iter_mut().zip(&xrow) {
                    *o += v * xv;
                }
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_csr_csc() {
        let mut rng = gen::rng(1);
        let a = gen::random_csr(12, 9, 0.3, &mut rng);
        let csc = Csc::from_csr(&a);
        assert_eq!(csc.nnz(), a.nnz());
        assert_eq!(csc.to_csr(), a);
        assert_eq!(csc.to_dense(), a.to_dense());
    }

    #[test]
    fn spmm_matches_csr() {
        let mut rng = gen::rng(2);
        let a = gen::random_csr(10, 14, 0.25, &mut rng);
        let x = gen::random_dense(14, 5, &mut rng);
        let csc = Csc::from_csr(&a);
        assert!(csc.spmm(&x).unwrap().approx_eq(&a.spmm(&x).unwrap(), 1e-4));
    }

    #[test]
    fn column_accessor_is_sorted() {
        let mut rng = gen::rng(3);
        let a = gen::random_csr(16, 16, 0.3, &mut rng);
        let csc = Csc::from_csr(&a);
        for c in 0..16 {
            let (rows, _) = csc.col(c);
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
