//! ELLPACK (ELL) format: every row padded to a fixed number of non-zero
//! columns. The building block of the paper's `hyb(c, k)` composable format.

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// An ELL matrix: `rows × width` column-index and value arrays, padded
/// entries carry value `0` (their column index is a valid placeholder).
#[derive(Debug, Clone, PartialEq)]
pub struct Ell {
    rows: usize,
    cols: usize,
    width: usize,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl Ell {
    /// Convert from CSR.
    ///
    /// # Errors
    /// Fails when any row has more than `width` non-zeros.
    pub fn from_csr(csr: &Csr, width: usize) -> Result<Ell, SmatError> {
        let rows = csr.rows();
        let mut col_indices = vec![0u32; rows * width];
        let mut values = vec![0.0f32; rows * width];
        for r in 0..rows {
            let (cols, vals) = csr.row(r);
            if cols.len() > width {
                return Err(SmatError::new(format!(
                    "row {r} has {} non-zeros, exceeding ELL width {width}",
                    cols.len()
                )));
            }
            for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                col_indices[r * width + j] = c;
                values[r * width + j] = v;
            }
            // Pad with the row's last valid column (or 0) so indices stay
            // in-bounds; values are 0 so the contribution vanishes.
            let pad_col = cols.last().copied().unwrap_or(0);
            for j in cols.len()..width {
                col_indices[r * width + j] = pad_col;
            }
        }
        Ok(Ell { rows, cols: csr.cols(), width, col_indices, values })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fixed non-zeros per row (including padding).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column-index storage (`rows × width`).
    #[must_use]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Value storage (`rows × width`).
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Count of stored entries (including padding).
    #[must_use]
    pub fn stored(&self) -> usize {
        self.rows * self.width
    }

    /// Count of padded zero entries.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.values.iter().filter(|&&v| v == 0.0).count()
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for j in 0..self.width {
                let v = self.values[r * self.width + j];
                if v != 0.0 {
                    let c = self.col_indices[r * self.width + j] as usize;
                    let cur = d.get(r, c);
                    d.set(r, c, cur + v);
                }
            }
        }
        d
    }

    /// Reference SpMM on ELL storage.
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("ell spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for r in 0..self.rows {
            for j in 0..self.width {
                let v = self.values[r * self.width + j];
                let c = self.col_indices[r * self.width + j] as usize;
                let xrow = x.row(c);
                let yrow = y.row_mut(r);
                for (o, &xv) in yrow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        let coo = Coo::from_entries(3, 4, vec![(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0), (2, 2, 4.0)])
            .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let csr = sample();
        let ell = Ell::from_csr(&csr, 2).unwrap();
        assert_eq!(ell.to_dense(), csr.to_dense());
    }

    #[test]
    fn width_too_small_errors() {
        let csr = sample();
        assert!(Ell::from_csr(&csr, 1).is_err());
    }

    #[test]
    fn padding_counts_zeros() {
        let csr = sample();
        let ell = Ell::from_csr(&csr, 2).unwrap();
        // 6 stored, 4 real non-zeros → 2 padded.
        assert_eq!(ell.stored(), 6);
        assert_eq!(ell.padding(), 2);
    }

    #[test]
    fn spmm_matches_csr() {
        let csr = sample();
        let ell = Ell::from_csr(&csr, 2).unwrap();
        let x = Dense::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5);
        let a = ell.spmm(&x).unwrap();
        let b = csr.spmm(&x).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }
}
