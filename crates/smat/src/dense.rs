//! Row-major dense matrices (the `X`, `Y`, `W` operands of the paper's
//! operators) with the reference routines used as correctness oracles.

use std::fmt;

/// Error raised by matrix constructors and kernels on shape mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmatError {
    message: String,
}

impl SmatError {
    /// Construct an error with a message (also used by downstream crates
    /// that report shape mismatches in terms of `SmatError`).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        SmatError { message: message.into() }
    }
}

impl fmt::Display for SmatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sparse matrix error: {}", self.message)
    }
}

impl std::error::Error for SmatError {}

/// A row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Dense {
    /// All-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Dense {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Dense {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Dense { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Errors
    /// Fails when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Dense, SmatError> {
        if data.len() != rows * cols {
            return Err(SmatError::new(format!(
                "dense data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Dense { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Errors
    /// Fails when inner dimensions disagree.
    pub fn matmul(&self, rhs: &Dense) -> Result<Dense, SmatError> {
        if self.cols != rhs.rows {
            return Err(SmatError::new(format!(
                "matmul shape mismatch: {}x{} × {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Dense::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Dense {
        Dense::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise sum with `rhs`.
    ///
    /// # Errors
    /// Fails on shape mismatch.
    pub fn add(&self, rhs: &Dense) -> Result<Dense, SmatError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(SmatError::new("add shape mismatch"));
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Dense { rows: self.rows, cols: self.cols, data })
    }

    /// Scale every element.
    #[must_use]
    pub fn scale(&self, s: f32) -> Dense {
        Dense { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * s).collect() }
    }

    /// Apply ReLU elementwise.
    #[must_use]
    pub fn relu(&self) -> Dense {
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.max(0.0)).collect(),
        }
    }

    /// Maximum absolute difference to `rhs` (∞ on shape mismatch).
    #[must_use]
    pub fn max_abs_diff(&self, rhs: &Dense) -> f32 {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return f32::INFINITY;
        }
        self.data.iter().zip(&rhs.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// True when every element differs from `rhs` by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, rhs: &Dense, tol: f32) -> bool {
        self.max_abs_diff(rhs) <= tol
    }

    /// Count of non-zero entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Dense::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Dense::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Dense::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        let a = Dense::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = Dense::from_vec(1, 2, vec![1.0 + 1e-6, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
    }

    #[test]
    fn relu_and_scale() {
        let a = Dense::from_vec(1, 3, vec![-1.0, 0.5, 2.0]).unwrap();
        assert_eq!(a.relu().data(), &[0.0, 0.5, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[-2.0, 1.0, 4.0]);
    }

    #[test]
    fn nnz_counts_nonzeros() {
        let a = Dense::from_vec(2, 2, vec![0.0, 1.0, 0.0, 3.0]).unwrap();
        assert_eq!(a.nnz(), 2);
    }
}
