//! Incremental graph updates: batched edge inserts/deletes applied to
//! already-built formats instead of rebuilding them from scratch.
//!
//! Real serving traffic mutates adjacencies continuously, but every format
//! constructor in this crate (`Csr::from_coo`, `Hyb::from_csr`,
//! `column_partition`) assumes a frozen matrix. This module adds the delta
//! layer of ROADMAP item 2, treating format mutation as a first-class
//! operation (UniSparse's format-customization thesis):
//!
//! * [`GraphDelta`] — a normalized batch of edge upserts and deletes;
//! * [`Csr::apply_delta`] — a single-pass two-pointer merge producing the
//!   updated matrix in `O(nnz + |delta|)`;
//! * [`DynCsr`] — a slack-array CSR that patches rows **in place** while
//!   they fit their capacity and re-packs with geometric headroom only on
//!   overflow, so a sustained update stream pays `O(|touched rows| +
//!   |delta|)` per batch amortized instead of `O(nnz)`;
//! * [`crate::hyb::Hyb::apply_delta`] — in-place bucket rewrites that
//!   re-bucket a row only when one of its chunks crosses a power-of-two
//!   bucket boundary.
//!
//! The correctness contract for every path is *exact structural equality*
//! with rebuild-from-scratch: the differential suites assert the patched
//! format is bit-identical (after canonicalization, for `Hyb`) to the one
//! a fresh constructor produces from the updated matrix.

use crate::csr::Csr;
use crate::dense::SmatError;

/// One normalized edge operation: upsert (`Some(v)`) or delete (`None`).
pub type EdgeOp = (u32, u32, Option<f32>);

/// A batch of edge updates against a fixed `rows × cols` shape.
///
/// Operations are recorded in submission order; [`GraphDelta::normalize`]
/// (called implicitly by the apply paths) sorts them by `(row, col)` with
/// **last-wins** semantics for duplicates, so a delete followed by an
/// insert of the same edge inserts it. Deleting an absent edge is a no-op
/// by design — deltas generated from upstream event streams routinely
/// carry them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<EdgeOp>,
    normalized: bool,
}

impl GraphDelta {
    /// An empty delta.
    #[must_use]
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Record an edge upsert (insert, or overwrite of an existing value).
    pub fn upsert(&mut self, row: u32, col: u32, value: f32) -> &mut GraphDelta {
        self.ops.push((row, col, Some(value)));
        self.normalized = false;
        self
    }

    /// Record an edge delete (no-op when the edge is absent).
    pub fn delete(&mut self, row: u32, col: u32) -> &mut GraphDelta {
        self.ops.push((row, col, None));
        self.normalized = false;
        self
    }

    /// Number of recorded operations (before de-duplication).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, sorted by `(row, col)` with duplicates collapsed
    /// last-wins. Idempotent; the apply paths call this implicitly.
    pub fn normalize(&mut self) -> &[EdgeOp] {
        if !self.normalized {
            // Stable sort keeps submission order within an equal (row, col)
            // group, so `last()` is the latest op.
            self.ops.sort_by_key(|&(r, c, _)| (r, c));
            self.ops.dedup_by(|later, earlier| {
                let dup = (later.0, later.1) == (earlier.0, earlier.1);
                if dup {
                    // dedup_by drops `later`; keep its payload (last wins).
                    earlier.2 = later.2;
                }
                dup
            });
            self.normalized = true;
        }
        &self.ops
    }

    /// Sorted normalized view without requiring `&mut self` (clones when
    /// the delta has not been normalized yet).
    #[must_use]
    pub fn normalized_ops(&self) -> std::borrow::Cow<'_, [EdgeOp]> {
        if self.normalized {
            std::borrow::Cow::Borrowed(&self.ops)
        } else {
            let mut clone = self.clone();
            clone.normalize();
            std::borrow::Cow::Owned(clone.ops)
        }
    }

    /// The distinct rows this delta touches, ascending.
    #[must_use]
    pub fn touched_rows(&self) -> Vec<u32> {
        let ops = self.normalized_ops();
        let mut rows: Vec<u32> = ops.iter().map(|&(r, _, _)| r).collect();
        rows.dedup();
        rows
    }

    /// Bounds-check every op against a `rows × cols` shape.
    ///
    /// # Errors
    /// Names the first out-of-bounds op.
    pub fn validate(&self, rows: usize, cols: usize) -> Result<(), SmatError> {
        for &(r, c, _) in &self.ops {
            if r as usize >= rows || c as usize >= cols {
                return Err(SmatError::new(format!(
                    "delta op ({r}, {c}) out of bounds for {rows}x{cols}"
                )));
            }
        }
        Ok(())
    }
}

impl Csr {
    /// Apply a batch of edge updates, producing the updated matrix by a
    /// single two-pointer merge of each touched row with its delta ops —
    /// `O(nnz + |delta|)`, never a full sort. Untouched rows are copied
    /// through unchanged, so the result is bit-identical to rebuilding the
    /// matrix from the updated edge set.
    ///
    /// # Errors
    /// Fails when an op is out of bounds for this matrix's shape.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Csr, SmatError> {
        delta.validate(self.rows(), self.cols())?;
        let ops = delta.normalized_ops();
        let mut indptr = Vec::with_capacity(self.rows() + 1);
        indptr.push(0usize);
        let inserts = ops.iter().filter(|op| op.2.is_some()).count();
        let mut indices = Vec::with_capacity(self.nnz() + inserts);
        let mut values = Vec::with_capacity(self.nnz() + inserts);
        let mut op_i = 0usize;
        for r in 0..self.rows() {
            let (cols, vals) = self.row(r);
            merge_row(r as u32, cols, vals, &ops, &mut op_i, &mut indices, &mut values);
            indptr.push(indices.len());
        }
        Ok(Csr::from_parts(self.rows(), self.cols(), indptr, indices, values))
    }
}

/// Merge one CSR row with the delta ops targeting it (ops are consumed from
/// `ops[*op_i..]`, which is sorted by `(row, col)`). Pushes the merged row
/// onto `out_cols`/`out_vals`.
fn merge_row(
    row: u32,
    cols: &[u32],
    vals: &[f32],
    ops: &[EdgeOp],
    op_i: &mut usize,
    out_cols: &mut Vec<u32>,
    out_vals: &mut Vec<f32>,
) {
    let mut e = 0usize;
    while *op_i < ops.len() && ops[*op_i].0 == row {
        let (_, oc, ov) = ops[*op_i];
        // Existing entries strictly before the op's column pass through.
        while e < cols.len() && cols[e] < oc {
            out_cols.push(cols[e]);
            out_vals.push(vals[e]);
            e += 1;
        }
        let exists = e < cols.len() && cols[e] == oc;
        if let Some(v) = ov {
            out_cols.push(oc);
            out_vals.push(v);
        } // delete: emit nothing
        if exists {
            e += 1; // the op replaced (or removed) this entry
        }
        *op_i += 1;
    }
    out_cols.extend_from_slice(&cols[e..]);
    out_vals.extend_from_slice(&vals[e..]);
}

/// Outcome of one [`DynCsr::apply_delta`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynDeltaReport {
    /// Rows patched inside their existing slack capacity.
    pub rows_in_place: usize,
    /// Whether the batch overflowed some row's capacity and forced a full
    /// re-pack (with fresh geometric headroom).
    pub repacked: bool,
}

/// A CSR with per-row slack: each row owns a capacity segment of the
/// `indices`/`values` arrays and only the first `row_len[r]` slots are
/// live. Updates that keep a row within its capacity are patched in place
/// (`O(row length)`); a row overflowing its segment triggers one full
/// re-pack that re-provisions every row with `headroom ×` capacity —
/// geometric slack, so a sustained insert stream re-packs only
/// `O(log(growth))` times, amortizing to `O(1)` array moves per inserted
/// edge.
#[derive(Debug, Clone, PartialEq)]
pub struct DynCsr {
    rows: usize,
    cols: usize,
    row_start: Vec<usize>,
    row_cap: Vec<usize>,
    row_len: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    nnz: usize,
    repacks: u64,
    headroom_num: usize,
    headroom_den: usize,
}

impl DynCsr {
    /// Build from a frozen CSR with 25% per-row headroom (minimum 2 spare
    /// slots), the default slack for serving workloads.
    #[must_use]
    pub fn from_csr(a: &Csr) -> DynCsr {
        DynCsr::with_headroom(a, 5, 4)
    }

    /// Build with headroom factor `num/den ≥ 1` (each row's capacity is
    /// `max(len · num / den, len + 2)`).
    #[must_use]
    pub fn with_headroom(a: &Csr, num: usize, den: usize) -> DynCsr {
        let mut d = DynCsr {
            rows: a.rows(),
            cols: a.cols(),
            row_start: Vec::new(),
            row_cap: Vec::new(),
            row_len: Vec::new(),
            indices: Vec::new(),
            values: Vec::new(),
            nnz: 0,
            repacks: 0,
            headroom_num: num.max(den.max(1)),
            headroom_den: den.max(1),
        };
        d.pack_from(&(0..a.rows()).map(|r| a.row(r)).collect::<Vec<_>>());
        d
    }

    fn cap_for(&self, len: usize) -> usize {
        (len * self.headroom_num / self.headroom_den).max(len + 2)
    }

    /// Lay out the given rows with fresh headroom.
    fn pack_from(&mut self, rows: &[(&[u32], &[f32])]) {
        self.row_start.clear();
        self.row_cap.clear();
        self.row_len.clear();
        self.indices.clear();
        self.values.clear();
        self.nnz = 0;
        for &(cols, vals) in rows {
            let cap = self.cap_for(cols.len());
            self.row_start.push(self.indices.len());
            self.row_cap.push(cap);
            self.row_len.push(cols.len());
            self.indices.extend_from_slice(cols);
            self.values.extend_from_slice(vals);
            self.indices.resize(self.indices.len() + (cap - cols.len()), 0);
            self.values.resize(self.values.len() + (cap - cols.len()), 0.0);
            self.nnz += cols.len();
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Live non-zero count.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// How many full re-packs the update history has paid.
    #[must_use]
    pub fn repacks(&self) -> u64 {
        self.repacks
    }

    /// Total allocated slots (live + slack), for occupancy accounting.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.indices.len()
    }

    /// Live column indices and values of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.row_start[r];
        let hi = lo + self.row_len[r];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Freeze back to a tight CSR (bit-identical to rebuilding from the
    /// live edge set).
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        Csr::from_parts(self.rows, self.cols, indptr, indices, values)
    }

    /// Apply a batch of edge updates. Rows whose merged length fits their
    /// capacity are rewritten in place; the first overflow re-packs the
    /// whole structure with fresh headroom (one amortized move, counted in
    /// [`DynCsr::repacks`]).
    ///
    /// # Errors
    /// Fails when an op is out of bounds for this matrix's shape.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DynDeltaReport, SmatError> {
        delta.validate(self.rows, self.cols)?;
        let ops = delta.normalized_ops();
        let mut rows_in_place = 0usize;
        let mut scratch_cols: Vec<u32> = Vec::new();
        let mut scratch_vals: Vec<f32> = Vec::new();
        let mut op_i = 0usize;
        let mut overflow_at: Option<usize> = None;
        while op_i < ops.len() {
            let r = ops[op_i].0 as usize;
            scratch_cols.clear();
            scratch_vals.clear();
            let (cols, vals) = self.row(r);
            // Merge into scratch; the borrow of self.row ends before the
            // writeback below.
            let (cols, vals) = (cols.to_vec(), vals.to_vec());
            let mut local_i = op_i;
            merge_row(
                r as u32,
                &cols,
                &vals,
                &ops,
                &mut local_i,
                &mut scratch_cols,
                &mut scratch_vals,
            );
            if scratch_cols.len() <= self.row_cap[r] {
                let lo = self.row_start[r];
                self.indices[lo..lo + scratch_cols.len()].copy_from_slice(&scratch_cols);
                self.values[lo..lo + scratch_vals.len()].copy_from_slice(&scratch_vals);
                self.nnz = self.nnz + scratch_cols.len() - self.row_len[r];
                self.row_len[r] = scratch_cols.len();
                rows_in_place += 1;
                op_i = local_i;
            } else {
                overflow_at = Some(op_i);
                break;
            }
        }
        let repacked = if let Some(from) = overflow_at {
            // Remaining ops (including the overflowing row's) are applied
            // through one tight merge, then everything is re-provisioned
            // with fresh headroom.
            let mut rest = GraphDelta::new();
            for &(r, c, v) in &ops[from..] {
                match v {
                    Some(v) => rest.upsert(r, c, v),
                    None => rest.delete(r, c),
                };
            }
            let merged = self.to_csr().apply_delta(&rest)?;
            let rows: Vec<(&[u32], &[f32])> = (0..merged.rows()).map(|r| merged.row(r)).collect();
            let (num, den) = (self.headroom_num, self.headroom_den);
            let mut fresh = DynCsr {
                rows: self.rows,
                cols: self.cols,
                row_start: Vec::new(),
                row_cap: Vec::new(),
                row_len: Vec::new(),
                indices: Vec::new(),
                values: Vec::new(),
                nnz: 0,
                repacks: self.repacks + 1,
                headroom_num: num,
                headroom_den: den,
            };
            fresh.pack_from(&rows);
            *self = fresh;
            true
        } else {
            false
        };
        Ok(DynDeltaReport { rows_in_place, repacked })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use std::collections::BTreeMap;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    fn rebuild(base: &Csr, delta: &GraphDelta) -> Csr {
        // Oracle: replay the edge set through a BTreeMap and rebuild.
        let mut edges: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for r in 0..base.rows() {
            let (cols, vals) = base.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                edges.insert((r as u32, c), v);
            }
        }
        for &(r, c, v) in delta.normalized_ops().iter() {
            match v {
                Some(v) => {
                    edges.insert((r, c), v);
                }
                None => {
                    edges.remove(&(r, c));
                }
            }
        }
        let entries: Vec<(u32, u32, f32)> =
            edges.into_iter().map(|((r, c), v)| (r, c, v)).collect();
        Csr::from_coo(&Coo::from_entries(base.rows(), base.cols(), entries).unwrap())
    }

    #[test]
    fn normalize_is_last_wins() {
        let mut d = GraphDelta::new();
        d.upsert(0, 1, 1.0).delete(0, 1).upsert(0, 1, 9.0).upsert(0, 0, 2.0);
        assert_eq!(d.normalize(), &[(0, 0, Some(2.0)), (0, 1, Some(9.0))]);
        assert_eq!(d.touched_rows(), vec![0]);
    }

    #[test]
    fn apply_delta_matches_rebuild() {
        let base = sample();
        let mut d = GraphDelta::new();
        d.upsert(1, 1, 7.0) // insert into empty row
            .delete(0, 2) // delete existing
            .upsert(2, 0, -3.0) // overwrite
            .delete(1, 2); // delete absent: no-op
        let inc = base.apply_delta(&d).unwrap();
        assert_eq!(inc, rebuild(&base, &d));
        assert_eq!(inc.nnz(), 4);
        assert_eq!(inc.to_dense().get(2, 0), -3.0);
    }

    #[test]
    fn apply_delta_rejects_out_of_bounds() {
        let base = sample();
        let mut d = GraphDelta::new();
        d.upsert(0, 3, 1.0);
        assert!(base.apply_delta(&d).is_err());
        let mut d2 = GraphDelta::new();
        d2.delete(3, 0);
        assert!(base.apply_delta(&d2).is_err());
    }

    #[test]
    fn empty_delta_is_identity() {
        let base = sample();
        assert_eq!(base.apply_delta(&GraphDelta::new()).unwrap(), base);
    }

    #[test]
    fn dyncsr_roundtrip_and_in_place_patch() {
        let base = sample();
        let mut dy = DynCsr::from_csr(&base);
        assert_eq!(dy.to_csr(), base);
        assert_eq!(dy.nnz(), base.nnz());
        let mut d = GraphDelta::new();
        d.upsert(0, 1, 5.0).delete(2, 1);
        let report = dy.apply_delta(&d).unwrap();
        assert!(!report.repacked, "2 spare slots per row must absorb a 1-insert");
        assert_eq!(report.rows_in_place, 2);
        assert_eq!(dy.to_csr(), rebuild(&base, &d));
        assert_eq!(dy.repacks(), 0);
    }

    #[test]
    fn dyncsr_repacks_on_overflow_with_fresh_headroom() {
        let base = sample();
        let mut dy = DynCsr::with_headroom(&base, 1, 1); // min slack: len + 2
        let mut d = GraphDelta::new();
        // Row 1 is empty (cap 2): three inserts must overflow it.
        d.upsert(1, 0, 1.0).upsert(1, 1, 2.0).upsert(1, 2, 3.0);
        let report = dy.apply_delta(&d).unwrap();
        assert!(report.repacked);
        assert_eq!(dy.repacks(), 1);
        assert_eq!(dy.to_csr(), rebuild(&base, &d));
        // After the re-pack the row has headroom again: one more insert
        // into another row stays in place.
        let mut d2 = GraphDelta::new();
        d2.upsert(2, 2, 8.0);
        let report2 = dy.apply_delta(&d2).unwrap();
        assert!(!report2.repacked);
        assert_eq!(dy.repacks(), 1);
    }

    #[test]
    fn dyncsr_amortizes_sustained_inserts() {
        // 64 rows, one insert per row per round: the repack count must grow
        // logarithmically with the total growth, not linearly with rounds.
        let base = Csr::new(64, 64, vec![0; 65], vec![], vec![]).unwrap();
        let mut dy = DynCsr::from_csr(&base);
        let mut oracle = base.clone();
        for round in 0..32u32 {
            let mut d = GraphDelta::new();
            for r in 0..64u32 {
                d.upsert(r, (round * 2 + r) % 64, round as f32 + 1.0);
            }
            dy.apply_delta(&d).unwrap();
            oracle = oracle.apply_delta(&d).unwrap();
        }
        assert_eq!(dy.to_csr(), oracle);
        assert!(
            dy.repacks() <= 8,
            "geometric headroom must amortize 32 rounds into few repacks, got {}",
            dy.repacks()
        );
    }
}
