//! # sparsetir-smat
//!
//! Sparse/dense matrix substrate for the SparseTIR reproduction. Implements
//! every storage format the paper's §3.1 lists as expressible by SparseTIR
//! axis composition, plus the formats its evaluation introduces:
//!
//! | Format | Module | Paper use |
//! |---|---|---|
//! | Dense | [`dense`] | `X`, `Y`, `W` operands |
//! | COO | [`coo`] | construction |
//! | CSR | [`csr`] | baselines, GNN graphs |
//! | CSC | [`csc`] | column-oriented kernels |
//! | ELL | [`ell`] | `hyb` building block |
//! | BSR | [`bsr`] | sparse attention, block pruning |
//! | DBSR | [`bsr::Dbsr`] | block pruning with zero rows (§4.3.2) |
//! | DIA | [`dia`] | format expressiveness |
//! | CSF (3-mode) | [`csf`] | RGMS relational tensor (§4.4) |
//! | Ragged | [`csf::Ragged`] | ragged tensors |
//! | SR-BCRS(t, g) | [`srbcrs`] | unstructured pruning (§4.3.2) |
//! | `hyb(c, k)` | [`hyb`] | composable SpMM format (§4.2.1, Fig. 11) |
//!
//! Each compressed format carries `to_dense`/`spmm` reference routines used
//! as correctness oracles by the kernel crates, and conversion constructors
//! implementing the "indices inference" the paper delegates to SciPy.
//!
//! ```
//! use sparsetir_smat::prelude::*;
//!
//! let mut rng = gen::rng(42);
//! let a = gen::random_csr(64, 64, 0.05, &mut rng);
//! let hyb = Hyb::with_default_k(&a, 2)?;          // hyb(c=2, default k)
//! let x = gen::random_dense(64, 16, &mut rng);
//! assert!(hyb.spmm(&x)?.approx_eq(&a.spmm(&x)?, 1e-4));
//! # Ok::<(), sparsetir_smat::SmatError>(())
//! ```

#![warn(missing_docs)]

pub mod bsr;
pub mod coo;
pub mod csc;
pub mod csf;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod fingerprint;
pub mod gen;
pub mod hyb;
pub mod io;
pub mod linalg;
pub mod srbcrs;
pub mod view;

pub use dense::SmatError;

/// Common imports.
pub mod prelude {
    pub use crate::bsr::{Bsr, Dbsr};
    pub use crate::coo::Coo;
    pub use crate::csc::Csc;
    pub use crate::csf::{Csf3, Ragged};
    pub use crate::csr::Csr;
    pub use crate::delta::{DynCsr, DynDeltaReport, GraphDelta};
    pub use crate::dense::{Dense, SmatError};
    pub use crate::dia::Dia;
    pub use crate::ell::Ell;
    pub use crate::fingerprint::{SparsityFingerprint, VersionedFingerprint};
    pub use crate::gen;
    pub use crate::hyb::{
        bucket_for, ceil_log2, default_k, EllBucket, Hyb, HybDeltaReport, HybPartition,
    };
    pub use crate::io::{parse_matrix_market, to_matrix_market};
    pub use crate::linalg::{batched_sddmm, batched_spmm, rgms_reference};
    pub use crate::srbcrs::SrBcrs;
    pub use crate::view::{DenseView, DenseViewMut};
}
