//! Cross-format reference routines used as correctness oracles: RGMS
//! (Relational Gather-Matmul-Scatter, §4.4) and batched attention operators
//! (§4.3.1).

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// Reference RGMS: `Y[i, l] = Σ_r Σ_j Σ_k A_r[i, j] · X[j, k] · W_r[k, l]`
/// computed via the two-stage formulation the GNN libraries use
/// (eqs. 9–10 of the paper): `T_r = X · W_r`, then `Y += A_r · T_r`.
///
/// # Errors
/// Fails when the relation count disagrees or any shape mismatches.
pub fn rgms_reference(relations: &[Csr], x: &Dense, weights: &[Dense]) -> Result<Dense, SmatError> {
    if relations.len() != weights.len() {
        return Err(SmatError::new(format!(
            "rgms: {} relations but {} weight matrices",
            relations.len(),
            weights.len()
        )));
    }
    let d_out = weights.first().map_or(0, Dense::cols);
    let rows = relations.first().map_or(0, Csr::rows);
    let mut y = Dense::zeros(rows, d_out);
    for (a, w) in relations.iter().zip(weights) {
        let t = x.matmul(w)?;
        let part = a.spmm(&t)?;
        y = y.add(&part)?;
    }
    Ok(y)
}

/// Reference batched SpMM: one shared sparse pattern applied per batch
/// (multi-head attention, §4.3.1). `x` is `[batch][n × d]`.
///
/// # Errors
/// Fails on per-batch shape mismatch.
pub fn batched_spmm(a: &Csr, x: &[Dense]) -> Result<Vec<Dense>, SmatError> {
    x.iter().map(|xb| a.spmm(xb)).collect()
}

/// Reference batched SDDMM over a shared pattern.
///
/// # Errors
/// Fails on per-batch shape mismatch.
pub fn batched_sddmm(a: &Csr, x: &[Dense], y: &[Dense]) -> Result<Vec<Csr>, SmatError> {
    if x.len() != y.len() {
        return Err(SmatError::new("batched sddmm: batch count mismatch"));
    }
    x.iter().zip(y).map(|(xb, yb)| a.sddmm(xb, yb)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rgms_matches_dense_computation() {
        let mut rng = gen::rng(11);
        let n = 12;
        let (din, dout) = (6, 5);
        let rels: Vec<Csr> = (0..3).map(|_| gen::random_csr(n, n, 0.2, &mut rng)).collect();
        let x = gen::random_dense(n, din, &mut rng);
        let ws: Vec<Dense> = (0..3).map(|_| gen::random_dense(din, dout, &mut rng)).collect();
        let y = rgms_reference(&rels, &x, &ws).unwrap();
        // Dense check: Y = Σ_r A_r (X W_r)
        let mut expect = Dense::zeros(n, dout);
        for (a, w) in rels.iter().zip(&ws) {
            let t = x.matmul(w).unwrap();
            let part = a.to_dense().matmul(&t).unwrap();
            expect = expect.add(&part).unwrap();
        }
        assert!(y.approx_eq(&expect, 1e-4));
    }

    #[test]
    fn rgms_count_mismatch_errors() {
        let mut rng = gen::rng(2);
        let rels = vec![gen::random_csr(4, 4, 0.5, &mut rng)];
        let x = gen::random_dense(4, 2, &mut rng);
        assert!(rgms_reference(&rels, &x, &[]).is_err());
    }

    #[test]
    fn batched_ops_apply_per_batch() {
        let mut rng = gen::rng(3);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let xs: Vec<Dense> = (0..2).map(|_| gen::random_dense(8, 4, &mut rng)).collect();
        let ys = batched_spmm(&a, &xs).unwrap();
        assert_eq!(ys.len(), 2);
        for (x, y) in xs.iter().zip(&ys) {
            assert!(y.approx_eq(&a.spmm(x).unwrap(), 1e-6));
        }
    }
}
