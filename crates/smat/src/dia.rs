//! Diagonal (DIA) format — stores dense diagonals; listed in §3.1 among the
//! formats expressible by SparseTIR axis composition.

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// A DIA matrix: for each stored diagonal `offset`, a length-`rows` lane
/// where lane\[r\] is element `(r, r + offset)` (0 when out of range).
#[derive(Debug, Clone, PartialEq)]
pub struct Dia {
    rows: usize,
    cols: usize,
    offsets: Vec<i64>,
    data: Vec<f32>,
}

impl Dia {
    /// Convert from CSR, storing every diagonal that contains a non-zero.
    ///
    /// # Errors
    /// Fails when the number of non-empty diagonals exceeds `max_diags`
    /// (guarding against pathological densification).
    pub fn from_csr(csr: &Csr, max_diags: usize) -> Result<Dia, SmatError> {
        let mut offsets: Vec<i64> = Vec::new();
        for r in 0..csr.rows() {
            for &c in csr.row(r).0 {
                let off = i64::from(c) - r as i64;
                if let Err(pos) = offsets.binary_search(&off) {
                    offsets.insert(pos, off);
                    if offsets.len() > max_diags {
                        return Err(SmatError::new(format!(
                            "matrix has more than {max_diags} non-empty diagonals"
                        )));
                    }
                }
            }
        }
        let rows = csr.rows();
        let mut data = vec![0.0f32; offsets.len() * rows];
        for r in 0..rows {
            let (cols, vals) = csr.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let off = i64::from(c) - r as i64;
                let d = offsets.binary_search(&off).expect("diagonal present");
                data[d * rows + r] = v;
            }
        }
        Ok(Dia { rows, cols: csr.cols(), offsets, data })
    }

    /// Stored diagonal offsets (sorted).
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Number of stored diagonals.
    #[must_use]
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// Stored elements (diagonals × rows).
    #[must_use]
    pub fn stored(&self) -> usize {
        self.data.len()
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut m = Dense::zeros(self.rows, self.cols);
        for (d, &off) in self.offsets.iter().enumerate() {
            for r in 0..self.rows {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < self.cols {
                    let v = self.data[d * self.rows + r];
                    if v != 0.0 {
                        m.set(r, c as usize, v);
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn tridiagonal_roundtrip() {
        let n = 6;
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            coo.push(i, i, 2.0);
            if i + 1 < n as u32 {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let csr = Csr::from_coo(&coo);
        let dia = Dia::from_csr(&csr, 8).unwrap();
        assert_eq!(dia.ndiags(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
        assert_eq!(dia.to_dense(), csr.to_dense());
    }

    #[test]
    fn too_many_diagonals_errors() {
        let mut coo = Coo::new(8, 8);
        for i in 0..8u32 {
            coo.push(0, i, 1.0);
        }
        let csr = Csr::from_coo(&coo);
        assert!(Dia::from_csr(&csr, 4).is_err());
    }
}
