//! Coordinate (COO) sparse matrices — the construction entry point for all
//! other formats.

use crate::dense::{Dense, SmatError};

/// A sparse matrix in coordinate form: unordered `(row, col, value)`
/// triplets. Duplicate coordinates are summed during conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// Empty matrix of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Coo {
        Coo { rows, cols, entries: Vec::new() }
    }

    /// Build from triplets.
    ///
    /// # Errors
    /// Fails when any coordinate is out of bounds.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        entries: Vec<(u32, u32, f32)>,
    ) -> Result<Coo, SmatError> {
        for &(r, c, _) in &entries {
            if r as usize >= rows || c as usize >= cols {
                return Err(SmatError::new(format!(
                    "entry ({r},{c}) out of bounds for {rows}x{cols}"
                )));
            }
        }
        Ok(Coo { rows, cols, entries })
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics when the coordinate is out of bounds.
    pub fn push(&mut self, r: u32, c: u32, v: f32) {
        assert!(
            (r as usize) < self.rows && (c as usize) < self.cols,
            "entry ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((r, c, v));
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored triplets (may contain duplicates until conversion).
    #[must_use]
    pub fn entries(&self) -> &[(u32, u32, f32)] {
        &self.entries
    }

    /// Number of stored triplets.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.entries.len()
    }

    /// Sort by `(row, col)` and sum duplicates in place.
    pub fn coalesce(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Dense reconstruction (duplicates summed).
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            let cur = d.get(r as usize, c as usize);
            d.set(r as usize, c as usize, cur + v);
        }
        d
    }

    /// Build from a dense matrix, keeping entries with `|v| > 0`.
    #[must_use]
    pub fn from_dense(d: &Dense) -> Coo {
        let mut coo = Coo::new(d.rows(), d.cols());
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = d.get(r, c);
                if v != 0.0 {
                    coo.push(r as u32, c as u32, v);
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_sums_duplicates() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 5.0);
        coo.coalesce();
        assert_eq!(coo.entries(), &[(0, 1, 3.0), (1, 0, 5.0)]);
    }

    #[test]
    fn bounds_are_validated() {
        assert!(Coo::from_entries(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(Coo::from_entries(2, 2, vec![(1, 1, 1.0)]).is_ok());
    }

    #[test]
    fn dense_roundtrip() {
        let d = Dense::from_vec(2, 3, vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]).unwrap();
        let coo = Coo::from_dense(&d);
        assert_eq!(coo.stored(), 3);
        assert_eq!(coo.to_dense(), d);
    }
}
