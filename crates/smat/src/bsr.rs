//! Block Compressed Sparse Row (BSR) — the tensor-core-friendly format used
//! for sparse attention and structured pruning (paper §4.3).

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// A BSR matrix with square `block × block` blocks stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Bsr {
    rows: usize,
    cols: usize,
    block: usize,
    block_rows: usize,
    block_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Bsr {
    /// Convert from CSR, collecting every block containing at least one
    /// non-zero (zero-padding block interiors).
    ///
    /// # Errors
    /// Fails when `block` is zero.
    pub fn from_csr(csr: &Csr, block: usize) -> Result<Bsr, SmatError> {
        if block == 0 {
            return Err(SmatError::new("block size must be positive"));
        }
        let rows = csr.rows();
        let cols = csr.cols();
        let block_rows = rows.div_ceil(block);
        let block_cols = cols.div_ceil(block);
        let mut indptr = vec![0usize; block_rows + 1];
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        for br in 0..block_rows {
            // Collect block columns present in this block row.
            let mut present: Vec<u32> = Vec::new();
            for r in br * block..((br + 1) * block).min(rows) {
                for &c in csr.row(r).0 {
                    let bc = c / block as u32;
                    if !present.contains(&bc) {
                        present.push(bc);
                    }
                }
            }
            present.sort_unstable();
            let base = values.len();
            values.resize(base + present.len() * block * block, 0.0);
            for r in br * block..((br + 1) * block).min(rows) {
                let (rcols, rvals) = csr.row(r);
                for (&c, &v) in rcols.iter().zip(rvals) {
                    let bc = c / block as u32;
                    let slot = present.binary_search(&bc).expect("block present");
                    let ri = r - br * block;
                    let ci = c as usize - bc as usize * block;
                    values[base + slot * block * block + ri * block + ci] = v;
                }
            }
            indices.extend_from_slice(&present);
            indptr[br + 1] = indices.len();
        }
        Ok(Bsr { rows, cols, block, block_rows, block_cols, indptr, indices, values })
    }

    /// Logical row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block edge length.
    #[must_use]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of block rows.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns.
    #[must_use]
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Block-row pointer array.
    #[must_use]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Block column indices.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Block value storage (`nblocks × block × block`).
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of stored blocks.
    #[must_use]
    pub fn nblocks(&self) -> usize {
        self.indices.len()
    }

    /// Stored element count (blocks × block²).
    #[must_use]
    pub fn stored(&self) -> usize {
        self.nblocks() * self.block * self.block
    }

    /// Count of block rows with no blocks at all — the waste DBSR removes
    /// (paper §4.3.2, structured pruning).
    #[must_use]
    pub fn zero_block_rows(&self) -> usize {
        (0..self.block_rows).filter(|&br| self.indptr[br] == self.indptr[br + 1]).count()
    }

    /// Density of the stored blocks relative to the full matrix.
    #[must_use]
    pub fn stored_density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.stored() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        let b = self.block;
        for br in 0..self.block_rows {
            for p in self.indptr[br]..self.indptr[br + 1] {
                let bc = self.indices[p] as usize;
                for ri in 0..b {
                    for ci in 0..b {
                        let r = br * b + ri;
                        let c = bc * b + ci;
                        if r < self.rows && c < self.cols {
                            let v = self.values[p * b * b + ri * b + ci];
                            if v != 0.0 {
                                d.set(r, c, v);
                            }
                        }
                    }
                }
            }
        }
        d
    }

    /// Reference SpMM on block storage.
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("bsr spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        let b = self.block;
        for br in 0..self.block_rows {
            for p in self.indptr[br]..self.indptr[br + 1] {
                let bc = self.indices[p] as usize;
                for ri in 0..b {
                    let r = br * b + ri;
                    if r >= self.rows {
                        break;
                    }
                    for ci in 0..b {
                        let c = bc * b + ci;
                        if c >= self.cols {
                            break;
                        }
                        let v = self.values[p * b * b + ri * b + ci];
                        if v == 0.0 {
                            continue;
                        }
                        let xrow = x.row(c);
                        let yrow = y.row_mut(r);
                        for (o, &xv) in yrow.iter_mut().zip(xrow) {
                            *o += v * xv;
                        }
                    }
                }
            }
        }
        Ok(y)
    }
}

/// Doubly-compressed BSR (DBSR, after the DCSR of Buluç & Gilbert): block
/// rows with no blocks are skipped entirely, storing an explicit list of
/// non-empty block-row ids (paper §4.3.2, block-pruned transformers).
#[derive(Debug, Clone, PartialEq)]
pub struct Dbsr {
    rows: usize,
    cols: usize,
    block: usize,
    block_row_ids: Vec<u32>,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Dbsr {
    /// Logical row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Compress a BSR matrix by dropping empty block rows.
    #[must_use]
    pub fn from_bsr(bsr: &Bsr) -> Dbsr {
        let mut block_row_ids = Vec::new();
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let bb = bsr.block() * bsr.block();
        for br in 0..bsr.block_rows() {
            let lo = bsr.indptr()[br];
            let hi = bsr.indptr()[br + 1];
            if lo == hi {
                continue;
            }
            block_row_ids.push(br as u32);
            indices.extend_from_slice(&bsr.indices()[lo..hi]);
            values.extend_from_slice(&bsr.values()[lo * bb..hi * bb]);
            indptr.push(indices.len());
        }
        Dbsr {
            rows: bsr.rows(),
            cols: bsr.cols(),
            block: bsr.block(),
            block_row_ids,
            indptr,
            indices,
            values,
        }
    }

    /// Non-empty block-row ids.
    #[must_use]
    pub fn block_row_ids(&self) -> &[u32] {
        &self.block_row_ids
    }

    /// Number of stored (non-empty) block rows.
    #[must_use]
    pub fn nrows_compressed(&self) -> usize {
        self.block_row_ids.len()
    }

    /// Block pointer array over compressed rows.
    #[must_use]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Block column indices.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Block values.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Block edge length.
    #[must_use]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of stored blocks.
    #[must_use]
    pub fn nblocks(&self) -> usize {
        self.indices.len()
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        let b = self.block;
        for (ci, &br) in self.block_row_ids.iter().enumerate() {
            for p in self.indptr[ci]..self.indptr[ci + 1] {
                let bc = self.indices[p] as usize;
                for ri in 0..b {
                    for cj in 0..b {
                        let r = br as usize * b + ri;
                        let c = bc * b + cj;
                        if r < self.rows && c < self.cols {
                            let v = self.values[p * b * b + ri * b + cj];
                            if v != 0.0 {
                                d.set(r, c, v);
                            }
                        }
                    }
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn blocky() -> Csr {
        // 6x6 with non-zeros confined to blocks (0,0) and (2,1) of size 2,
        // leaving block row 1 empty.
        let coo = Coo::from_entries(6, 6, vec![(0, 0, 1.0), (1, 1, 2.0), (4, 2, 3.0), (5, 3, 4.0)])
            .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_csr_collects_blocks() {
        let bsr = Bsr::from_csr(&blocky(), 2).unwrap();
        assert_eq!(bsr.nblocks(), 2);
        assert_eq!(bsr.zero_block_rows(), 1);
        assert_eq!(bsr.to_dense(), blocky().to_dense());
    }

    #[test]
    fn spmm_matches_csr() {
        let csr = blocky();
        let bsr = Bsr::from_csr(&csr, 2).unwrap();
        let x = Dense::from_fn(6, 3, |r, c| (r + c) as f32);
        assert!(bsr.spmm(&x).unwrap().approx_eq(&csr.spmm(&x).unwrap(), 1e-6));
    }

    #[test]
    fn dbsr_skips_empty_block_rows() {
        let bsr = Bsr::from_csr(&blocky(), 2).unwrap();
        let dbsr = Dbsr::from_bsr(&bsr);
        assert_eq!(dbsr.nrows_compressed(), 2);
        assert_eq!(dbsr.block_row_ids(), &[0, 2]);
        assert_eq!(dbsr.to_dense(), blocky().to_dense());
    }

    #[test]
    fn non_divisible_dims_are_padded() {
        let coo = Coo::from_entries(5, 5, vec![(4, 4, 7.0)]).unwrap();
        let csr = Csr::from_coo(&coo);
        let bsr = Bsr::from_csr(&csr, 2).unwrap();
        assert_eq!(bsr.block_rows(), 3);
        assert_eq!(bsr.to_dense(), csr.to_dense());
    }

    #[test]
    fn zero_block_size_errors() {
        assert!(Bsr::from_csr(&blocky(), 0).is_err());
    }
}
