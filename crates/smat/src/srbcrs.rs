//! SR-BCRS(t, g) — the Magicube-inspired format for unstructured pruned
//! weights (paper §4.3.2, Figure 18): the matrix is cut into `t × 1`
//! vertical tiles; all-zero tiles are dropped; surviving tiles within a
//! tile-row are grouped by `g` with zero-tile padding so tensor cores can
//! consume whole groups.

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};
use std::collections::BTreeSet;

/// An SR-BCRS matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SrBcrs {
    rows: usize,
    cols: usize,
    t: usize,
    g: usize,
    tile_rows: usize,
    /// Per tile-row group counts, prefix-summed (`len = tile_rows + 1`).
    group_indptr: Vec<usize>,
    /// Column index per stored tile (`len = total_groups × g`).
    tile_cols: Vec<u32>,
    /// Values per stored tile, `t` each (`len = total_groups × g × t`).
    values: Vec<f32>,
}

impl SrBcrs {
    /// Convert from CSR.
    ///
    /// # Errors
    /// Fails when `t == 0` or `g == 0`.
    pub fn from_csr(csr: &Csr, t: usize, g: usize) -> Result<SrBcrs, SmatError> {
        if t == 0 || g == 0 {
            return Err(SmatError::new("sr-bcrs: t and g must be positive"));
        }
        let rows = csr.rows();
        let cols = csr.cols();
        let tile_rows = rows.div_ceil(t);
        let mut group_indptr = vec![0usize; tile_rows + 1];
        let mut tile_cols: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        for tr in 0..tile_rows {
            // Columns with at least one non-zero among rows [tr*t, tr*t+t).
            let mut present: BTreeSet<u32> = BTreeSet::new();
            for r in tr * t..((tr + 1) * t).min(rows) {
                for &c in csr.row(r).0 {
                    present.insert(c);
                }
            }
            let ntiles = present.len();
            let ngroups = ntiles.div_ceil(g);
            let padded = ngroups * g;
            let cols_vec: Vec<u32> = present.into_iter().collect();
            for slot in 0..padded {
                let col = cols_vec.get(slot).copied().unwrap_or(0);
                tile_cols.push(col);
                for ri in 0..t {
                    let r = tr * t + ri;
                    let v = if slot < ntiles && r < rows { lookup(csr, r, col) } else { 0.0 };
                    values.push(v);
                }
            }
            group_indptr[tr + 1] = group_indptr[tr] + ngroups;
        }
        Ok(SrBcrs { rows, cols, t, g, tile_rows, group_indptr, tile_cols, values })
    }

    /// Logical row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile height `t`.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Group size `g`.
    #[must_use]
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of tile rows.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Group pointer array over tile rows.
    #[must_use]
    pub fn group_indptr(&self) -> &[usize] {
        &self.group_indptr
    }

    /// Column per stored tile.
    #[must_use]
    pub fn tile_cols(&self) -> &[u32] {
        &self.tile_cols
    }

    /// Tile values (column-major within tile: `t` consecutive values).
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Total stored tiles including padding.
    #[must_use]
    pub fn stored_tiles(&self) -> usize {
        self.tile_cols.len()
    }

    /// Total stored elements including padding.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.values.len()
    }

    /// Density of the transformed storage relative to the full matrix
    /// (the right panel of Figure 19).
    #[must_use]
    pub fn stored_density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.stored() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for tr in 0..self.tile_rows {
            let lo = self.group_indptr[tr] * self.g;
            let hi = self.group_indptr[tr + 1] * self.g;
            for tile in lo..hi {
                let c = self.tile_cols[tile] as usize;
                for ri in 0..self.t {
                    let r = tr * self.t + ri;
                    if r < self.rows {
                        let v = self.values[tile * self.t + ri];
                        if v != 0.0 {
                            d.set(r, c, v);
                        }
                    }
                }
            }
        }
        d
    }

    /// Reference SpMM on the tiled storage.
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("sr-bcrs spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for tr in 0..self.tile_rows {
            let lo = self.group_indptr[tr] * self.g;
            let hi = self.group_indptr[tr + 1] * self.g;
            for tile in lo..hi {
                let c = self.tile_cols[tile] as usize;
                let xrow = x.row(c);
                for ri in 0..self.t {
                    let r = tr * self.t + ri;
                    if r >= self.rows {
                        break;
                    }
                    let v = self.values[tile * self.t + ri];
                    if v == 0.0 {
                        continue;
                    }
                    let yrow = y.row_mut(r);
                    for (o, &xv) in yrow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        }
        Ok(y)
    }
}

fn lookup(csr: &Csr, r: usize, col: u32) -> f32 {
    let (cols, vals) = csr.row(r);
    match cols.binary_search(&col) {
        Ok(p) => vals[p],
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        // 8x8 with a few scattered entries.
        let coo = Coo::from_entries(
            8,
            8,
            vec![(0, 1, 1.0), (1, 1, 2.0), (2, 5, 3.0), (3, 1, 4.0), (4, 0, 5.0), (7, 7, 6.0)],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn roundtrip() {
        let csr = sample();
        for (t, g) in [(2usize, 2usize), (4, 2), (4, 4), (8, 1)] {
            let s = SrBcrs::from_csr(&csr, t, g).unwrap();
            assert_eq!(s.to_dense(), csr.to_dense(), "t={t} g={g}");
        }
    }

    #[test]
    fn groups_are_padded_to_g() {
        let csr = sample();
        let s = SrBcrs::from_csr(&csr, 4, 4).unwrap();
        assert_eq!(s.stored_tiles() % 4, 0);
    }

    #[test]
    fn spmm_matches_csr() {
        let csr = sample();
        let x = Dense::from_fn(8, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let expected = csr.spmm(&x).unwrap();
        let s = SrBcrs::from_csr(&csr, 4, 2).unwrap();
        assert!(s.spmm(&x).unwrap().approx_eq(&expected, 1e-5));
    }

    #[test]
    fn fragmentation_beats_bsr() {
        // SR-BCRS intra-tile waste lower bound is 1/t vs 1/b² for BSR:
        // a single scattered nonzero stores t elements, not b².
        let coo = Coo::from_entries(32, 32, vec![(5, 9, 1.0)]).unwrap();
        let csr = Csr::from_coo(&coo);
        let s = SrBcrs::from_csr(&csr, 8, 1).unwrap();
        let b = crate::bsr::Bsr::from_csr(&csr, 32).unwrap();
        assert!(s.stored() < b.stored());
        assert_eq!(s.stored(), 8);
    }

    #[test]
    fn invalid_params_error() {
        let csr = sample();
        assert!(SrBcrs::from_csr(&csr, 0, 2).is_err());
        assert!(SrBcrs::from_csr(&csr, 2, 0).is_err());
    }
}
