//! Compressed Sparse Fiber (CSF) for 3-mode tensors, plus ragged tensors —
//! the remaining §3.1 formats. The 3-mode CSF backs the relational sparse
//! tensor `A[r, i, j]` of the RGMS operator (§4.4).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::SmatError;

/// A 3-mode sparse tensor in CSF order `(relation, row, col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csf3 {
    dims: (usize, usize, usize),
    rel_ids: Vec<u32>,
    rel_ptr: Vec<usize>,
    row_ids: Vec<u32>,
    row_ptr: Vec<usize>,
    col_ids: Vec<u32>,
    values: Vec<f32>,
}

impl Csf3 {
    /// Build from per-relation CSR slices (relations with zero entries are
    /// kept in the level-0 fiber only if non-empty).
    ///
    /// # Errors
    /// Fails when slice shapes disagree with `(n_rows, n_cols)`.
    pub fn from_relations(n_rows: usize, n_cols: usize, slices: &[Csr]) -> Result<Csf3, SmatError> {
        let mut rel_ids = Vec::new();
        let mut rel_ptr = vec![0usize];
        let mut row_ids = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut col_ids = Vec::new();
        let mut values = Vec::new();
        for (r, slice) in slices.iter().enumerate() {
            if slice.rows() != n_rows || slice.cols() != n_cols {
                return Err(SmatError::new(format!(
                    "relation {r} has shape {}x{}, expected {n_rows}x{n_cols}",
                    slice.rows(),
                    slice.cols()
                )));
            }
            if slice.nnz() == 0 {
                continue;
            }
            rel_ids.push(r as u32);
            for i in 0..slice.rows() {
                let (cols, vals) = slice.row(i);
                if cols.is_empty() {
                    continue;
                }
                row_ids.push(i as u32);
                col_ids.extend_from_slice(cols);
                values.extend_from_slice(vals);
                row_ptr.push(col_ids.len());
            }
            rel_ptr.push(row_ids.len());
        }
        Ok(Csf3 {
            dims: (slices.len(), n_rows, n_cols),
            rel_ids,
            rel_ptr,
            row_ids,
            row_ptr,
            col_ids,
            values,
        })
    }

    /// Tensor dimensions `(relations, rows, cols)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Total stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-empty relation ids.
    #[must_use]
    pub fn rel_ids(&self) -> &[u32] {
        &self.rel_ids
    }

    /// Reconstruct per-relation CSR slices (empty relations included).
    #[must_use]
    pub fn to_relations(&self) -> Vec<Csr> {
        let (nrel, nrows, ncols) = self.dims;
        let mut out: Vec<Coo> = (0..nrel).map(|_| Coo::new(nrows, ncols)).collect();
        for (ri, &rel) in self.rel_ids.iter().enumerate() {
            for fi in self.rel_ptr[ri]..self.rel_ptr[ri + 1] {
                let row = self.row_ids[fi];
                for p in self.row_ptr[fi]..self.row_ptr[fi + 1] {
                    out[rel as usize].push(row, self.col_ids[p], self.values[p]);
                }
            }
        }
        out.iter().map(Csr::from_coo).collect()
    }

    /// Iterate `(relation, row, col, value)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32, f32)> + '_ {
        let mut out = Vec::with_capacity(self.nnz());
        for (ri, &rel) in self.rel_ids.iter().enumerate() {
            for fi in self.rel_ptr[ri]..self.rel_ptr[ri + 1] {
                let row = self.row_ids[fi];
                for p in self.row_ptr[fi]..self.row_ptr[fi + 1] {
                    out.push((rel, row, self.col_ids[p], self.values[p]));
                }
            }
        }
        out.into_iter()
    }
}

/// A ragged 2-D tensor (dense-variable axis in SparseTIR terms): rows of
/// varying length stored contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct Ragged {
    indptr: Vec<usize>,
    values: Vec<f32>,
}

impl Ragged {
    /// Build from per-row slices.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f32>]) -> Ragged {
        let mut indptr = vec![0usize];
        let mut values = Vec::new();
        for r in rows {
            values.extend_from_slice(r);
            indptr.push(values.len());
        }
        Ragged { indptr, values }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Borrow row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Row pointer array.
    #[must_use]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Total stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_slices() -> Vec<Csr> {
        let a = Coo::from_entries(3, 3, vec![(0, 1, 1.0), (2, 2, 2.0)]).unwrap();
        let b = Coo::from_entries(3, 3, vec![]).unwrap();
        let c = Coo::from_entries(3, 3, vec![(1, 0, 3.0)]).unwrap();
        vec![Csr::from_coo(&a), Csr::from_coo(&b), Csr::from_coo(&c)]
    }

    #[test]
    fn csf_roundtrip() {
        let slices = rel_slices();
        let csf = Csf3::from_relations(3, 3, &slices).unwrap();
        assert_eq!(csf.nnz(), 3);
        assert_eq!(csf.rel_ids(), &[0, 2]); // relation 1 is empty
        let back = csf.to_relations();
        for (orig, rt) in slices.iter().zip(&back) {
            assert_eq!(orig.to_dense(), rt.to_dense());
        }
    }

    #[test]
    fn csf_iter_yields_all() {
        let csf = Csf3::from_relations(3, 3, &rel_slices()).unwrap();
        let tuples: Vec<_> = csf.iter().collect();
        assert_eq!(tuples.len(), 3);
        assert!(tuples.contains(&(2, 1, 0, 3.0)));
    }

    #[test]
    fn csf_shape_mismatch_errors() {
        let bad = vec![Csr::from_coo(&Coo::new(2, 3))];
        assert!(Csf3::from_relations(3, 3, &bad).is_err());
    }

    #[test]
    fn ragged_rows() {
        let r = Ragged::from_rows(&[vec![1.0, 2.0], vec![], vec![3.0]]);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(0), &[1.0, 2.0]);
        assert_eq!(r.row(1), &[] as &[f32]);
        assert_eq!(r.len(), 3);
    }
}
