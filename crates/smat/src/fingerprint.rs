//! Structural sparsity fingerprints: the cache-key material that lets a
//! tuning or serving decision made for one matrix transfer to any matrix
//! with the same shape of sparsity problem (§2's amortization argument).

use crate::csr::Csr;

/// Structural summary of a sparse matrix: dimensions, non-zero count and
/// the power-of-two degree histogram. Two matrices with the same
/// fingerprint have the same shape of tuning problem, so a cached decision
/// transfers. Note the asymmetry: the *configuration* transfers between
/// colliding matrices by design, but any absolute timings stored alongside
/// it were observed on the first matrix — treat them as representative,
/// not exact, for a collider.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SparsityFingerprint {
    /// Rows of the matrix.
    pub rows: usize,
    /// Columns of the matrix.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `Csr::degree_histogram_log2` — the degree-skew summary that drives
    /// bucketing decisions.
    pub degree_hist: Vec<usize>,
}

impl SparsityFingerprint {
    /// Fingerprint a CSR matrix.
    #[must_use]
    pub fn of(a: &Csr) -> SparsityFingerprint {
        SparsityFingerprint {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            degree_hist: a.degree_histogram_log2(),
        }
    }

    /// Fingerprint a family of matrices as one combined structure (the
    /// multi-relation adjacency of RGMS): dimensions of the first member,
    /// total non-zeros, and the element-wise sum of the per-member degree
    /// histograms.
    #[must_use]
    pub fn of_relations(relations: &[Csr]) -> SparsityFingerprint {
        let mut degree_hist: Vec<usize> = Vec::new();
        for rel in relations {
            let h = rel.degree_histogram_log2();
            if h.len() > degree_hist.len() {
                degree_hist.resize(h.len(), 0);
            }
            for (acc, v) in degree_hist.iter_mut().zip(&h) {
                *acc += v;
            }
        }
        SparsityFingerprint {
            rows: relations.first().map_or(0, Csr::rows),
            cols: relations.first().map_or(0, Csr::cols),
            nnz: relations.iter().map(Csr::nnz).sum(),
            degree_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_degree_distributions() {
        let a = Csr::new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let b = Csr::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        assert_ne!(SparsityFingerprint::of(&a), SparsityFingerprint::of(&b));
    }

    #[test]
    fn relation_fingerprint_combines_members() {
        let a = Csr::new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let b = Csr::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let f = SparsityFingerprint::of_relations(&[a.clone(), b.clone()]);
        assert_eq!(f.nnz, a.nnz() + b.nnz());
        assert_eq!((f.rows, f.cols), (2, 2));
        // Reordering relations must not change the combined fingerprint.
        assert_eq!(f, SparsityFingerprint::of_relations(&[b, a]));
    }
}
