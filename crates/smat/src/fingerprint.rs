//! Structural sparsity fingerprints: the cache-key material that lets a
//! tuning or serving decision made for one matrix transfer to any matrix
//! with the same shape of sparsity problem (§2's amortization argument).

use crate::csr::Csr;

/// Structural summary of a sparse matrix: dimensions, non-zero count and
/// the power-of-two degree histogram. Two matrices with the same
/// fingerprint have the same shape of tuning problem, so a cached decision
/// transfers. Note the asymmetry: the *configuration* transfers between
/// colliding matrices by design, but any absolute timings stored alongside
/// it were observed on the first matrix — treat them as representative,
/// not exact, for a collider.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SparsityFingerprint {
    /// Rows of the matrix.
    pub rows: usize,
    /// Columns of the matrix.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `Csr::degree_histogram_log2` — the degree-skew summary that drives
    /// bucketing decisions.
    pub degree_hist: Vec<usize>,
    /// Per-relation `(rows, cols, nnz)` for multi-relation adjacencies
    /// (RGMS). Empty for single-matrix fingerprints. Encoding every
    /// member's dimensions (and, through the length, the relation count)
    /// keeps two relation families distinct even when their summed
    /// histograms and total non-zeros coincide.
    pub relation_dims: Vec<(usize, usize, usize)>,
}

impl SparsityFingerprint {
    /// Fingerprint a CSR matrix.
    #[must_use]
    pub fn of(a: &Csr) -> SparsityFingerprint {
        SparsityFingerprint {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            degree_hist: a.degree_histogram_log2(),
            relation_dims: Vec::new(),
        }
    }

    /// Fingerprint a family of matrices as one combined structure (the
    /// multi-relation adjacency of RGMS): dimensions of the first member,
    /// total non-zeros, the element-wise sum of the per-member degree
    /// histograms, and every member's `(rows, cols, nnz)` so that families
    /// differing in any relation's shape — not just the first — fingerprint
    /// differently.
    #[must_use]
    pub fn of_relations(relations: &[Csr]) -> SparsityFingerprint {
        let mut degree_hist: Vec<usize> = Vec::new();
        for rel in relations {
            let h = rel.degree_histogram_log2();
            if h.len() > degree_hist.len() {
                degree_hist.resize(h.len(), 0);
            }
            for (acc, v) in degree_hist.iter_mut().zip(&h) {
                *acc += v;
            }
        }
        // Sorted so the combined fingerprint stays order-insensitive, as
        // the RGMS kernels treat relations as an unordered family.
        let mut relation_dims: Vec<(usize, usize, usize)> =
            relations.iter().map(|r| (r.rows(), r.cols(), r.nnz())).collect();
        relation_dims.sort_unstable();
        SparsityFingerprint {
            rows: relations.first().map_or(0, Csr::rows),
            cols: relations.first().map_or(0, Csr::cols),
            nnz: relations.iter().map(Csr::nnz).sum(),
            degree_hist,
            relation_dims,
        }
    }

    /// Degree-histogram drift between this fingerprint and `newer`: the L1
    /// distance of the log2-degree histograms normalized by the row count,
    /// i.e. roughly the fraction of rows whose degree bucket changed (a row
    /// that moved bins contributes 2 to the raw distance). The serving
    /// engine re-tunes only when this exceeds its configured threshold —
    /// format and schedule decisions key on degree *skew*, which small
    /// drifts leave intact.
    #[must_use]
    pub fn drift(&self, newer: &SparsityFingerprint) -> f64 {
        let rows = self.rows.max(newer.rows);
        if rows == 0 {
            return 0.0;
        }
        let bins = self.degree_hist.len().max(newer.degree_hist.len());
        let mut l1 = 0usize;
        for i in 0..bins {
            let a = self.degree_hist.get(i).copied().unwrap_or(0);
            let b = newer.degree_hist.get(i).copied().unwrap_or(0);
            l1 += a.abs_diff(b);
        }
        l1 as f64 / rows as f64
    }
}

/// A structural fingerprint paired with a monotonic version: the identity
/// a dynamic adjacency carries through a stream of [`crate::delta::GraphDelta`]
/// updates. The `structural` part is cache-key material (tune/kernel
/// decisions transfer between equal structures); `version` orders the
/// mutation history so stale-while-retune serving can tell which decision
/// generation it is answering from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionedFingerprint {
    /// The structural summary of the current matrix content.
    pub structural: SparsityFingerprint,
    /// Monotonic mutation counter: 0 at construction, +1 per applied delta.
    pub version: u64,
}

impl VersionedFingerprint {
    /// Version 0 of a matrix's fingerprint history.
    #[must_use]
    pub fn initial(a: &Csr) -> VersionedFingerprint {
        VersionedFingerprint { structural: SparsityFingerprint::of(a), version: 0 }
    }

    /// The successor fingerprint after a mutation producing `a`.
    #[must_use]
    pub fn next(&self, a: &Csr) -> VersionedFingerprint {
        VersionedFingerprint { structural: SparsityFingerprint::of(a), version: self.version + 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_degree_distributions() {
        let a = Csr::new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let b = Csr::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        assert_ne!(SparsityFingerprint::of(&a), SparsityFingerprint::of(&b));
    }

    #[test]
    fn relation_fingerprint_combines_members() {
        let a = Csr::new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let b = Csr::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let f = SparsityFingerprint::of_relations(&[a.clone(), b.clone()]);
        assert_eq!(f.nnz, a.nnz() + b.nnz());
        assert_eq!((f.rows, f.cols), (2, 2));
        // Reordering relations must not change the combined fingerprint.
        assert_eq!(f, SparsityFingerprint::of_relations(&[b, a]));
    }

    /// Regression: two relation families agreeing in their first member,
    /// total nnz and summed degree histogram — but differing in a later
    /// member's dimensions — used to collide (only `relations.first()`'s
    /// shape was encoded).
    #[test]
    fn relation_fingerprint_encodes_every_members_shape() {
        let first = Csr::new(4, 4, vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3], vec![1.0; 4]).unwrap();
        // Same rows and row-length profile (4 rows of 1 nnz), different cols.
        let wide = Csr::new(4, 8, vec![0, 1, 2, 3, 4], vec![0, 2, 4, 6], vec![1.0; 4]).unwrap();
        let narrow = Csr::new(4, 2, vec![0, 1, 2, 3, 4], vec![0, 1, 0, 1], vec![1.0; 4]).unwrap();
        let fa = SparsityFingerprint::of_relations(&[first.clone(), wide]);
        let fb = SparsityFingerprint::of_relations(&[first.clone(), narrow]);
        assert_ne!(fa, fb, "families differing only in a later relation's cols must not collide");
        // Relation count is encoded too: [A] vs [A, empty-ish B] with equal
        // totals must differ.
        let empty = Csr::new(0, 4, vec![0], vec![], vec![]).unwrap();
        let fc = SparsityFingerprint::of_relations(std::slice::from_ref(&first));
        let fd = SparsityFingerprint::of_relations(&[first, empty]);
        assert_ne!(fc, fd, "relation count must be part of the fingerprint");
    }

    #[test]
    fn drift_counts_moved_rows() {
        // 4 rows of length 1 → hist [0, 4] (bin 0 empty, bin 1? no:
        // ceil_log2(1) = 0, so hist [4]).
        let a = Csr::new(4, 4, vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3], vec![1.0; 4]).unwrap();
        let fa = SparsityFingerprint::of(&a);
        assert!(fa.drift(&fa).abs() < f64::EPSILON);
        // Move one row from 1 nnz to 2 nnz: one row changes bin → L1 = 2,
        // normalized by 4 rows = 0.5.
        let b = Csr::new(4, 4, vec![0, 2, 3, 4, 5], vec![0, 1, 1, 2, 3], vec![1.0; 5]).unwrap();
        let fb = SparsityFingerprint::of(&b);
        assert!((fa.drift(&fb) - 0.5).abs() < 1e-12);
        assert!((fb.drift(&fa) - 0.5).abs() < 1e-12, "drift is symmetric");
    }

    #[test]
    fn versioned_fingerprint_is_monotonic() {
        let a = Csr::new(1, 1, vec![0, 1], vec![0], vec![1.0]).unwrap();
        let v0 = VersionedFingerprint::initial(&a);
        assert_eq!(v0.version, 0);
        let v1 = v0.next(&a);
        assert_eq!(v1.version, 1);
        assert_eq!(v0.structural, v1.structural);
    }
}
