//! Random matrix generation utilities shared by tests, examples and the
//! workload generators in `sparsetir-graphs`.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::Dense;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic RNG for reproducible experiments.
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Dense matrix with entries uniform in `[-1, 1)`.
#[must_use]
pub fn random_dense(rows: usize, cols: usize, rng: &mut SmallRng) -> Dense {
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// Uniform random CSR with approximately `density × rows × cols` non-zeros
/// (exact count, sampled without replacement; values uniform in `[0.1, 1)`
/// so no sampled entry collapses to zero).
#[must_use]
pub fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut SmallRng) -> Csr {
    let total = rows.saturating_mul(cols);
    let nnz = ((total as f64 * density).round() as usize).min(total);
    let mut taken: HashSet<(u32, u32)> = HashSet::with_capacity(nnz);
    let mut coo = Coo::new(rows, cols);
    while taken.len() < nnz {
        let r = rng.gen_range(0..rows) as u32;
        let c = rng.gen_range(0..cols) as u32;
        if taken.insert((r, c)) {
            coo.push(r, c, rng.gen_range(0.1f32..1.0));
        }
    }
    Csr::from_coo(&coo)
}

/// Random CSR where each row's length is drawn by `row_len` (clamped to
/// `cols`); column positions uniform without replacement.
#[must_use]
pub fn random_csr_with_row_lengths(
    rows: usize,
    cols: usize,
    mut row_len: impl FnMut(&mut SmallRng) -> usize,
    rng: &mut SmallRng,
) -> Csr {
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        let len = row_len(rng).min(cols);
        let mut taken: HashSet<u32> = HashSet::with_capacity(len);
        while taken.len() < len {
            let c = rng.gen_range(0..cols) as u32;
            if taken.insert(c) {
                coo.push(r as u32, c, rng.gen_range(0.1f32..1.0));
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Block-sparse random matrix: choose `nnz_blocks` random `block × block`
/// blocks and fill them densely. Optionally keep a fraction of block rows
/// entirely empty (the zero-row structure motivating DBSR, §4.3.2).
#[must_use]
pub fn random_block_sparse(
    rows: usize,
    cols: usize,
    block: usize,
    block_density: f64,
    zero_block_row_fraction: f64,
    rng: &mut SmallRng,
) -> Csr {
    let brows = rows / block;
    let bcols = cols / block;
    let mut coo = Coo::new(rows, cols);
    let mut live_rows: Vec<usize> = (0..brows).collect();
    let n_zero = ((brows as f64) * zero_block_row_fraction) as usize;
    for _ in 0..n_zero {
        if live_rows.len() <= 1 {
            break;
        }
        let i = rng.gen_range(0..live_rows.len());
        live_rows.swap_remove(i);
    }
    let total_blocks = live_rows.len() * bcols;
    let target = ((brows * bcols) as f64 * block_density).round() as usize;
    let nnz_blocks = target.min(total_blocks);
    let mut taken: HashSet<(usize, usize)> = HashSet::with_capacity(nnz_blocks);
    while taken.len() < nnz_blocks {
        let br = live_rows[rng.gen_range(0..live_rows.len())];
        let bc = rng.gen_range(0..bcols);
        if taken.insert((br, bc)) {
            for ri in 0..block {
                for ci in 0..block {
                    coo.push(
                        (br * block + ri) as u32,
                        (bc * block + ci) as u32,
                        rng.gen_range(0.1f32..1.0),
                    );
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_csr_hits_density() {
        let mut r = rng(1);
        let m = random_csr(64, 64, 0.1, &mut r);
        let expected = (64.0f64 * 64.0 * 0.1).round() as usize;
        assert_eq!(m.nnz(), expected);
    }

    #[test]
    fn random_csr_is_deterministic() {
        let a = random_csr(32, 32, 0.2, &mut rng(7));
        let b = random_csr(32, 32, 0.2, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn row_length_generator_respects_lengths() {
        let mut r = rng(3);
        let m = random_csr_with_row_lengths(16, 32, |_| 4, &mut r);
        assert!(m.row_lengths().iter().all(|&l| l == 4));
    }

    #[test]
    fn block_sparse_has_blocks() {
        let mut r = rng(5);
        let m = random_block_sparse(64, 64, 8, 0.25, 0.25, &mut r);
        let bsr = crate::bsr::Bsr::from_csr(&m, 8).unwrap();
        // Every stored block is fully dense → no padding inside blocks.
        assert_eq!(bsr.stored(), m.nnz());
        assert!(bsr.zero_block_rows() >= 1);
    }
}
