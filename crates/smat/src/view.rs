//! Borrowed dense views for zero-copy batch assembly.
//!
//! A [`DenseView`] (read) or [`DenseViewMut`] (write) is a shape-checked
//! borrow of a row-major `rows × cols` buffer — either a whole [`Dense`]
//! or a caller-owned slice. The serving layer hands ordered lists of these
//! to the executor as *segmented bindings*: one kernel buffer slot backed
//! by several rider buffers side by side, so widened batch launches read
//! operands and write outputs in place instead of staging them through a
//! stacked copy.

use crate::dense::{Dense, SmatError};

/// A read-only borrowed `rows × cols` row-major matrix view.
#[derive(Debug, Clone, Copy)]
pub struct DenseView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> DenseView<'a> {
    /// Wrap a row-major slice.
    ///
    /// # Errors
    /// Fails when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Result<DenseView<'a>, SmatError> {
        if data.len() != rows * cols {
            return Err(SmatError::new(format!(
                "dense view length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(DenseView { rows, cols, data })
    }

    /// View an entire [`Dense`].
    #[must_use]
    pub fn of(d: &'a Dense) -> DenseView<'a> {
        DenseView { rows: d.rows(), cols: d.cols(), data: d.data() }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    #[must_use]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }
}

/// A mutable borrowed `rows × cols` row-major matrix view.
#[derive(Debug)]
pub struct DenseViewMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f32],
}

impl<'a> DenseViewMut<'a> {
    /// Wrap a mutable row-major slice.
    ///
    /// # Errors
    /// Fails when `data.len() != rows * cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        data: &'a mut [f32],
    ) -> Result<DenseViewMut<'a>, SmatError> {
        if data.len() != rows * cols {
            return Err(SmatError::new(format!(
                "dense view length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(DenseViewMut { rows, cols, data })
    }

    /// Mutably view an entire [`Dense`].
    #[must_use]
    pub fn of(d: &'a mut Dense) -> DenseViewMut<'a> {
        let (rows, cols) = (d.rows(), d.cols());
        DenseViewMut { rows, cols, data: d.data_mut() }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        self.data
    }

    /// Mutable underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data
    }

    /// Consume the view, returning the borrowed slice with its
    /// original lifetime (needed to hand disjoint rider segments to a
    /// single segmented binding).
    #[must_use]
    pub fn into_slice(self) -> &'a mut [f32] {
        self.data
    }

    /// Reborrow as a read-only view.
    #[must_use]
    pub fn as_view(&self) -> DenseView<'_> {
        DenseView { rows: self.rows, cols: self.cols, data: self.data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_validates_length() {
        let buf = [0.0f32; 6];
        assert!(DenseView::new(2, 3, &buf).is_ok());
        assert!(DenseView::new(2, 4, &buf).is_err());
        let mut buf = [0.0f32; 6];
        assert!(DenseViewMut::new(3, 2, &mut buf).is_ok());
        assert!(DenseViewMut::new(1, 2, &mut buf).is_err());
    }

    #[test]
    fn view_of_dense_round_trips() {
        let mut d = Dense::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let v = DenseView::of(&d);
        assert_eq!((v.rows(), v.cols()), (2, 3));
        assert_eq!(v.data()[4], 4.0);
        let mut m = DenseViewMut::of(&mut d);
        m.data_mut()[0] = 9.0;
        assert_eq!(m.as_view().data()[0], 9.0);
        assert_eq!(d.get(0, 0), 9.0);
    }
}
