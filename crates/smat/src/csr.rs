//! Compressed Sparse Row (CSR) matrices — the default single format of the
//! paper's baselines and the source format for every decomposition.

use crate::coo::Coo;
use crate::dense::{Dense, SmatError};

/// A sparse matrix in CSR form. Column indices within each row are sorted
/// ascending (an invariant relied upon by the binary-search lowering of
/// SparseTIR's coordinate translation).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Construct from raw arrays, validating the CSR invariants.
    ///
    /// # Errors
    /// Fails when `indptr` is not monotone of length `rows + 1`, when
    /// `indices`/`values` lengths disagree with `indptr[rows]`, when a
    /// column index is out of bounds, or when a row's columns are not
    /// strictly ascending.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Csr, SmatError> {
        if indptr.len() != rows + 1 {
            return Err(SmatError::new(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr.first() != Some(&0) {
            return Err(SmatError::new("indptr[0] must be 0"));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SmatError::new("indptr must be non-decreasing"));
        }
        let nnz = *indptr.last().expect("nonempty indptr");
        if indices.len() != nnz || values.len() != nnz {
            return Err(SmatError::new(format!(
                "indices/values length ({}, {}) != nnz {nnz}",
                indices.len(),
                values.len()
            )));
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SmatError::new(format!(
                        "row {r} column indices not strictly ascending"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(SmatError::new(format!(
                        "row {r} column {last} out of bounds for {cols} columns"
                    )));
                }
            }
        }
        Ok(Csr { rows, cols, indptr, indices, values })
    }

    /// Construct from arrays whose invariants are guaranteed by the caller
    /// (the delta merge paths, which preserve per-row ordering by
    /// construction). Checked in debug builds only.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Csr {
        debug_assert!(
            Csr::new(rows, cols, indptr.clone(), indices.clone(), values.clone()).is_ok(),
            "from_parts caller violated a CSR invariant"
        );
        Csr { rows, cols, indptr, indices, values }
    }

    /// Convert from COO (coalescing duplicates).
    #[must_use]
    pub fn from_coo(coo: &Coo) -> Csr {
        let mut c = coo.clone();
        c.coalesce();
        let rows = c.rows();
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in c.entries() {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        let indices = c.entries().iter().map(|&(_, col, _)| col).collect();
        let values = c.entries().iter().map(|&(_, _, v)| v).collect();
        Csr { rows, cols: c.cols(), indptr, indices, values }
    }

    /// Convert from dense, keeping non-zero entries.
    #[must_use]
    pub fn from_dense(d: &Dense) -> Csr {
        Csr::from_coo(&Coo::from_dense(d))
    }

    /// Dense reconstruction.
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(r, c as usize, v);
            }
        }
        d
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `rows + 1`).
    #[must_use]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array (length `nnz`).
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array (length `nnz`).
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable value array (pattern is immutable).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Column indices and values of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in row `r`.
    #[must_use]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Density `nnz / (rows × cols)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Transposed copy (CSC of the original viewed as CSR).
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            indptr[i + 1] += indptr[i];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = cursor[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Reference SpMM: `Y = self × X` (paper §4.2.1).
    ///
    /// # Errors
    /// Fails when `X.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new(format!(
                "spmm shape mismatch: {}x{} × {}x{}",
                self.rows,
                self.cols,
                x.rows(),
                x.cols()
            )));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let yrow = y.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let xrow = x.row(c as usize);
                for (o, &xv) in yrow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        Ok(y)
    }

    /// Reference SDDMM: `B_ij = A_ij · (X_i · Yᵀ_j)` over this matrix's
    /// sparsity pattern (paper §4.2.2). `y` is given as `d × n` so the dot
    /// product uses its columns.
    ///
    /// # Errors
    /// Fails when the dense shapes disagree with the pattern.
    pub fn sddmm(&self, x: &Dense, y: &Dense) -> Result<Csr, SmatError> {
        if x.rows() != self.rows || y.cols() != self.cols || x.cols() != y.rows() {
            return Err(SmatError::new(format!(
                "sddmm shape mismatch: pattern {}x{}, X {}x{}, Y {}x{}",
                self.rows,
                self.cols,
                x.rows(),
                x.cols(),
                y.rows(),
                y.cols()
            )));
        }
        let d = x.cols();
        let mut out = self.clone();
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let xrow = x.row(r);
            for p in lo..hi {
                let c = self.indices[p] as usize;
                let mut dot = 0.0f32;
                for (k, xv) in xrow.iter().enumerate().take(d) {
                    dot += xv * y.get(k, c);
                }
                out.values[p] = self.values[p] * dot;
            }
        }
        Ok(out)
    }

    /// Per-row non-zero counts.
    #[must_use]
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// `(max, mean, std)` of row lengths — the degree-skew statistics that
    /// drive hyb bucketing decisions.
    #[must_use]
    pub fn degree_stats(&self) -> (usize, f64, f64) {
        if self.rows == 0 {
            return (0, 0.0, 0.0);
        }
        let lens = self.row_lengths();
        let max = lens.iter().copied().max().unwrap_or(0);
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let var = lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / lens.len() as f64;
        (max, mean, var.sqrt())
    }

    /// Histogram of row lengths over power-of-two bins: bin `i` counts the
    /// rows whose length `l` satisfies `⌈log2(l)⌉ = i` (empty rows land in
    /// bin 0). This is the degree-skew summary the tuning cache uses to
    /// fingerprint a sparsity structure.
    #[must_use]
    pub fn degree_histogram_log2(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for r in 0..self.rows {
            let bin = crate::hyb::ceil_log2(self.row_nnz(r)) as usize;
            if bin >= hist.len() {
                hist.resize(bin + 1, 0);
            }
            hist[bin] += 1;
        }
        hist
    }

    /// Split columns into `parts` contiguous partitions of equal width
    /// (the last absorbs the remainder). Column indices stay global.
    /// This is the column-partition step of `hyb(c, k)` (paper Fig. 11).
    ///
    /// Single pass over the matrix: each entry is bucketed directly into
    /// its partition (`O(nnz + rows·parts)`), rather than rescanning the
    /// full matrix once per partition — this is the decomposition hot path
    /// every hyb tuning trial pays.
    #[must_use]
    pub fn column_partition(&self, parts: usize) -> Vec<Csr> {
        let parts = parts.max(1);
        let width = self.cols.div_ceil(parts).max(1);
        let mut indptrs = vec![vec![0usize; self.rows + 1]; parts];
        let mut indices: Vec<Vec<u32>> = vec![Vec::new(); parts];
        let mut values: Vec<Vec<f32>> = vec![Vec::new(); parts];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = c as usize / width;
                indices[p].push(c);
                values[p].push(v);
            }
            for p in 0..parts {
                indptrs[p][r + 1] = indices[p].len();
            }
        }
        indptrs
            .into_iter()
            .zip(indices)
            .zip(values)
            .map(|((indptr, indices), values)| Csr {
                rows: self.rows,
                cols: self.cols,
                indptr,
                indices,
                values,
            })
            .collect()
    }

    /// Extract the sub-matrix of the given rows (keeping all columns); used
    /// by bucketing. Returns parallel `(csr, original_row_ids)`.
    #[must_use]
    pub fn select_rows(&self, rows: &[u32]) -> Csr {
        let mut indptr = vec![0usize; rows.len() + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &r) in rows.iter().enumerate() {
            let (cols, vals) = self.row(r as usize);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            indptr[i + 1] = indices.len();
        }
        Csr { rows: rows.len(), cols: self.cols, indptr, indices, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_indptr() {
        assert!(Csr::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::new(2, 2, vec![1, 1, 1], vec![], vec![]).is_err());
        assert!(Csr::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn validation_rejects_unsorted_columns() {
        assert!(Csr::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        assert!(Csr::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn validation_rejects_oob_column() {
        assert!(Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        assert_eq!(Csr::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn coo_conversion_coalesces() {
        let coo = Coo::from_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]).unwrap();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense().get(0, 0), 3.0);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let x = Dense::from_fn(3, 4, |r, c| (r + c) as f32);
        let y = m.spmm(&x).unwrap();
        let expected = m.to_dense().matmul(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn sddmm_matches_definition() {
        let m = sample();
        let d = 5;
        let x = Dense::from_fn(3, d, |r, c| (r * d + c) as f32 * 0.1);
        let y = Dense::from_fn(d, 3, |r, c| (r + 2 * c) as f32 * 0.2);
        let out = m.sddmm(&x, &y).unwrap();
        let xy = x.matmul(&y).unwrap();
        for r in 0..3 {
            let (cols, vals) = out.row(r);
            let (_, avals) = m.row(r);
            for ((&c, &v), &a) in cols.iter().zip(vals).zip(avals) {
                let expected = a * xy.get(r, c as usize);
                assert!((v - expected).abs() < 1e-4, "at ({r},{c}): {v} vs {expected}");
            }
        }
    }

    #[test]
    fn column_partition_preserves_content() {
        let m = sample();
        let parts = m.column_partition(2);
        assert_eq!(parts.len(), 2);
        let merged =
            parts.iter().fold(Dense::zeros(3, 3), |acc, p| acc.add(&p.to_dense()).unwrap());
        assert_eq!(merged, m.to_dense());
    }

    #[test]
    fn column_partition_buckets_by_range() {
        let m = Csr::new(2, 5, vec![0, 3, 5], vec![0, 2, 4, 1, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        // width = ⌈5/3⌉ = 2: ranges [0,2), [2,4), [4,…).
        let parts = m.column_partition(3);
        assert_eq!(parts[0].indices(), &[0, 1]);
        assert_eq!(parts[1].indices(), &[2, 3]);
        assert_eq!(parts[2].indices(), &[4]);
        assert_eq!(parts[0].row(0).0, &[0]);
        assert_eq!(parts[0].row(1).0, &[1]);
        assert_eq!(parts[2].row(1).0, &[] as &[u32]);
    }

    #[test]
    fn degree_histogram_log2_counts_rows() {
        // Row lengths 2, 0, 2 → bins {1: two rows, 0: one empty row}.
        let m = sample();
        assert_eq!(m.degree_histogram_log2(), vec![1, 2]);
    }

    #[test]
    fn degree_stats() {
        let m = sample();
        let (max, mean, _std) = m.degree_stats();
        assert_eq!(max, 2);
        assert!((mean - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn select_rows_gathers() {
        let m = sample();
        let sub = m.select_rows(&[2, 0]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0).0, &[0, 1]);
        assert_eq!(sub.row(1).0, &[0, 2]);
    }
}
