//! The paper's parameterized composable format `hyb(c, k)` (§4.2.1,
//! Figure 11): columns are split into `c` partitions; within each partition,
//! rows are bucketed by power-of-two length into ELL sub-matrices, giving
//! compile-time load balancing. Rows longer than `2^k` are split into
//! multiple ELL rows of width `2^k` mapped to the same output row.

use crate::csr::Csr;
use crate::delta::GraphDelta;
use crate::dense::{Dense, SmatError};
use std::collections::{HashMap, HashSet};

/// One ELL bucket of a column partition: `row_ids.len()` rows of fixed
/// `width`, each mapping back to an original matrix row (possibly shared by
/// several bucket rows when a long row was split).
#[derive(Debug, Clone, PartialEq)]
pub struct EllBucket {
    /// Fixed non-zeros per bucket row (`2^i`).
    pub width: usize,
    /// Original row id per bucket row.
    pub row_ids: Vec<u32>,
    /// Column indices, `row_ids.len() × width`, padded entries repeat a
    /// valid column.
    pub col_indices: Vec<u32>,
    /// Values, `row_ids.len() × width`, padded entries are `0`.
    pub values: Vec<f32>,
    /// Real (non-padding) entries across all bucket rows. Tracked
    /// structurally at construction time: a stored value of `0.0` may be an
    /// explicitly-stored zero of the source matrix, so padding cannot be
    /// recovered by inspecting `values`.
    pub real: usize,
}

impl EllBucket {
    /// Number of bucket rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row_ids.len()
    }

    /// True when the bucket holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Stored entries (including padding).
    #[must_use]
    pub fn stored(&self) -> usize {
        self.row_ids.len() * self.width
    }

    /// Padded entries (`stored − real`), counted structurally so that
    /// explicitly-stored zero values are not misattributed to padding and
    /// the per-bucket sum always agrees with [`Hyb::padding_ratio`].
    #[must_use]
    pub fn padding(&self) -> usize {
        self.stored() - self.real
    }
}

/// One column partition with its per-width buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HybPartition {
    /// First column (inclusive) covered by this partition.
    pub col_lo: u32,
    /// Last column (exclusive).
    pub col_hi: u32,
    /// Buckets indexed by exponent: `buckets[i]` has width `2^i`.
    pub buckets: Vec<EllBucket>,
}

/// The `hyb(c, k)` decomposition of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyb {
    rows: usize,
    cols: usize,
    col_parts: usize,
    bucket_k: u32,
    partitions: Vec<HybPartition>,
    original_nnz: usize,
}

impl Hyb {
    /// Decompose `csr` into `hyb(c, k)`.
    ///
    /// # Errors
    /// Fails when `c == 0`.
    pub fn from_csr(csr: &Csr, c: usize, k: u32) -> Result<Hyb, SmatError> {
        if c == 0 {
            return Err(SmatError::new("hyb: column partition count must be positive"));
        }
        let parts = csr.column_partition(c);
        let width_cols = csr.cols().div_ceil(c);
        let max_width = 1usize << k;
        let mut partitions = Vec::with_capacity(c);
        for (p, part) in parts.iter().enumerate() {
            let col_lo = (p * width_cols).min(csr.cols()) as u32;
            let col_hi = (((p + 1) * width_cols).min(csr.cols())) as u32;
            let mut buckets: Vec<EllBucket> = (0..=k)
                .map(|i| EllBucket {
                    width: 1usize << i,
                    row_ids: Vec::new(),
                    col_indices: Vec::new(),
                    values: Vec::new(),
                    real: 0,
                })
                .collect();
            for r in 0..part.rows() {
                let (cols, vals) = part.row(r);
                if cols.is_empty() {
                    continue;
                }
                // Split rows longer than 2^k into chunks of 2^k.
                let mut start = 0usize;
                while start < cols.len() {
                    let chunk = (cols.len() - start).min(max_width);
                    let ccols = &cols[start..start + chunk];
                    let cvals = &vals[start..start + chunk];
                    let bucket_idx = bucket_for(chunk, k);
                    let width = 1usize << bucket_idx;
                    let b = &mut buckets[bucket_idx as usize];
                    b.row_ids.push(r as u32);
                    b.real += chunk;
                    let pad_col = *ccols.last().expect("nonempty chunk");
                    for j in 0..width {
                        if j < chunk {
                            b.col_indices.push(ccols[j]);
                            b.values.push(cvals[j]);
                        } else {
                            b.col_indices.push(pad_col);
                            b.values.push(0.0);
                        }
                    }
                    start += chunk;
                }
            }
            partitions.push(HybPartition { col_lo, col_hi, buckets });
        }
        Ok(Hyb {
            rows: csr.rows(),
            cols: csr.cols(),
            col_parts: c,
            bucket_k: k,
            partitions,
            original_nnz: csr.nnz(),
        })
    }

    /// Decompose with the paper's default bucket count
    /// `k = ⌈log2(nnz / rows)⌉` (≥ 0).
    ///
    /// # Errors
    /// Fails when `c == 0`.
    pub fn with_default_k(csr: &Csr, c: usize) -> Result<Hyb, SmatError> {
        Hyb::from_csr(csr, c, default_k(csr))
    }

    /// Number of rows of the logical matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column partition count `c`.
    #[must_use]
    pub fn col_parts(&self) -> usize {
        self.col_parts
    }

    /// Bucket exponent `k` (max ELL width is `2^k`).
    #[must_use]
    pub fn bucket_k(&self) -> u32 {
        self.bucket_k
    }

    /// The partitions with their buckets.
    #[must_use]
    pub fn partitions(&self) -> &[HybPartition] {
        &self.partitions
    }

    /// Original (pre-padding) non-zero count.
    #[must_use]
    pub fn original_nnz(&self) -> usize {
        self.original_nnz
    }

    /// Total stored entries including padding.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.partitions.iter().flat_map(|p| &p.buckets).map(EllBucket::stored).sum()
    }

    /// Padding ratio `(stored − nnz) / stored` — the `%padding` column of
    /// Tables 1 and 2.
    #[must_use]
    pub fn padding_ratio(&self) -> f64 {
        let stored = self.stored();
        if stored == 0 {
            return 0.0;
        }
        (stored - self.original_nnz) as f64 / stored as f64
    }

    /// Dense reconstruction (sums split rows back together).
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for part in &self.partitions {
            for b in &part.buckets {
                for (i, &r) in b.row_ids.iter().enumerate() {
                    for j in 0..b.width {
                        let v = b.values[i * b.width + j];
                        if v != 0.0 {
                            let c = b.col_indices[i * b.width + j] as usize;
                            let cur = d.get(r as usize, c);
                            d.set(r as usize, c, cur + v);
                        }
                    }
                }
            }
        }
        d
    }

    /// Reference SpMM over the decomposed storage (accumulating across
    /// partitions, buckets and split rows).
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("hyb spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for part in &self.partitions {
            for b in &part.buckets {
                for (i, &r) in b.row_ids.iter().enumerate() {
                    for j in 0..b.width {
                        let v = b.values[i * b.width + j];
                        if v == 0.0 {
                            continue;
                        }
                        let c = b.col_indices[i * b.width + j] as usize;
                        let xrow = x.row(c);
                        let yrow = y.row_mut(r as usize);
                        for (o, &xv) in yrow.iter_mut().zip(xrow) {
                            *o += v * xv;
                        }
                    }
                }
            }
        }
        Ok(y)
    }

    /// Apply a batch of edge updates in place. `before` is the CSR this
    /// decomposition was built from (or last updated to) and `after` is
    /// `before.apply_delta(delta)`; only the delta's touched rows are
    /// visited. A row's storage in a partition is rewritten **in place**
    /// when its chunk-length sequence is unchanged — i.e. no chunk crossed
    /// a power-of-two bucket boundary — and removed + re-bucketed only when
    /// it did. The result canonicalizes identically to
    /// `Hyb::from_csr(after, c, k)` (see [`Hyb::canonicalize`]).
    ///
    /// # Errors
    /// Fails when the shapes of `before`/`after` disagree with this
    /// decomposition, or when `before`'s non-zero count is not the one this
    /// decomposition stores (a sign the caller passed the wrong snapshot).
    pub fn apply_delta(
        &mut self,
        before: &Csr,
        after: &Csr,
        delta: &GraphDelta,
    ) -> Result<HybDeltaReport, SmatError> {
        if before.rows() != self.rows
            || before.cols() != self.cols
            || after.rows() != self.rows
            || after.cols() != self.cols
        {
            return Err(SmatError::new("hyb apply_delta: shape mismatch"));
        }
        if before.nnz() != self.original_nnz {
            return Err(SmatError::new(format!(
                "hyb apply_delta: `before` has {} nnz but this decomposition was built from {}",
                before.nnz(),
                self.original_nnz
            )));
        }
        let touched = delta.touched_rows();
        let k = self.bucket_k;
        let max_width = 1usize << k;
        let mut row_rebucketed: HashSet<u32> = HashSet::new();
        for part in &mut self.partitions {
            let (lo, hi) = (part.col_lo, part.col_hi);
            // Classify each touched row: unchanged chunk-length sequence →
            // in-place rewrite; otherwise remove + re-bucket.
            let mut in_place: Vec<(u32, &[u32], &[f32])> = Vec::new();
            let mut rebucket: Vec<RebucketRow<'_>> = Vec::new();
            for &r in &touched {
                let (ocols, _) = slice_range(before.row(r as usize), lo, hi);
                let (ncols, nvals) = slice_range(after.row(r as usize), lo, hi);
                let old_lens = chunk_lens(ocols.len(), max_width);
                let new_lens = chunk_lens(ncols.len(), max_width);
                if old_lens == new_lens {
                    if !ncols.is_empty() {
                        in_place.push((r, ncols, nvals));
                    }
                } else {
                    row_rebucketed.insert(r);
                    rebucket.push((r, old_lens, ncols, nvals));
                }
            }
            // Remove every chunk of the re-bucketed rows, one compaction
            // pass per bucket.
            if !rebucket.is_empty() {
                let doomed: HashSet<u32> = rebucket.iter().map(|&(r, ..)| r).collect();
                let mut real_loss = vec![0usize; part.buckets.len()];
                for (_, old_lens, ..) in &rebucket {
                    for &len in old_lens {
                        real_loss[bucket_for(len, k) as usize] += len;
                    }
                }
                for (b, bucket) in part.buckets.iter_mut().enumerate() {
                    if real_loss[b] == 0 && !bucket.row_ids.iter().any(|r| doomed.contains(r)) {
                        continue;
                    }
                    let width = bucket.width;
                    let mut keep = 0usize;
                    for i in 0..bucket.row_ids.len() {
                        if doomed.contains(&bucket.row_ids[i]) {
                            continue;
                        }
                        if keep != i {
                            bucket.row_ids[keep] = bucket.row_ids[i];
                            bucket
                                .col_indices
                                .copy_within(i * width..(i + 1) * width, keep * width);
                            bucket.values.copy_within(i * width..(i + 1) * width, keep * width);
                        }
                        keep += 1;
                    }
                    bucket.row_ids.truncate(keep);
                    bucket.col_indices.truncate(keep * width);
                    bucket.values.truncate(keep * width);
                    bucket.real -= real_loss[b];
                }
            }
            // In-place rewrites: locate each surviving slot of the row in
            // the chunk's bucket (slot order within a bucket is arbitrary —
            // every slot is fully rewritten, so assignment among equal-
            // bucket slots cannot change the canonical form).
            if !in_place.is_empty() {
                let wanted: HashSet<u32> = in_place.iter().map(|&(r, ..)| r).collect();
                let mut slots: HashMap<(u32, usize), Vec<usize>> = HashMap::new();
                for (b, bucket) in part.buckets.iter().enumerate() {
                    for (i, &r) in bucket.row_ids.iter().enumerate() {
                        if wanted.contains(&r) {
                            slots.entry((r, b)).or_default().push(i);
                        }
                    }
                }
                for &(r, ncols, nvals) in &in_place {
                    let mut start = 0usize;
                    while start < ncols.len() {
                        let chunk = (ncols.len() - start).min(max_width);
                        let b = bucket_for(chunk, k) as usize;
                        let pos = slots
                            .get_mut(&(r, b))
                            .and_then(Vec::pop)
                            .expect("chunk-length sequences matched, so a slot exists");
                        write_chunk(
                            &mut part.buckets[b],
                            pos,
                            &ncols[start..start + chunk],
                            &nvals[start..start + chunk],
                        );
                        start += chunk;
                    }
                }
            }
            // Append the re-bucketed rows' new chunks (the same assignment
            // loop `from_csr` runs).
            for &(r, _, ncols, nvals) in &rebucket {
                let mut start = 0usize;
                while start < ncols.len() {
                    let chunk = (ncols.len() - start).min(max_width);
                    push_chunk(
                        &mut part.buckets[bucket_for(chunk, k) as usize],
                        r,
                        &ncols[start..start + chunk],
                        &nvals[start..start + chunk],
                    );
                    start += chunk;
                }
            }
        }
        self.original_nnz = after.nnz();
        let rows_rebucketed = row_rebucketed.len();
        Ok(HybDeltaReport { rows_in_place: touched.len() - rows_rebucketed, rows_rebucketed })
    }

    /// Sort every bucket's rows by `(row id, first column)` — a total order
    /// (chunks of one row within a partition cover disjoint ascending
    /// column ranges). `from_csr` output is already canonical; after
    /// [`Hyb::apply_delta`] this restores the constructor's order, so
    /// `incremental.canonicalize() == from_scratch.canonicalize()` is an
    /// exact structural equality, not an approximate one.
    pub fn canonicalize(&mut self) -> &mut Hyb {
        for part in &mut self.partitions {
            for bucket in &mut part.buckets {
                let width = bucket.width;
                let n = bucket.row_ids.len();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (bucket.row_ids[i], bucket.col_indices[i * width]));
                if order.iter().enumerate().all(|(i, &o)| i == o) {
                    continue;
                }
                let mut row_ids = Vec::with_capacity(n);
                let mut col_indices = Vec::with_capacity(n * width);
                let mut values = Vec::with_capacity(n * width);
                for &i in &order {
                    row_ids.push(bucket.row_ids[i]);
                    col_indices.extend_from_slice(&bucket.col_indices[i * width..(i + 1) * width]);
                    values.extend_from_slice(&bucket.values[i * width..(i + 1) * width]);
                }
                bucket.row_ids = row_ids;
                bucket.col_indices = col_indices;
                bucket.values = values;
            }
        }
        self
    }
}

/// `(row, old chunk lengths, new cols, new vals)` of a touched row whose
/// chunk-length sequence changed — it must be removed and re-bucketed.
type RebucketRow<'a> = (u32, Vec<usize>, &'a [u32], &'a [f32]);

/// Outcome of one [`Hyb::apply_delta`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybDeltaReport {
    /// Touched rows whose storage was rewritten in place (no chunk crossed
    /// a bucket boundary in any partition).
    pub rows_in_place: usize,
    /// Touched rows that were removed and re-bucketed in at least one
    /// partition.
    pub rows_rebucketed: usize,
}

/// The subslice of a sorted CSR row covering columns `[lo, hi)`.
fn slice_range<'a>(row: (&'a [u32], &'a [f32]), lo: u32, hi: u32) -> (&'a [u32], &'a [f32]) {
    let (cols, vals) = row;
    let a = cols.partition_point(|&c| c < lo);
    let b = cols.partition_point(|&c| c < hi);
    (&cols[a..b], &vals[a..b])
}

/// Greedy chunk lengths of a row of `len` entries under max chunk `max_width`.
fn chunk_lens(mut len: usize, max_width: usize) -> Vec<usize> {
    let mut lens = Vec::new();
    while len > 0 {
        let chunk = len.min(max_width);
        lens.push(chunk);
        len -= chunk;
    }
    lens
}

/// Overwrite slot `pos` of `bucket` with a chunk (padding exactly as
/// `from_csr` does: the last real column repeated, value `0.0`). The chunk
/// length must match the slot's previous real length, so `real` is
/// unchanged.
fn write_chunk(bucket: &mut EllBucket, pos: usize, cols: &[u32], vals: &[f32]) {
    let width = bucket.width;
    let pad_col = *cols.last().expect("nonempty chunk");
    for j in 0..width {
        let (c, v) = if j < cols.len() { (cols[j], vals[j]) } else { (pad_col, 0.0) };
        bucket.col_indices[pos * width + j] = c;
        bucket.values[pos * width + j] = v;
    }
}

/// Append a chunk of row `r` to `bucket` (the `from_csr` assignment step).
fn push_chunk(bucket: &mut EllBucket, r: u32, cols: &[u32], vals: &[f32]) {
    let width = bucket.width;
    bucket.row_ids.push(r);
    bucket.real += cols.len();
    let pad_col = *cols.last().expect("nonempty chunk");
    for j in 0..width {
        if j < cols.len() {
            bucket.col_indices.push(cols[j]);
            bucket.values.push(vals[j]);
        } else {
            bucket.col_indices.push(pad_col);
            bucket.values.push(0.0);
        }
    }
}

/// Exact `⌈log2(n)⌉` for positive `n` (0 for `n ≤ 1`), computed with bit
/// arithmetic. Unlike `(n as f64).log2().ceil()`, this cannot misround near
/// power-of-two boundaries once `n` exceeds the 53-bit mantissa of `f64`.
#[must_use]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Bucket exponent for a row chunk of length `len` (`2^{i-1} < len ≤ 2^i`),
/// clamped to `k`.
#[must_use]
pub fn bucket_for(len: usize, k: u32) -> u32 {
    debug_assert!(len > 0);
    ceil_log2(len).min(k)
}

/// The paper's default `k = ⌈log2(nnz / rows)⌉`, at least 0. The real
/// quotient never materializes: `2^k ≥ nnz/rows ⇔ 2^k ≥ ⌈nnz/rows⌉` for
/// integer `2^k`, so the exact answer is `⌈log2(⌈nnz/rows⌉)⌉`.
#[must_use]
pub fn default_k(csr: &Csr) -> u32 {
    if csr.rows() == 0 || csr.nnz() == 0 {
        return 0;
    }
    ceil_log2(csr.nnz().div_ceil(csr.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn skewed() -> Csr {
        // Row 0: 9 nnz (long), row 1: 1 nnz, row 2: 3 nnz, row 3: empty.
        let mut coo = Coo::new(4, 16);
        for c in 0..9 {
            coo.push(0, c, (c + 1) as f32);
        }
        coo.push(1, 15, 1.0);
        for c in [2u32, 7, 11] {
            coo.push(2, c, 0.5);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn ceil_log2_exact_at_large_boundaries() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1usize << 40), 40);
        assert_eq!(ceil_log2((1usize << 40) + 1), 41);
        // Beyond f64's 53-bit mantissa the float path misrounds near
        // power-of-two boundaries; the bit-arithmetic path stays exact.
        assert_eq!(ceil_log2((1usize << 53) + 1), 54);
    }

    #[test]
    fn padding_is_structural_not_value_based() {
        // Row 0 stores an explicit zero: structurally a real entry, not
        // padding. Row 0 (3 nnz) pads to width 4 → 1 padded slot; row 1
        // (1 nnz) fills bucket 0 exactly.
        let csr =
            Csr::new(2, 4, vec![0, 3, 4], vec![0, 1, 2, 0], vec![1.0, 0.0, 2.0, 3.0]).unwrap();
        let hyb = Hyb::from_csr(&csr, 1, 2).unwrap();
        let pad: usize =
            hyb.partitions().iter().flat_map(|p| &p.buckets).map(EllBucket::padding).sum();
        assert_eq!(pad, 1);
        assert_eq!(pad, hyb.stored() - hyb.original_nnz());
    }

    #[test]
    fn bucket_for_boundaries() {
        assert_eq!(bucket_for(1, 4), 0);
        assert_eq!(bucket_for(2, 4), 1);
        assert_eq!(bucket_for(3, 4), 2);
        assert_eq!(bucket_for(4, 4), 2);
        assert_eq!(bucket_for(5, 4), 3);
        assert_eq!(bucket_for(100, 3), 3); // clamped
    }

    #[test]
    fn roundtrip_single_partition() {
        let csr = skewed();
        let hyb = Hyb::from_csr(&csr, 1, 3).unwrap();
        assert_eq!(hyb.to_dense(), csr.to_dense());
    }

    #[test]
    fn roundtrip_multi_partition() {
        let csr = skewed();
        for c in [2usize, 4] {
            let hyb = Hyb::from_csr(&csr, c, 2).unwrap();
            assert_eq!(hyb.to_dense(), csr.to_dense(), "c={c}");
        }
    }

    #[test]
    fn long_rows_are_split() {
        let csr = skewed();
        // k=1 → max width 2; the 9-nnz row becomes ceil(9/2)=5 bucket rows.
        let hyb = Hyb::from_csr(&csr, 1, 1).unwrap();
        let bucket1 = &hyb.partitions()[0].buckets[1];
        let count_row0 = bucket1.row_ids.iter().filter(|&&r| r == 0).count();
        assert!(count_row0 >= 4, "long row should split, got {count_row0}");
        assert_eq!(hyb.to_dense(), csr.to_dense());
    }

    #[test]
    fn spmm_matches_csr() {
        let csr = skewed();
        let x = Dense::from_fn(16, 4, |r, c| ((r * 4 + c) % 7) as f32 * 0.25);
        let expected = csr.spmm(&x).unwrap();
        for (c, k) in [(1usize, 3u32), (2, 2), (4, 1)] {
            let hyb = Hyb::from_csr(&csr, c, k).unwrap();
            assert!(hyb.spmm(&x).unwrap().approx_eq(&expected, 1e-5), "hyb({c},{k}) spmm mismatch");
        }
    }

    #[test]
    fn padding_ratio_counts_padded_zeros() {
        let csr = skewed();
        let hyb = Hyb::from_csr(&csr, 1, 3).unwrap();
        assert!(hyb.stored() >= csr.nnz());
        let ratio = hyb.padding_ratio();
        assert!((0.0..1.0).contains(&ratio));
        // Row 0 (9 nnz) splits into 8+1: the 1-chunk goes to bucket 0 (no
        // padding); row 2 (3 nnz) pads to 4.
        assert_eq!(hyb.stored() - csr.nnz(), 1);
    }

    #[test]
    fn default_k_matches_formula() {
        let csr = skewed();
        // nnz=13, rows=4 → avg=3.25 → ceil(log2)=2.
        assert_eq!(default_k(&csr), 2);
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Hyb::from_csr(&skewed(), 0, 2).is_err());
    }

    #[test]
    fn apply_delta_in_place_when_no_boundary_crossed() {
        let before = skewed();
        let mut hyb = Hyb::from_csr(&before, 2, 2).unwrap();
        // Row 2 has cols {2, 7, 11}: replace col 7 with col 6 — same
        // partition (width ⌈16/2⌉ = 8 → partition 0 is cols [0,8)), same
        // chunk length, so no re-bucketing anywhere.
        let mut d = GraphDelta::new();
        d.delete(2, 7).upsert(2, 6, 9.0);
        let after = before.apply_delta(&d).unwrap();
        let report = hyb.apply_delta(&before, &after, &d).unwrap();
        assert_eq!(report, HybDeltaReport { rows_in_place: 1, rows_rebucketed: 0 });
        let mut rebuilt = Hyb::from_csr(&after, 2, 2).unwrap();
        assert_eq!(hyb.canonicalize(), rebuilt.canonicalize());
    }

    #[test]
    fn apply_delta_rebuckets_on_boundary_cross() {
        let before = skewed();
        let mut hyb = Hyb::from_csr(&before, 1, 2).unwrap();
        // Row 1 has 1 nnz (bucket 0); inserting a second pushes it across
        // the width-1/width-2 boundary.
        let mut d = GraphDelta::new();
        d.upsert(1, 3, 2.0);
        let after = before.apply_delta(&d).unwrap();
        let report = hyb.apply_delta(&before, &after, &d).unwrap();
        assert_eq!(report, HybDeltaReport { rows_in_place: 0, rows_rebucketed: 1 });
        let mut rebuilt = Hyb::from_csr(&after, 1, 2).unwrap();
        assert_eq!(hyb.canonicalize(), rebuilt.canonicalize());
        assert_eq!(hyb.original_nnz(), after.nnz());
    }

    #[test]
    fn apply_delta_handles_emptied_and_filled_rows() {
        let before = skewed();
        let mut hyb = Hyb::from_csr(&before, 2, 1).unwrap();
        let mut d = GraphDelta::new();
        d.delete(1, 15); // row 1 becomes empty
        d.upsert(3, 4, 1.5).upsert(3, 9, 2.5); // empty row 3 gains entries
        let after = before.apply_delta(&d).unwrap();
        hyb.apply_delta(&before, &after, &d).unwrap();
        let mut rebuilt = Hyb::from_csr(&after, 2, 1).unwrap();
        assert_eq!(hyb.canonicalize(), rebuilt.canonicalize());
        assert_eq!(hyb.to_dense(), after.to_dense());
    }

    #[test]
    fn apply_delta_rejects_stale_snapshot() {
        let before = skewed();
        let mut hyb = Hyb::from_csr(&before, 1, 2).unwrap();
        let mut d = GraphDelta::new();
        d.upsert(0, 14, 1.0);
        let after = before.apply_delta(&d).unwrap();
        // Passing `after` as the before-snapshot must be caught.
        assert!(hyb.apply_delta(&after, &after, &d).is_err());
        assert!(hyb.apply_delta(&before, &after, &d).is_ok());
    }
}
