//! The paper's parameterized composable format `hyb(c, k)` (§4.2.1,
//! Figure 11): columns are split into `c` partitions; within each partition,
//! rows are bucketed by power-of-two length into ELL sub-matrices, giving
//! compile-time load balancing. Rows longer than `2^k` are split into
//! multiple ELL rows of width `2^k` mapped to the same output row.

use crate::csr::Csr;
use crate::dense::{Dense, SmatError};

/// One ELL bucket of a column partition: `row_ids.len()` rows of fixed
/// `width`, each mapping back to an original matrix row (possibly shared by
/// several bucket rows when a long row was split).
#[derive(Debug, Clone, PartialEq)]
pub struct EllBucket {
    /// Fixed non-zeros per bucket row (`2^i`).
    pub width: usize,
    /// Original row id per bucket row.
    pub row_ids: Vec<u32>,
    /// Column indices, `row_ids.len() × width`, padded entries repeat a
    /// valid column.
    pub col_indices: Vec<u32>,
    /// Values, `row_ids.len() × width`, padded entries are `0`.
    pub values: Vec<f32>,
    /// Real (non-padding) entries across all bucket rows. Tracked
    /// structurally at construction time: a stored value of `0.0` may be an
    /// explicitly-stored zero of the source matrix, so padding cannot be
    /// recovered by inspecting `values`.
    pub real: usize,
}

impl EllBucket {
    /// Number of bucket rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row_ids.len()
    }

    /// True when the bucket holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Stored entries (including padding).
    #[must_use]
    pub fn stored(&self) -> usize {
        self.row_ids.len() * self.width
    }

    /// Padded entries (`stored − real`), counted structurally so that
    /// explicitly-stored zero values are not misattributed to padding and
    /// the per-bucket sum always agrees with [`Hyb::padding_ratio`].
    #[must_use]
    pub fn padding(&self) -> usize {
        self.stored() - self.real
    }
}

/// One column partition with its per-width buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HybPartition {
    /// First column (inclusive) covered by this partition.
    pub col_lo: u32,
    /// Last column (exclusive).
    pub col_hi: u32,
    /// Buckets indexed by exponent: `buckets[i]` has width `2^i`.
    pub buckets: Vec<EllBucket>,
}

/// The `hyb(c, k)` decomposition of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyb {
    rows: usize,
    cols: usize,
    col_parts: usize,
    bucket_k: u32,
    partitions: Vec<HybPartition>,
    original_nnz: usize,
}

impl Hyb {
    /// Decompose `csr` into `hyb(c, k)`.
    ///
    /// # Errors
    /// Fails when `c == 0`.
    pub fn from_csr(csr: &Csr, c: usize, k: u32) -> Result<Hyb, SmatError> {
        if c == 0 {
            return Err(SmatError::new("hyb: column partition count must be positive"));
        }
        let parts = csr.column_partition(c);
        let width_cols = csr.cols().div_ceil(c);
        let max_width = 1usize << k;
        let mut partitions = Vec::with_capacity(c);
        for (p, part) in parts.iter().enumerate() {
            let col_lo = (p * width_cols).min(csr.cols()) as u32;
            let col_hi = (((p + 1) * width_cols).min(csr.cols())) as u32;
            let mut buckets: Vec<EllBucket> = (0..=k)
                .map(|i| EllBucket {
                    width: 1usize << i,
                    row_ids: Vec::new(),
                    col_indices: Vec::new(),
                    values: Vec::new(),
                    real: 0,
                })
                .collect();
            for r in 0..part.rows() {
                let (cols, vals) = part.row(r);
                if cols.is_empty() {
                    continue;
                }
                // Split rows longer than 2^k into chunks of 2^k.
                let mut start = 0usize;
                while start < cols.len() {
                    let chunk = (cols.len() - start).min(max_width);
                    let ccols = &cols[start..start + chunk];
                    let cvals = &vals[start..start + chunk];
                    let bucket_idx = bucket_for(chunk, k);
                    let width = 1usize << bucket_idx;
                    let b = &mut buckets[bucket_idx as usize];
                    b.row_ids.push(r as u32);
                    b.real += chunk;
                    let pad_col = *ccols.last().expect("nonempty chunk");
                    for j in 0..width {
                        if j < chunk {
                            b.col_indices.push(ccols[j]);
                            b.values.push(cvals[j]);
                        } else {
                            b.col_indices.push(pad_col);
                            b.values.push(0.0);
                        }
                    }
                    start += chunk;
                }
            }
            partitions.push(HybPartition { col_lo, col_hi, buckets });
        }
        Ok(Hyb {
            rows: csr.rows(),
            cols: csr.cols(),
            col_parts: c,
            bucket_k: k,
            partitions,
            original_nnz: csr.nnz(),
        })
    }

    /// Decompose with the paper's default bucket count
    /// `k = ⌈log2(nnz / rows)⌉` (≥ 0).
    ///
    /// # Errors
    /// Fails when `c == 0`.
    pub fn with_default_k(csr: &Csr, c: usize) -> Result<Hyb, SmatError> {
        Hyb::from_csr(csr, c, default_k(csr))
    }

    /// Number of rows of the logical matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column partition count `c`.
    #[must_use]
    pub fn col_parts(&self) -> usize {
        self.col_parts
    }

    /// Bucket exponent `k` (max ELL width is `2^k`).
    #[must_use]
    pub fn bucket_k(&self) -> u32 {
        self.bucket_k
    }

    /// The partitions with their buckets.
    #[must_use]
    pub fn partitions(&self) -> &[HybPartition] {
        &self.partitions
    }

    /// Original (pre-padding) non-zero count.
    #[must_use]
    pub fn original_nnz(&self) -> usize {
        self.original_nnz
    }

    /// Total stored entries including padding.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.partitions.iter().flat_map(|p| &p.buckets).map(EllBucket::stored).sum()
    }

    /// Padding ratio `(stored − nnz) / stored` — the `%padding` column of
    /// Tables 1 and 2.
    #[must_use]
    pub fn padding_ratio(&self) -> f64 {
        let stored = self.stored();
        if stored == 0 {
            return 0.0;
        }
        (stored - self.original_nnz) as f64 / stored as f64
    }

    /// Dense reconstruction (sums split rows back together).
    #[must_use]
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for part in &self.partitions {
            for b in &part.buckets {
                for (i, &r) in b.row_ids.iter().enumerate() {
                    for j in 0..b.width {
                        let v = b.values[i * b.width + j];
                        if v != 0.0 {
                            let c = b.col_indices[i * b.width + j] as usize;
                            let cur = d.get(r as usize, c);
                            d.set(r as usize, c, cur + v);
                        }
                    }
                }
            }
        }
        d
    }

    /// Reference SpMM over the decomposed storage (accumulating across
    /// partitions, buckets and split rows).
    ///
    /// # Errors
    /// Fails when `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Dense) -> Result<Dense, SmatError> {
        if x.rows() != self.cols {
            return Err(SmatError::new("hyb spmm shape mismatch"));
        }
        let mut y = Dense::zeros(self.rows, x.cols());
        for part in &self.partitions {
            for b in &part.buckets {
                for (i, &r) in b.row_ids.iter().enumerate() {
                    for j in 0..b.width {
                        let v = b.values[i * b.width + j];
                        if v == 0.0 {
                            continue;
                        }
                        let c = b.col_indices[i * b.width + j] as usize;
                        let xrow = x.row(c);
                        let yrow = y.row_mut(r as usize);
                        for (o, &xv) in yrow.iter_mut().zip(xrow) {
                            *o += v * xv;
                        }
                    }
                }
            }
        }
        Ok(y)
    }
}

/// Exact `⌈log2(n)⌉` for positive `n` (0 for `n ≤ 1`), computed with bit
/// arithmetic. Unlike `(n as f64).log2().ceil()`, this cannot misround near
/// power-of-two boundaries once `n` exceeds the 53-bit mantissa of `f64`.
#[must_use]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Bucket exponent for a row chunk of length `len` (`2^{i-1} < len ≤ 2^i`),
/// clamped to `k`.
#[must_use]
pub fn bucket_for(len: usize, k: u32) -> u32 {
    debug_assert!(len > 0);
    ceil_log2(len).min(k)
}

/// The paper's default `k = ⌈log2(nnz / rows)⌉`, at least 0. The real
/// quotient never materializes: `2^k ≥ nnz/rows ⇔ 2^k ≥ ⌈nnz/rows⌉` for
/// integer `2^k`, so the exact answer is `⌈log2(⌈nnz/rows⌉)⌉`.
#[must_use]
pub fn default_k(csr: &Csr) -> u32 {
    if csr.rows() == 0 || csr.nnz() == 0 {
        return 0;
    }
    ceil_log2(csr.nnz().div_ceil(csr.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn skewed() -> Csr {
        // Row 0: 9 nnz (long), row 1: 1 nnz, row 2: 3 nnz, row 3: empty.
        let mut coo = Coo::new(4, 16);
        for c in 0..9 {
            coo.push(0, c, (c + 1) as f32);
        }
        coo.push(1, 15, 1.0);
        for c in [2u32, 7, 11] {
            coo.push(2, c, 0.5);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn ceil_log2_exact_at_large_boundaries() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1usize << 40), 40);
        assert_eq!(ceil_log2((1usize << 40) + 1), 41);
        // Beyond f64's 53-bit mantissa the float path misrounds near
        // power-of-two boundaries; the bit-arithmetic path stays exact.
        assert_eq!(ceil_log2((1usize << 53) + 1), 54);
    }

    #[test]
    fn padding_is_structural_not_value_based() {
        // Row 0 stores an explicit zero: structurally a real entry, not
        // padding. Row 0 (3 nnz) pads to width 4 → 1 padded slot; row 1
        // (1 nnz) fills bucket 0 exactly.
        let csr =
            Csr::new(2, 4, vec![0, 3, 4], vec![0, 1, 2, 0], vec![1.0, 0.0, 2.0, 3.0]).unwrap();
        let hyb = Hyb::from_csr(&csr, 1, 2).unwrap();
        let pad: usize =
            hyb.partitions().iter().flat_map(|p| &p.buckets).map(EllBucket::padding).sum();
        assert_eq!(pad, 1);
        assert_eq!(pad, hyb.stored() - hyb.original_nnz());
    }

    #[test]
    fn bucket_for_boundaries() {
        assert_eq!(bucket_for(1, 4), 0);
        assert_eq!(bucket_for(2, 4), 1);
        assert_eq!(bucket_for(3, 4), 2);
        assert_eq!(bucket_for(4, 4), 2);
        assert_eq!(bucket_for(5, 4), 3);
        assert_eq!(bucket_for(100, 3), 3); // clamped
    }

    #[test]
    fn roundtrip_single_partition() {
        let csr = skewed();
        let hyb = Hyb::from_csr(&csr, 1, 3).unwrap();
        assert_eq!(hyb.to_dense(), csr.to_dense());
    }

    #[test]
    fn roundtrip_multi_partition() {
        let csr = skewed();
        for c in [2usize, 4] {
            let hyb = Hyb::from_csr(&csr, c, 2).unwrap();
            assert_eq!(hyb.to_dense(), csr.to_dense(), "c={c}");
        }
    }

    #[test]
    fn long_rows_are_split() {
        let csr = skewed();
        // k=1 → max width 2; the 9-nnz row becomes ceil(9/2)=5 bucket rows.
        let hyb = Hyb::from_csr(&csr, 1, 1).unwrap();
        let bucket1 = &hyb.partitions()[0].buckets[1];
        let count_row0 = bucket1.row_ids.iter().filter(|&&r| r == 0).count();
        assert!(count_row0 >= 4, "long row should split, got {count_row0}");
        assert_eq!(hyb.to_dense(), csr.to_dense());
    }

    #[test]
    fn spmm_matches_csr() {
        let csr = skewed();
        let x = Dense::from_fn(16, 4, |r, c| ((r * 4 + c) % 7) as f32 * 0.25);
        let expected = csr.spmm(&x).unwrap();
        for (c, k) in [(1usize, 3u32), (2, 2), (4, 1)] {
            let hyb = Hyb::from_csr(&csr, c, k).unwrap();
            assert!(hyb.spmm(&x).unwrap().approx_eq(&expected, 1e-5), "hyb({c},{k}) spmm mismatch");
        }
    }

    #[test]
    fn padding_ratio_counts_padded_zeros() {
        let csr = skewed();
        let hyb = Hyb::from_csr(&csr, 1, 3).unwrap();
        assert!(hyb.stored() >= csr.nnz());
        let ratio = hyb.padding_ratio();
        assert!((0.0..1.0).contains(&ratio));
        // Row 0 (9 nnz) splits into 8+1: the 1-chunk goes to bucket 0 (no
        // padding); row 2 (3 nnz) pads to 4.
        assert_eq!(hyb.stored() - csr.nnz(), 1);
    }

    #[test]
    fn default_k_matches_formula() {
        let csr = skewed();
        // nnz=13, rows=4 → avg=3.25 → ceil(log2)=2.
        assert_eq!(default_k(&csr), 2);
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Hyb::from_csr(&skewed(), 0, 2).is_err());
    }
}
