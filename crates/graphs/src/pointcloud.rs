//! Synthetic LiDAR-like point clouds and sparse-convolution kernel maps
//! (§4.4.2).
//!
//! Substitution (DESIGN.MD §2): the paper benchmarks MinkowskiNet layers on
//! SemanticKITTI scans. Here a scan is synthesized as a ground plane plus
//! scattered object clusters, voxelized, and turned into the per-offset
//! in→out site maps (the "kernel map") exactly as MinkowskiNet/TorchSparse
//! build them for a 3×3×3 submanifold convolution.

use rand::Rng;
use sparsetir_smat::gen;
use std::collections::HashMap;

/// A voxelized point cloud: unique integer voxel coordinates.
#[derive(Debug, Clone)]
pub struct VoxelCloud {
    /// Sorted unique voxel coordinates.
    pub voxels: Vec<(i32, i32, i32)>,
}

impl VoxelCloud {
    /// Number of active sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// True when no voxels are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Generate a synthetic outdoor scan: a ground plane patch plus
    /// `clusters` box-shaped objects, voxelized at integer resolution.
    #[must_use]
    pub fn synthetic(target_sites: usize, clusters: usize, seed: u64) -> VoxelCloud {
        let mut rng = gen::rng(seed);
        let mut set: HashMap<(i32, i32, i32), ()> = HashMap::new();
        let ground_side = ((target_sites as f64 * 0.7).sqrt() as i32).max(4);
        // Ground plane with gentle height variation.
        for x in 0..ground_side {
            for y in 0..ground_side {
                let z = ((x as f64 * 0.05).sin() * 2.0) as i32;
                set.insert((x, y, z), ());
            }
        }
        // Object clusters.
        let per_cluster = (target_sites.saturating_sub(set.len()) / clusters.max(1)).max(1);
        for _ in 0..clusters {
            let cx = rng.gen_range(0..ground_side);
            let cy = rng.gen_range(0..ground_side);
            let side = ((per_cluster as f64).cbrt() as i32).max(1);
            for dx in 0..side {
                for dy in 0..side {
                    for dz in 1..=side {
                        set.insert((cx + dx, cy + dy, dz), ());
                    }
                }
            }
        }
        let mut voxels: Vec<(i32, i32, i32)> = set.into_keys().collect();
        voxels.sort_unstable();
        VoxelCloud { voxels }
    }

    /// Build the 3×3×3 submanifold kernel maps: for each of the 27
    /// relative offsets, the `(out_site, in_site)` pairs where both
    /// voxels are active. The center offset is the identity map.
    #[must_use]
    pub fn kernel_maps(&self) -> Vec<Vec<(u32, u32)>> {
        let index: HashMap<(i32, i32, i32), u32> =
            self.voxels.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let mut maps = Vec::with_capacity(27);
        for dx in -1i32..=1 {
            for dy in -1i32..=1 {
                for dz in -1i32..=1 {
                    let mut pairs = Vec::new();
                    for (out_idx, &(x, y, z)) in self.voxels.iter().enumerate() {
                        if let Some(&in_idx) = index.get(&(x + dx, y + dy, z + dz)) {
                            pairs.push((out_idx as u32, in_idx));
                        }
                    }
                    maps.push(pairs);
                }
            }
        }
        maps
    }
}

/// MinkowskiNet channel configurations swept in Figure 23, as
/// `(C_in, C_out)` with √(C_in·C_out) ∈ {32, 64, 128, 256}.
#[must_use]
pub fn figure23_channels() -> Vec<(usize, usize)> {
    vec![(32, 32), (64, 64), (128, 128), (256, 256)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_cloud_hits_target_roughly() {
        let c = VoxelCloud::synthetic(5000, 10, 3);
        assert!(c.len() > 2500 && c.len() < 10000, "{}", c.len());
    }

    #[test]
    fn center_offset_is_identity() {
        let c = VoxelCloud::synthetic(500, 4, 5);
        let maps = c.kernel_maps();
        assert_eq!(maps.len(), 27);
        let center = &maps[13]; // (0,0,0) in -1..=1 lexicographic order
        assert_eq!(center.len(), c.len());
        assert!(center.iter().all(|&(o, i)| o == i));
    }

    #[test]
    fn neighbor_offsets_are_partial() {
        let c = VoxelCloud::synthetic(500, 4, 7);
        let maps = c.kernel_maps();
        for (k, m) in maps.iter().enumerate() {
            if k != 13 {
                assert!(m.len() < c.len(), "offset {k} should be partial");
            }
        }
        // Ground-plane continuity keeps in-plane neighbours common.
        let total: usize = maps.iter().map(Vec::len).sum();
        assert!(total > 2 * c.len(), "total pairs {total}");
    }

    #[test]
    fn deterministic_generation() {
        let a = VoxelCloud::synthetic(300, 3, 11);
        let b = VoxelCloud::synthetic(300, 3, 11);
        assert_eq!(a.voxels, b.voxels);
    }
}
