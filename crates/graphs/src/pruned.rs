//! Pruned-transformer weight generators (§4.3.2).
//!
//! Substitution (DESIGN.md §2): the paper extracts SpMM operators from two
//! HuggingFace PruneBERT checkpoints. Here the weights are generated with
//! the same *structure*: block pruning (block 32, many all-zero block rows
//! — the DBSR motivation) and movement pruning (unstructured ~94% sparse).
//! Shapes follow BERT-base: 768×768 attention projections and
//! 768×3072 / 3072×768 FFN layers; sequence length 512, batch 1 (§4.3.2).

use sparsetir_smat::csr::Csr;
use sparsetir_smat::gen;

/// BERT-base layer shapes `(out, in)` the paper's operators come from.
#[must_use]
pub fn bert_layer_shapes() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("attn.qkv", 768, 768),
        ("attn.out", 768, 768),
        ("ffn.up", 3072, 768),
        ("ffn.down", 768, 3072),
    ]
}

/// Block-pruned weight (block-sparse, block 32) at the given density, with
/// the paper's characteristic all-zero block rows (§4.3.2: "the block
/// sparse weights in the block-pruned model have many all-zero rows").
#[must_use]
pub fn block_pruned_weight(out_dim: usize, in_dim: usize, density: f64, seed: u64) -> Csr {
    let mut rng = gen::rng(seed);
    // Roughly a third of block rows end up entirely empty at high
    // sparsity, concentrating the surviving blocks in the rest.
    let zero_row_fraction = (0.5 * (1.0 - density * 4.0)).clamp(0.0, 0.45);
    gen::random_block_sparse(out_dim, in_dim, 32, density, zero_row_fraction, &mut rng)
}

/// Movement-pruned weight: unstructured sparsity at the given density.
#[must_use]
pub fn movement_pruned_weight(out_dim: usize, in_dim: usize, density: f64, seed: u64) -> Csr {
    let mut rng = gen::rng(seed);
    gen::random_csr(out_dim, in_dim, density, &mut rng)
}

/// The density sweep of Figure 17 (structured): `2⁻⁷ … 2⁻¹`.
#[must_use]
pub fn figure17_densities() -> Vec<f64> {
    (1..=7).rev().map(|e| 1.0 / f64::from(1 << e)).collect()
}

/// The density sweep of Figure 19 (unstructured): `2⁻⁷ … 2⁻³`.
#[must_use]
pub fn figure19_densities() -> Vec<f64> {
    (3..=7).rev().map(|e| 1.0 / f64::from(1 << e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::bsr::Bsr;

    #[test]
    fn block_pruned_has_zero_rows_at_high_sparsity() {
        let w = block_pruned_weight(768, 768, 1.0 / 16.0, 7);
        let bsr = Bsr::from_csr(&w, 32).unwrap();
        assert!(bsr.zero_block_rows() > 0, "expected empty block rows");
        // Blocks are fully dense inside (block pruning keeps whole blocks).
        assert_eq!(bsr.stored(), w.nnz());
    }

    #[test]
    fn densities_sweep_downwards() {
        let d = figure17_densities();
        assert_eq!(d.len(), 7);
        assert!((d[0] - 1.0 / 128.0).abs() < 1e-12);
        assert!((d[6] - 0.5).abs() < 1e-12);
        assert_eq!(figure19_densities().len(), 5);
    }

    #[test]
    fn movement_pruned_hits_target_density() {
        let w = movement_pruned_weight(768, 768, 0.06, 11);
        let got = w.density();
        assert!((got - 0.06).abs() < 0.005, "{got}");
    }
}
