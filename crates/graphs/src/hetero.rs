//! Synthetic stand-ins for the heterogeneous RDF graphs of Table 2
//! (AIFB, MUTAG, BGS, ogbl-biokg, AM), used by the RGCN experiments
//! (§4.4.1). Edge counts per relation follow a Zipf-like skew (a few
//! relations dominate, as in RDF data); per-relation degrees are
//! heavy-tailed.

use rand::Rng;
use sparsetir_smat::coo::Coo;
use sparsetir_smat::csr::Csr;
use sparsetir_smat::gen;

/// A Table 2 heterograph description.
#[derive(Debug, Clone)]
pub struct HeteroSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Paper-reported node count.
    pub paper_nodes: usize,
    /// Paper-reported edge count.
    pub paper_edges: usize,
    /// Paper-reported relation (edge-type) count.
    pub paper_etypes: usize,
    /// Paper-reported `%padding` under the 3-D hyb format (Table 2).
    pub paper_padding_pct: f64,
    /// Generation scale applied to nodes/edges.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HeteroSpec {
    /// Scaled node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        ((self.paper_nodes as f64 * self.scale) as usize).max(128)
    }

    /// Scaled total edge count.
    #[must_use]
    pub fn edges(&self) -> usize {
        ((self.paper_edges as f64 * self.scale) as usize).max(256)
    }

    /// Generate per-relation adjacency matrices (all `nodes × nodes`).
    #[must_use]
    pub fn generate(&self) -> Vec<Csr> {
        let n = self.nodes();
        let r = self.paper_etypes;
        let total_edges = self.edges();
        let mut rng = gen::rng(self.seed);
        // Zipf share per relation: w_i ∝ 1/(i+1).
        let weights: Vec<f64> = (0..r).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let wsum: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| {
                let rel_edges = ((w / wsum) * total_edges as f64) as usize;
                let mut coo = Coo::new(n, n);
                let mut placed = 0usize;
                // Heavy-tailed out-degrees within the relation.
                while placed < rel_edges {
                    let src = rng.gen_range(0..n) as u32;
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let deg = ((2.0 / (u + 0.05)) as usize).clamp(1, 64).min(rel_edges - placed);
                    for _ in 0..deg {
                        let dst = rng.gen_range(0..n) as u32;
                        coo.push(src, dst, 1.0);
                    }
                    placed += deg;
                }
                Csr::from_coo(&coo)
            })
            .collect()
    }
}

/// All Table 2 heterographs, scaled for tractable simulation.
#[must_use]
pub fn table2_graphs() -> Vec<HeteroSpec> {
    vec![
        HeteroSpec {
            name: "AIFB",
            paper_nodes: 7262,
            paper_edges: 48_810,
            paper_etypes: 45,
            paper_padding_pct: 17.9,
            scale: 1.0,
            seed: 0xA0,
        },
        HeteroSpec {
            name: "MUTAG",
            paper_nodes: 27_163,
            paper_edges: 148_100,
            paper_etypes: 46,
            paper_padding_pct: 8.0,
            scale: 0.4,
            seed: 0xA1,
        },
        HeteroSpec {
            name: "BGS",
            paper_nodes: 94_806,
            paper_edges: 672_884,
            paper_etypes: 96,
            paper_padding_pct: 4.3,
            scale: 0.1,
            seed: 0xA2,
        },
        HeteroSpec {
            name: "ogbl-biokg",
            paper_nodes: 93_773,
            paper_edges: 4_762_678,
            paper_etypes: 51,
            paper_padding_pct: 4.2,
            scale: 0.03,
            seed: 0xA3,
        },
        HeteroSpec {
            name: "AM",
            paper_nodes: 1_885_136,
            paper_edges: 5_668_682,
            paper_etypes: 96,
            paper_padding_pct: 10.8,
            scale: 0.006,
            seed: 0xA4,
        },
    ]
}

/// Look up a heterograph by name.
#[must_use]
pub fn hetero_by_name(name: &str) -> Option<HeteroSpec> {
    table2_graphs().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_count_matches_spec() {
        let spec = hetero_by_name("AIFB").unwrap();
        let rels = spec.generate();
        assert_eq!(rels.len(), 45);
        let total: usize = rels.iter().map(Csr::nnz).sum();
        let want = spec.edges();
        assert!(
            (total as f64) > 0.5 * want as f64 && (total as f64) < 1.5 * want as f64,
            "total {total} vs want {want}"
        );
    }

    #[test]
    fn relation_sizes_are_skewed() {
        let spec = hetero_by_name("MUTAG").unwrap();
        let rels = spec.generate();
        let sizes: Vec<usize> = rels.iter().map(Csr::nnz).collect();
        let max = *sizes.iter().max().unwrap();
        let min_nonzero = sizes.iter().copied().filter(|&s| s > 0).min().unwrap_or(1);
        assert!(max > 10 * min_nonzero, "max {max} vs min {min_nonzero}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hetero_by_name("AIFB").unwrap().generate();
        let b = hetero_by_name("AIFB").unwrap().generate();
        assert_eq!(a[0], b[0]);
        assert_eq!(a[44], b[44]);
    }
}
