//! Attention mask generators for the sparse-transformer experiments
//! (§4.3.1): the Longformer sliding-window (band) mask and the Pixelated
//! Butterfly mask.

use sparsetir_smat::coo::Coo;
use sparsetir_smat::csr::Csr;

/// Longformer band mask: position `i` attends to `[i − band/2, i + band/2]`.
#[must_use]
pub fn band_mask(n: usize, band: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(band / 2);
        let hi = (i + band / 2).min(n - 1);
        for j in lo..=hi {
            coo.push(i as u32, j as u32, 1.0);
        }
    }
    Csr::from_coo(&coo)
}

/// Pixelated Butterfly mask at block granularity `block`: block-diagonal
/// plus butterfly connections — block row `i` attends to block column
/// `i XOR 2^k` for each level `k` (the FFT access pattern of Parker's
/// butterfly matrices underlying Chen et al.'s design).
#[must_use]
pub fn butterfly_mask(n: usize, block: usize) -> Csr {
    let nb = n / block;
    let mut coo = Coo::new(n, n);
    let levels = (usize::BITS - nb.leading_zeros()) as usize;
    for bi in 0..nb {
        let mut partners = vec![bi];
        for k in 0..levels {
            let p = bi ^ (1 << k);
            if p < nb {
                partners.push(p);
            }
        }
        partners.sort_unstable();
        partners.dedup();
        for bj in partners {
            for r in 0..block {
                for c in 0..block {
                    coo.push((bi * block + r) as u32, (bj * block + c) as u32, 1.0);
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

/// The paper's sparse-attention benchmark configuration (§4.3.1): matrix
/// size, heads, band width, feature size per head.
#[derive(Debug, Clone, Copy)]
pub struct AttentionConfig {
    /// Sequence length (paper: 4096; scaled runs use less).
    pub seq_len: usize,
    /// Number of heads (paper: 12).
    pub heads: usize,
    /// Band width for Longformer (paper: 256).
    pub band: usize,
    /// Feature size per head (paper: 64).
    pub feat: usize,
    /// Block granularity of the butterfly mask.
    pub block: usize,
}

impl Default for AttentionConfig {
    fn default() -> Self {
        // Scaled from the paper's 4096 so cache-line simulation stays
        // fast; the block structure (and therefore the figure's shape) is
        // preserved.
        AttentionConfig { seq_len: 2048, heads: 12, band: 256, feat: 64, block: 32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::bsr::Bsr;

    #[test]
    fn band_mask_has_expected_width() {
        let m = band_mask(64, 8);
        assert_eq!(m.row_nnz(32), 9); // 4 left + self + 4 right
        assert_eq!(m.row_nnz(0), 5); // clipped at the boundary
    }

    #[test]
    fn butterfly_mask_connects_xor_partners() {
        let m = butterfly_mask(64, 8); // 8 block rows
                                       // Block row 0 partners: 0 (diag), 1, 2, 4 → 4 blocks × 8 columns.
        assert_eq!(m.row_nnz(0), 4 * 8);
        // Blocks convert exactly at the native granularity.
        let bsr = Bsr::from_csr(&m, 8).unwrap();
        assert_eq!(bsr.stored(), m.nnz());
    }

    #[test]
    fn masks_are_block_friendly_at_32() {
        let cfg = AttentionConfig { seq_len: 256, ..Default::default() };
        let band = band_mask(cfg.seq_len, cfg.band.min(cfg.seq_len / 2));
        let bsr = Bsr::from_csr(&band, 32).unwrap();
        // The band digitizes into blocks with bounded padding (< 60%).
        let pad = 1.0 - band.nnz() as f64 / bsr.stored() as f64;
        assert!(pad < 0.6, "padding {pad}");
    }
}
