//! # sparsetir-graphs
//!
//! Deterministic synthetic workload generators matching the paper's
//! datasets (DESIGN.md §2 documents each substitution):
//!
//! * [`datasets`] — the homogeneous GNN graphs of Table 1,
//! * [`hetero`] — the heterogeneous RDF graphs of Table 2,
//! * [`attention`] — Longformer band and Pixelated-Butterfly masks (§4.3.1),
//! * [`pruned`] — block-pruned and movement-pruned BERT weights (§4.3.2),
//! * [`pointcloud`] — LiDAR-like voxel clouds and conv kernel maps (§4.4.2).

#![warn(missing_docs)]

pub mod attention;
pub mod datasets;
pub mod hetero;
pub mod pointcloud;
pub mod pruned;

/// Common imports.
pub mod prelude {
    pub use crate::attention::{band_mask, butterfly_mask, AttentionConfig};
    pub use crate::datasets::{graph_by_name, table1_graphs, DegreeFamily, GraphSpec};
    pub use crate::hetero::{hetero_by_name, table2_graphs, HeteroSpec};
    pub use crate::pointcloud::{figure23_channels, VoxelCloud};
    pub use crate::pruned::{
        bert_layer_shapes, block_pruned_weight, figure17_densities, figure19_densities,
        movement_pruned_weight,
    };
}
