//! Synthetic stand-ins for the homogeneous GNN graphs of Table 1.
//!
//! Substitution (DESIGN.md §2): the paper loads Cora/Citeseer/Pubmed (
//! Planetoid), PPI, ogbn-arxiv, ogbn-proteins and Reddit. Here each graph
//! is generated with its published node count and average degree and a
//! degree-distribution *family* matching its character (power-law citation
//! /social tails vs the concentrated degrees of ogbn-proteins). Graphs
//! whose full size would make cache-line simulation slow are generated at
//! a documented `scale < 1`; degree statistics — which drive every
//! load-balancing and padding effect — are scale-invariant under the
//! generator.

use rand::Rng;
use sparsetir_smat::csr::Csr;
use sparsetir_smat::gen;

/// Degree-distribution family of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeFamily {
    /// Heavy-tailed (citation/social networks): most rows short, a few
    /// huge — the regime where `hyb` bucketing wins.
    PowerLaw,
    /// Concentrated around the mean (ogbn-proteins): §4.2.1 notes "the
    /// degree distribution of the ogbn-proteins graph is centralized, and
    /// the benefit of using a hybrid format is compensated".
    Concentrated,
}

/// A Table 1 graph description.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Paper-reported node count.
    pub paper_nodes: usize,
    /// Paper-reported edge count.
    pub paper_edges: usize,
    /// Paper-reported `%padding` under the chosen hyb format (Table 1).
    pub paper_padding_pct: f64,
    /// Degree-distribution family.
    pub family: DegreeFamily,
    /// Generation scale in `(0, 1]` applied to the node count.
    pub scale: f64,
    /// RNG seed (deterministic generation).
    pub seed: u64,
}

impl GraphSpec {
    /// Node count after scaling.
    #[must_use]
    pub fn nodes(&self) -> usize {
        ((self.paper_nodes as f64 * self.scale) as usize).max(64)
    }

    /// Paper average degree (preserved by generation).
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_nodes as f64
    }

    /// Generate the adjacency matrix.
    #[must_use]
    pub fn generate(&self) -> Csr {
        let n = self.nodes();
        let mean = self.avg_degree();
        let mut rng = gen::rng(self.seed);
        match self.family {
            DegreeFamily::PowerLaw => {
                // Pareto-like: density α/(u+ε), normalized to hit `mean`.
                let eps = 0.015f64;
                let norm = (1.0f64 + eps).ln() - eps.ln();
                let alpha = mean / norm;
                gen::random_csr_with_row_lengths(
                    n,
                    n,
                    move |r| {
                        let u: f64 = r.gen_range(0.0..1.0);
                        ((alpha / (u + eps)) as usize).clamp(1, n / 2)
                    },
                    &mut rng,
                )
            }
            DegreeFamily::Concentrated => {
                // Degrees within ±25% of the mean.
                let lo = (mean * 0.75) as usize;
                let hi = ((mean * 1.25) as usize).min(n - 1).max(lo + 1);
                gen::random_csr_with_row_lengths(n, n, move |r| r.gen_range(lo..hi), &mut rng)
            }
        }
    }
}

/// All Table 1 graphs, scaled so that simulation stays tractable (the
/// harness prints both generated and paper statistics).
#[must_use]
pub fn table1_graphs() -> Vec<GraphSpec> {
    vec![
        GraphSpec {
            name: "cora",
            paper_nodes: 2708,
            paper_edges: 10556,
            paper_padding_pct: 15.9,
            family: DegreeFamily::PowerLaw,
            scale: 1.0,
            seed: 0xC0,
        },
        GraphSpec {
            name: "citeseer",
            paper_nodes: 3327,
            paper_edges: 9228,
            paper_padding_pct: 13.0,
            family: DegreeFamily::PowerLaw,
            scale: 1.0,
            seed: 0xC1,
        },
        GraphSpec {
            name: "pubmed",
            paper_nodes: 19717,
            paper_edges: 88651,
            paper_padding_pct: 23.1,
            family: DegreeFamily::PowerLaw,
            scale: 1.0,
            seed: 0xC2,
        },
        GraphSpec {
            name: "ppi",
            paper_nodes: 44906,
            paper_edges: 1_271_274,
            paper_padding_pct: 22.9,
            family: DegreeFamily::PowerLaw,
            scale: 0.25,
            seed: 0xC3,
        },
        GraphSpec {
            name: "ogbn-arxiv",
            paper_nodes: 169_343,
            paper_edges: 1_166_243,
            paper_padding_pct: 17.5,
            family: DegreeFamily::PowerLaw,
            scale: 0.08,
            seed: 0xC4,
        },
        GraphSpec {
            name: "ogbn-proteins",
            paper_nodes: 132_534,
            paper_edges: 39_561_252,
            paper_padding_pct: 21.6,
            family: DegreeFamily::Concentrated,
            scale: 0.03,
            seed: 0xC5,
        },
        GraphSpec {
            name: "reddit",
            paper_nodes: 232_965,
            paper_edges: 114_615_892,
            paper_padding_pct: 28.6,
            family: DegreeFamily::PowerLaw,
            scale: 0.02,
            seed: 0xC6,
        },
    ]
}

/// Look up a Table 1 graph by name.
#[must_use]
pub fn graph_by_name(name: &str) -> Option<GraphSpec> {
    table1_graphs().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_average_degree() {
        for spec in table1_graphs() {
            let g = spec.generate();
            let got = g.nnz() as f64 / g.rows() as f64;
            let want = spec.avg_degree();
            let ratio = got / want;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: generated avg degree {got:.1} vs paper {want:.1}",
                spec.name
            );
        }
    }

    #[test]
    fn power_law_graphs_are_skewed_but_proteins_is_not() {
        let reddit = graph_by_name("reddit").unwrap().generate();
        let (max, mean, _) = reddit.degree_stats();
        // The scaled graph caps row length at n/2, truncating the extreme
        // tail; a 4× max/mean ratio is still firmly heavy-tailed.
        assert!(max as f64 > 4.0 * mean, "reddit skew: max {max} mean {mean:.1}");

        let proteins = graph_by_name("ogbn-proteins").unwrap().generate();
        let (pmax, pmean, _) = proteins.degree_stats();
        assert!((pmax as f64) < 1.5 * pmean, "proteins concentration: max {pmax} mean {pmean:.1}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = graph_by_name("cora").unwrap().generate();
        let b = graph_by_name("cora").unwrap().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_by_name() {
        assert!(graph_by_name("pubmed").is_some());
        assert!(graph_by_name("nope").is_none());
    }
}
