//! # sparsetir-gpusim
//!
//! Deterministic GPU performance simulator — the substitute for the
//! paper's physical V100/RTX 3070 testbeds (see DESIGN.md §2). Kernels are
//! described as [`plan::KernelPlan`]s whose thread-block decomposition
//! mirrors the IR schedule; the simulator models SM makespan, a two-level
//! set-associative LRU cache hierarchy, DRAM/L2/L1 bandwidth rooflines,
//! tensor-core vs CUDA-core throughput, occupancy and kernel-launch
//! overhead. Functional correctness is established separately by the
//! `sparsetir-ir` interpreter; this crate only prices execution.

#![warn(missing_docs)]

pub mod cache;
pub mod plan;
pub mod sim;
pub mod spec;

/// Common imports.
pub mod prelude {
    pub use crate::cache::CacheSim;
    pub use crate::plan::{AccessRange, AddressSpace, BlockWork, KernelPlan};
    pub use crate::sim::{simulate_fused, simulate_kernel, simulate_sequence, KernelReport};
    pub use crate::spec::GpuSpec;
}
