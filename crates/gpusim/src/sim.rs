//! The kernel timing model: cache-aware roofline per block + greedy SM
//! makespan + launch overhead.
//!
//! Effects modelled (each one load-bearing for a paper figure):
//! * **Load balance** — kernel time is the makespan of per-block costs over
//!   SMs; a few huge blocks (power-law rows in CSR row-per-block kernels)
//!   dominate, which is what `hyb`'s bucketing fixes (Fig. 13, Fig. 20).
//! * **Cache locality** — per-SM L1 + shared L2 simulated at line
//!   granularity; DRAM traffic is what misses L2 (Fig. 12's column
//!   partition sweep).
//! * **Tensor cores** — MMA FLOPs run at the tensor-core rate (Figs. 16–20).
//! * **Launch overhead** — per kernel; horizontal fusion merges launches
//!   (§3.5).
//! * **Occupancy** — blocks per SM limited by threads and shared memory.

use crate::cache::CacheSim;
use crate::plan::KernelPlan;
use crate::spec::GpuSpec;

/// Simulation result for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Estimated execution time in milliseconds (including launch).
    pub time_ms: f64,
    /// L1 hit rate across all SMs.
    pub l1_hit_rate: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// Bytes transferred from DRAM.
    pub dram_bytes: u64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// Number of thread blocks.
    pub blocks: usize,
}

impl KernelReport {
    /// Zero-cost report (for empty kernels).
    #[must_use]
    pub fn empty(name: &str) -> KernelReport {
        KernelReport {
            name: name.to_string(),
            time_ms: 0.0,
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            dram_bytes: 0,
            flops: 0.0,
            blocks: 0,
        }
    }
}

/// Simulate one kernel on `spec` with cold caches (the paper's
/// `FLUSH_L2=ON` protocol).
#[must_use]
pub fn simulate_kernel(spec: &GpuSpec, plan: &KernelPlan) -> KernelReport {
    let mut sim = Simulator::new(spec);
    sim.run(plan)
}

/// Simulate a sequence of kernels, flushing caches between launches and
/// summing times (how the paper profiles multi-kernel composable-format
/// operators without horizontal fusion).
#[must_use]
pub fn simulate_sequence(spec: &GpuSpec, plans: &[KernelPlan]) -> (Vec<KernelReport>, f64) {
    let mut reports = Vec::with_capacity(plans.len());
    let mut total = 0.0;
    for p in plans {
        let r = simulate_kernel(spec, p);
        total += r.time_ms;
        reports.push(r);
    }
    (reports, total)
}

/// Simulate the horizontally fused execution of several kernels: one
/// launch, all blocks scheduled together (§3.5).
#[must_use]
pub fn simulate_fused(spec: &GpuSpec, plans: &[KernelPlan], name: &str) -> KernelReport {
    simulate_kernel(spec, &KernelPlan::fused(plans, name))
}

struct Simulator<'a> {
    spec: &'a GpuSpec,
    l1: Vec<CacheSim>,
    l2: CacheSim,
}

impl<'a> Simulator<'a> {
    fn new(spec: &'a GpuSpec) -> Simulator<'a> {
        Simulator {
            spec,
            l1: (0..spec.num_sms)
                .map(|_| CacheSim::new(spec.l1_bytes, spec.line_bytes, spec.l1_assoc))
                .collect(),
            l2: CacheSim::new(spec.l2_bytes, spec.line_bytes, spec.l2_assoc),
        }
    }

    fn run(&mut self, plan: &KernelPlan) -> KernelReport {
        let spec = self.spec;
        if plan.blocks.is_empty() {
            let mut r = KernelReport::empty(&plan.name);
            r.time_ms = spec.launch_overhead_us / 1e3;
            return r;
        }
        // Occupancy: how many blocks can an SM host concurrently.
        let by_threads = (2048 / plan.threads_per_block.max(1)).max(1);
        let by_shared = spec
            .shared_bytes_per_sm
            .checked_div(plan.shared_mem_per_block)
            .map_or(spec.max_blocks_per_sm, |b| b.max(1));
        let occupancy = by_threads.min(by_shared).min(spec.max_blocks_per_sm).max(1);

        // Greedy earliest-finish assignment of blocks to SM slots — an
        // idealization of the hardware block scheduler. Slots = SM ×
        // occupancy; per-SM time is the max over its slots.
        let slots = spec.num_sms * occupancy;

        // Per-block resource prices.
        //
        // Compute: blocks resident on one SM share its pipelines, so a
        // block's rate is the SM rate divided by the *actual* per-SM
        // residency (how many blocks each SM really hosts, capped by
        // occupancy). This both conserves aggregate throughput when the
        // machine is saturated and models the thread-level-parallelism
        // limit of low-occupancy kernels.
        //
        // Memory: L1 is per-SM hardware shared by resident blocks. L2 and
        // DRAM are chip-wide; a block's price assumes up to 64 blocks
        // concurrently in the memory system (per-block latency pricing) —
        // chip-level saturation is enforced separately by the DRAM-traffic
        // floor below.
        let sms = spec.num_sms as f64;
        let eff_parallel = plan.blocks.len().min(slots).max(1) as f64;
        let residency = plan.blocks.len().div_ceil(spec.num_sms).clamp(1, occupancy) as f64;
        let sm_cuda_rate = spec.cuda_flops_per_sm_per_cycle * spec.clock_ghz * 1e9;
        let sm_tensor_rate = spec.tensor_flops_per_sm_per_cycle * spec.clock_ghz * 1e9;
        let cuda_rate = sm_cuda_rate / residency;
        let tensor_rate = sm_tensor_rate / residency;
        let mem_conc = eff_parallel.min(64.0);
        let dram_bw_share = spec.dram_gbps * 1e9 / mem_conc;
        let l2_bw_share = spec.l2_gbps * 1e9 / mem_conc;
        let l1_bw_share = spec.l1_gbps * 1e9 / sms / residency;
        let clock_hz = spec.clock_ghz * 1e9;
        let mut slot_time = vec![0.0f64; slots];
        let mut total_dram_bytes = 0u64;
        let line = spec.line_bytes as u64;

        for (i, block) in plan.blocks.iter().enumerate() {
            // Earliest-finishing slot (linear scan is fine at our scales).
            let (slot, _) = slot_time
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("at least one slot");
            let sm = slot % spec.num_sms;
            let _ = i;

            // Memory: probe L1 then L2 per missed line.
            let mut l1_lines = 0u64;
            let mut l2_lines = 0u64;
            let mut dram_lines = 0u64;
            for rng in block.reads.iter().chain(&block.writes) {
                if rng.bytes == 0 {
                    continue;
                }
                let first = rng.addr / line;
                let last = (rng.addr + rng.bytes - 1) / line;
                for l in first..=last {
                    l1_lines += 1;
                    if !self.l1[sm].access_line(l) {
                        l2_lines += 1;
                        if !self.l2.access_line(l) {
                            dram_lines += 1;
                        }
                    }
                }
            }
            total_dram_bytes += dram_lines * line;

            let mlp = if block.mlp_penalty > 0.0 { block.mlp_penalty } else { 1.0 };
            let mem_time = ((l1_lines * line) as f64 / l1_bw_share
                + (l2_lines * line) as f64 / l2_bw_share
                + (dram_lines * line) as f64 / dram_bw_share
                + block.shared_bytes / l1_bw_share)
                * mlp;
            let compute_time = block.cuda_flops / cuda_rate
                + block.tensor_flops / tensor_rate
                + block.serial_insts / clock_hz;
            let cost = mem_time.max(compute_time) + spec.block_overhead_us / 1e6;
            slot_time[slot] += cost;
        }

        let makespan = slot_time.iter().cloned().fold(0.0f64, f64::max);
        // Global DRAM roofline: the kernel can never beat total traffic /
        // total bandwidth, regardless of balance. (Per-block memory prices
        // above are latency-oriented; this floor enforces chip-level
        // bandwidth saturation.)
        let dram_floor = total_dram_bytes as f64 / (spec.dram_gbps * 1e9);
        let cuda_total: f64 = plan.blocks.iter().map(|b| b.cuda_flops).sum();
        let tensor_total: f64 = plan.blocks.iter().map(|b| b.tensor_flops).sum();

        let time_s = makespan.max(dram_floor) + spec.launch_overhead_us / 1e6;

        let l1_hits: u64 = self.l1.iter().map(CacheSim::hits).sum();
        let l1_misses: u64 = self.l1.iter().map(CacheSim::misses).sum();
        let l1_rate = if l1_hits + l1_misses == 0 {
            0.0
        } else {
            l1_hits as f64 / (l1_hits + l1_misses) as f64
        };
        KernelReport {
            name: plan.name.clone(),
            time_ms: time_s * 1e3,
            l1_hit_rate: l1_rate,
            l2_hit_rate: self.l2.hit_rate(),
            dram_bytes: total_dram_bytes,
            flops: cuda_total + tensor_total,
            blocks: plan.blocks.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AccessRange, BlockWork};

    fn spec() -> GpuSpec {
        GpuSpec::v100()
    }

    fn uniform_plan(nblocks: usize, flops: f64, bytes: u64) -> KernelPlan {
        let mut p = KernelPlan::new("uniform");
        for i in 0..nblocks {
            p.blocks.push(BlockWork {
                cuda_flops: flops,
                reads: vec![AccessRange::new(i as u64 * bytes, bytes)],
                ..Default::default()
            });
        }
        p
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let r = simulate_kernel(&spec(), &KernelPlan::new("empty"));
        assert!((r.time_ms - 0.005).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_blocks_dominate_makespan() {
        let s = spec();
        let balanced = uniform_plan(160, 1e6, 0);
        let mut skewed = uniform_plan(159, 1e4, 0);
        skewed.blocks.push(BlockWork { cuda_flops: 159.0 * 1e6, ..Default::default() });
        let tb = simulate_kernel(&s, &balanced);
        let ts = simulate_kernel(&s, &skewed);
        // Same total flops, but the skewed kernel serializes on one block.
        assert!(ts.time_ms > tb.time_ms * 5.0, "{} vs {}", ts.time_ms, tb.time_ms);
    }

    #[test]
    fn tensor_cores_beat_cuda_cores_on_gemm_flops() {
        let s = spec();
        let mut cuda = KernelPlan::new("cuda");
        let mut tc = KernelPlan::new("tc");
        for _ in 0..320 {
            cuda.blocks.push(BlockWork { cuda_flops: 1e8, ..Default::default() });
            tc.blocks.push(BlockWork { tensor_flops: 1e8, ..Default::default() });
        }
        let rc = simulate_kernel(&s, &cuda);
        let rt = simulate_kernel(&s, &tc);
        assert!(rc.time_ms > rt.time_ms * 3.0, "{} vs {}", rc.time_ms, rt.time_ms);
    }

    #[test]
    fn cache_reuse_reduces_dram_traffic() {
        let s = spec();
        // All blocks read the same 64 KB window → high L2 reuse.
        let mut reuse = KernelPlan::new("reuse");
        // Blocks read disjoint 64 KB windows → no reuse.
        let mut stream = KernelPlan::new("stream");
        for i in 0..400u64 {
            reuse.blocks.push(BlockWork {
                reads: vec![AccessRange::new(0, 64 * 1024)],
                ..Default::default()
            });
            stream.blocks.push(BlockWork {
                reads: vec![AccessRange::new(i * 64 * 1024, 64 * 1024)],
                ..Default::default()
            });
        }
        let rr = simulate_kernel(&s, &reuse);
        let rs = simulate_kernel(&s, &stream);
        assert!(rr.dram_bytes < rs.dram_bytes / 4, "{} vs {}", rr.dram_bytes, rs.dram_bytes);
        assert!(rr.l2_hit_rate > 0.5 || rr.l1_hit_rate > 0.5);
        assert!(rs.l2_hit_rate < 0.1);
        assert!(rr.time_ms < rs.time_ms);
    }

    #[test]
    fn fused_launch_amortizes_overhead() {
        let s = spec();
        let plans: Vec<KernelPlan> = (0..10).map(|_| uniform_plan(8, 1e5, 4096)).collect();
        let (_, sequential) = simulate_sequence(&s, &plans);
        let fused = simulate_fused(&s, &plans, "fused");
        // 10 launches vs 1: the difference is ≈ 9 × launch overhead.
        assert!(sequential > fused.time_ms + 8.0 * s.launch_overhead_us / 1e3);
    }

    #[test]
    fn dram_roofline_bounds_even_with_many_sms() {
        let s = spec();
        // One block per SM slot, each streaming 10 MB: total 800 MB of
        // DRAM traffic cannot finish faster than 800MB / 900GB/s.
        let mut p = KernelPlan::new("stream");
        for i in 0..80u64 {
            p.blocks.push(BlockWork {
                reads: vec![AccessRange::new(i * 10_000_000, 10_000_000)],
                ..Default::default()
            });
        }
        let r = simulate_kernel(&s, &p);
        let floor_ms = (r.dram_bytes as f64 / (s.dram_gbps * 1e9)) * 1e3;
        assert!(r.time_ms >= floor_ms);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let s = spec();
        let mut hungry = uniform_plan(460, 1e6, 0);
        hungry.shared_mem_per_block = s.shared_bytes_per_sm; // 1 block/SM
        let mut light = uniform_plan(460, 1e6, 0);
        light.shared_mem_per_block = 0;
        let rh = simulate_kernel(&s, &hungry);
        let rl = simulate_kernel(&s, &light);
        // With 460 equal blocks on 80 SMs the serialized occupancy-1 case
        // is no faster, but both should be finite and ordered.
        assert!(rh.time_ms >= rl.time_ms);
    }
}
