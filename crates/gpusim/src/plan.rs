//! Kernel execution plans — the interface between scheduled kernels and
//! the simulator. A plan lists per-thread-block work descriptors whose
//! block decomposition mirrors the kernel's schedule (same split/bind
//! parameters as the IR), so schedule choices change simulated time the
//! same way they change real GPU time.

/// A contiguous global-memory access (byte address range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRange {
    /// Starting byte address in the kernel's virtual address space.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl AccessRange {
    /// Construct a range.
    #[must_use]
    pub fn new(addr: u64, bytes: u64) -> AccessRange {
        AccessRange { addr, bytes }
    }
}

/// Work performed by one thread block.
#[derive(Debug, Clone, Default)]
pub struct BlockWork {
    /// FP32 CUDA-core FLOPs (FMA = 2).
    pub cuda_flops: f64,
    /// Tensor-core FLOPs (MMA contributions).
    pub tensor_flops: f64,
    /// Global-memory reads.
    pub reads: Vec<AccessRange>,
    /// Global-memory writes.
    pub writes: Vec<AccessRange>,
    /// Shared-memory traffic in bytes (both directions).
    pub shared_bytes: f64,
    /// Extra serialized instruction count (uncoalesced/scalar overhead);
    /// costed at one cycle each on the block's SM.
    pub serial_insts: f64,
    /// Memory-level-parallelism penalty: multiplier on the block's memory
    /// time (> 1 when the schedule cannot keep enough loads in flight,
    /// e.g. a serialized reduction without `rfactor`). `0` means the
    /// default of `1.0`.
    pub mlp_penalty: f64,
}

impl BlockWork {
    /// Total bytes read.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.reads.iter().map(|r| r.bytes).sum()
    }

    /// Total bytes written.
    #[must_use]
    pub fn write_bytes(&self) -> u64 {
        self.writes.iter().map(|r| r.bytes).sum()
    }
}

/// A simulated kernel launch.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Kernel name (reporting only).
    pub name: String,
    /// Per-block work items, in launch order.
    pub blocks: Vec<BlockWork>,
    /// Threads per block (occupancy modelling).
    pub threads_per_block: usize,
    /// Shared memory per block in bytes (occupancy modelling).
    pub shared_mem_per_block: usize,
}

impl KernelPlan {
    /// Empty plan with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> KernelPlan {
        KernelPlan {
            name: name.into(),
            blocks: Vec::new(),
            threads_per_block: 128,
            shared_mem_per_block: 0,
        }
    }

    /// Total FLOPs over all blocks.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.blocks.iter().map(|b| b.cuda_flops + b.tensor_flops).sum()
    }

    /// Total global bytes touched (reads + writes).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.read_bytes() + b.write_bytes()).sum()
    }

    /// Horizontally fuse several plans into one named launch (§3.5).
    #[must_use]
    pub fn fused(plans: &[KernelPlan], name: &str) -> KernelPlan {
        let mut out = KernelPlan::new(name);
        for p in plans {
            out.fuse(p);
        }
        out
    }

    /// Concatenate another plan's blocks (horizontal fusion at plan level:
    /// one launch, the union of blocks).
    pub fn fuse(&mut self, other: &KernelPlan) {
        self.blocks.extend(other.blocks.iter().cloned());
        self.threads_per_block = self.threads_per_block.max(other.threads_per_block);
        self.shared_mem_per_block = self.shared_mem_per_block.max(other.shared_mem_per_block);
    }
}

/// A bump allocator assigning disjoint virtual address ranges to named
/// buffers, so plans from different kernels share an address space and the
/// cache simulation sees true reuse.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: u64,
    map: Vec<(String, u64, u64)>,
}

impl AddressSpace {
    /// Empty address space.
    #[must_use]
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Allocate (or look up) a buffer of `bytes`; returns its base address.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> u64 {
        if let Some((_, base, len)) = self.map.iter().find(|(n, _, _)| n == name) {
            debug_assert!(*len >= bytes, "buffer `{name}` reallocated larger");
            return *base;
        }
        let base = self.next;
        // Page-align allocations to keep buffers in distinct lines.
        let aligned = bytes.div_ceil(4096) * 4096;
        self.next += aligned;
        self.map.push((name.to_string(), base, aligned));
        base
    }

    /// Base address of a previously allocated buffer.
    #[must_use]
    pub fn base(&self, name: &str) -> Option<u64> {
        self.map.iter().find(|(n, _, _)| n == name).map(|(_, b, _)| *b)
    }

    /// Total allocated bytes (the GPU-memory footprint of Figure 20).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.map.iter().map(|(_, _, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_totals() {
        let mut p = KernelPlan::new("k");
        p.blocks.push(BlockWork {
            cuda_flops: 10.0,
            reads: vec![AccessRange::new(0, 256)],
            writes: vec![AccessRange::new(512, 128)],
            ..Default::default()
        });
        p.blocks.push(BlockWork { tensor_flops: 5.0, ..Default::default() });
        assert_eq!(p.total_flops(), 15.0);
        assert_eq!(p.total_bytes(), 384);
    }

    #[test]
    fn fuse_concatenates_blocks() {
        let mut a = KernelPlan::new("a");
        a.blocks.push(BlockWork::default());
        let mut b = KernelPlan::new("b");
        b.blocks.push(BlockWork::default());
        b.threads_per_block = 256;
        a.fuse(&b);
        assert_eq!(a.blocks.len(), 2);
        assert_eq!(a.threads_per_block, 256);
    }

    #[test]
    fn address_space_is_disjoint_and_stable() {
        let mut a = AddressSpace::new();
        let x = a.alloc("X", 100);
        let y = a.alloc("Y", 5000);
        assert_ne!(x, y);
        assert_eq!(a.alloc("X", 100), x); // stable
        assert!(a.footprint_bytes() >= 5100);
        assert_eq!(a.base("Y"), Some(y));
        assert_eq!(a.base("Z"), None);
    }
}
