//! Set-associative LRU cache simulation at cache-line granularity, used to
//! reproduce the L1/L2 hit-rate behaviour of Figure 12 (column-partition
//! sweep) and to feed DRAM traffic into the roofline cost model.

/// A set-associative LRU cache over 64-bit byte addresses.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    sets: Vec<Vec<u64>>,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` with the given line size and
    /// associativity (set count rounded down to a power of two, minimum 1).
    #[must_use]
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> CacheSim {
        let lines = (capacity_bytes / line_bytes).max(1);
        let sets = (lines / assoc).max(1).next_power_of_two() >> 1;
        let sets = sets.max(1);
        CacheSim {
            line_bytes: line_bytes as u64,
            sets: vec![Vec::with_capacity(assoc); sets],
            assoc,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one line-aligned address; returns `true` on hit.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        let set_idx = (line_addr as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            let tag = set.remove(pos);
            set.push(tag); // most-recently-used at the back
            self.hits += 1;
            true
        } else {
            if set.len() >= self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(line_addr);
            self.misses += 1;
            false
        }
    }

    /// Access a byte range `[addr, addr + bytes)`; returns the number of
    /// missed lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        let mut missed = 0;
        for line in first..=last {
            if !self.access_line(line) {
                missed += 1;
            }
        }
        missed
    }

    /// Number of lines spanned by a byte range.
    #[must_use]
    pub fn lines_in_range(&self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (addr + bytes - 1) / self.line_bytes - addr / self.line_bytes + 1
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Clear contents and counters (the paper's `FLUSH_L2=ON` protocol).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 128, 4);
        assert!(!c.access_line(5));
        assert!(c.access_line(5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set × 2 ways.
        let mut c = CacheSim::new(256, 128, 2);
        c.access_line(0);
        c.access_line(1);
        c.access_line(0); // refresh 0
        c.access_line(2); // evicts 1
        assert!(c.access_line(0), "0 must survive");
        assert!(!c.access_line(1), "1 must have been evicted");
    }

    #[test]
    fn range_spans_lines() {
        let mut c = CacheSim::new(4096, 128, 4);
        // 300 bytes starting at byte 100 touches lines 0, 1, 2, 3.
        assert_eq!(c.lines_in_range(100, 300), 4);
        assert_eq!(c.access_range(100, 300), 4);
        assert_eq!(c.access_range(100, 300), 0); // all hits now
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(1024, 128, 2); // 8 lines
        for round in 0..3 {
            for line in 0..64u64 {
                let hit = c.access_line(line);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.hit_rate() < 0.1, "{}", c.hit_rate());
    }

    #[test]
    fn flush_clears_state() {
        let mut c = CacheSim::new(1024, 128, 4);
        c.access_line(1);
        c.flush();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access_line(1));
    }

    #[test]
    fn zero_byte_range_is_free() {
        let mut c = CacheSim::new(1024, 128, 4);
        assert_eq!(c.access_range(512, 0), 0);
        assert_eq!(c.hits() + c.misses(), 0);
    }
}
