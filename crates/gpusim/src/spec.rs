//! GPU hardware specifications for the performance model.
//!
//! Substitution note (see DESIGN.md): the paper evaluates on real NVIDIA
//! V100 and RTX 3070 boards; this reproduction models them with published
//! architectural parameters. Absolute times are estimates — the harness
//! reports *relative* numbers (speedups vs a baseline simulated on the same
//! model), which is what the paper's figures plot.

/// Architectural parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum concurrently resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// FP32 FMA throughput per SM per cycle (counting 2 FLOPs per FMA).
    pub cuda_flops_per_sm_per_cycle: f64,
    /// FP16 tensor-core throughput per SM per cycle.
    pub tensor_flops_per_sm_per_cycle: f64,
    /// L1 data cache / shared memory size per SM in bytes.
    pub l1_bytes: usize,
    /// Unified L2 size in bytes.
    pub l2_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Aggregate L2 bandwidth in GB/s.
    pub l2_gbps: f64,
    /// Aggregate L1/shared bandwidth in GB/s.
    pub l1_gbps: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Fixed per-block scheduling overhead in microseconds.
    pub block_overhead_us: f64,
    /// Shared memory capacity per SM in bytes.
    pub shared_bytes_per_sm: usize,
}

impl GpuSpec {
    /// Total FP32 throughput in FLOP/s.
    #[must_use]
    pub fn cuda_flops(&self) -> f64 {
        self.cuda_flops_per_sm_per_cycle * self.num_sms as f64 * self.clock_ghz * 1e9
    }

    /// Total tensor-core throughput in FLOP/s.
    #[must_use]
    pub fn tensor_flops(&self) -> f64 {
        self.tensor_flops_per_sm_per_cycle * self.num_sms as f64 * self.clock_ghz * 1e9
    }

    /// Stable identifier for caching decisions keyed by device: a tuned
    /// configuration is only valid for the GPU it was searched on.
    #[must_use]
    pub fn device_id(&self) -> &'static str {
        self.name
    }

    /// NVIDIA Tesla V100 (Volta, SXM2 16 GB).
    #[must_use]
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "V100",
            num_sms: 80,
            max_blocks_per_sm: 16,
            clock_ghz: 1.38,
            // 14 TFLOPS FP32 → 14e12 / (80 · 1.38e9) ≈ 127.
            cuda_flops_per_sm_per_cycle: 127.0,
            // 112 TFLOPS FP16 tensor.
            tensor_flops_per_sm_per_cycle: 1014.0,
            l1_bytes: 128 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            line_bytes: 128,
            l1_assoc: 4,
            l2_assoc: 16,
            dram_gbps: 900.0,
            l2_gbps: 2500.0,
            l1_gbps: 12000.0,
            launch_overhead_us: 5.0,
            block_overhead_us: 0.002,
            shared_bytes_per_sm: 96 * 1024,
        }
    }

    /// NVIDIA A100 (Ampere, SXM4 40 GB) — the data-center Ampere part the
    /// artifact also supports ("Other NVIDIA GPUs with Turing, Ampere, or
    /// Hopper architecture should also work", §B.3.2).
    #[must_use]
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100",
            num_sms: 108,
            max_blocks_per_sm: 16,
            clock_ghz: 1.41,
            // 19.5 TFLOPS FP32 → 19.5e12 / (108 · 1.41e9) ≈ 128.
            cuda_flops_per_sm_per_cycle: 128.0,
            // 312 TFLOPS FP16 tensor (dense).
            tensor_flops_per_sm_per_cycle: 2049.0,
            l1_bytes: 192 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            line_bytes: 128,
            l1_assoc: 4,
            l2_assoc: 16,
            dram_gbps: 1555.0,
            l2_gbps: 4500.0,
            l1_gbps: 19000.0,
            launch_overhead_us: 4.0,
            block_overhead_us: 0.002,
            shared_bytes_per_sm: 164 * 1024,
        }
    }

    /// NVIDIA GeForce RTX 3070 (Ampere, 8 GB GDDR6).
    #[must_use]
    pub fn rtx3070() -> GpuSpec {
        GpuSpec {
            name: "RTX3070",
            num_sms: 46,
            max_blocks_per_sm: 16,
            clock_ghz: 1.73,
            // 20.3 TFLOPS FP32 → 20.3e12 / (46 · 1.73e9) ≈ 255.
            cuda_flops_per_sm_per_cycle: 255.0,
            // 81 TFLOPS FP16 tensor (dense).
            tensor_flops_per_sm_per_cycle: 1018.0,
            l1_bytes: 128 * 1024,
            l2_bytes: 4 * 1024 * 1024,
            line_bytes: 128,
            l1_assoc: 4,
            l2_assoc: 16,
            dram_gbps: 448.0,
            l2_gbps: 1600.0,
            l1_gbps: 9000.0,
            launch_overhead_us: 4.0,
            block_overhead_us: 0.002,
            shared_bytes_per_sm: 100 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_throughput_matches_datasheet() {
        let v = GpuSpec::v100();
        let tflops = v.cuda_flops() / 1e12;
        assert!((13.5..15.0).contains(&tflops), "{tflops}");
        let tensor = v.tensor_flops() / 1e12;
        assert!((105.0..120.0).contains(&tensor), "{tensor}");
    }

    #[test]
    fn a100_outclasses_v100() {
        let a = GpuSpec::a100();
        let v = GpuSpec::v100();
        assert!(a.tensor_flops() > 2.0 * v.tensor_flops());
        assert!(a.dram_gbps > v.dram_gbps);
        assert!(a.l2_bytes > v.l2_bytes);
    }

    #[test]
    fn rtx3070_is_bandwidth_poorer_than_v100() {
        let v = GpuSpec::v100();
        let r = GpuSpec::rtx3070();
        assert!(r.dram_gbps < v.dram_gbps);
        assert!(r.l2_bytes < v.l2_bytes);
        assert!(r.num_sms < v.num_sms);
    }
}
