//! GraphSAGE inference served through the batched engine: both
//! aggregation SpMMs of the forward pass are submitted as engine
//! requests, so concurrent inference clients sharing one graph get their
//! feature aggregations folded into wider batched kernel launches while
//! the dense GEMM/ReLU tail stays on the caller's thread (it is
//! per-request by construction).

use crate::graphsage::GraphSage;
use sparsetir_engine::{Adjacency, Engine, EngineError, Submission};
use sparsetir_smat::prelude::Dense;

/// The engine-side handle for a model's normalized adjacency. Build it
/// once per deployed model and clone it per client thread — requests
/// from every clone batch together (the clone is an `Arc` bump and the
/// content fingerprint is reused).
#[must_use]
pub fn serving_adjacency(model: &GraphSage) -> Adjacency {
    Adjacency::new(model.a_norm.clone())
}

/// One GraphSAGE forward pass (`relu((A·X)·W1)·W2` composed as
/// `A·H`-aggregations + GEMMs) with both aggregations served by
/// `engine`. Bit-for-bit, the aggregations are the engine's batched SpMM
/// (identical to unbatched execution); the GEMM tail reuses the model's
/// reference kernels, so a single-client serve matches
/// [`GraphSage::forward`] up to the SpMM backend's accumulation (same
/// order — see the engine's differential suite).
///
/// # Errors
/// Propagates engine errors; dense-shape mismatches surface as
/// [`EngineError::Shape`].
pub fn serve_sage_forward(
    engine: &Engine,
    model: &GraphSage,
    adj: &Adjacency,
    x: &Dense,
) -> Result<Dense, EngineError> {
    // Both aggregations ride the engine's one generic submit path (the
    // same path SDDMM and attention requests take); the unified ticket
    // answers with an `OpOutput` converted back to a dense matrix.
    let agg1 = engine.serve(adj, Submission::spmm(x.clone()))?.into_dense()?;
    let h1 = agg1.matmul(&model.w1).map_err(shape_err)?.relu();
    let agg2 = engine.serve(adj, Submission::spmm(h1))?.into_dense()?;
    agg2.matmul(&model.w2).map_err(shape_err)
}

/// One GraphSAGE forward pass with *both whole layers* served as
/// cross-op fused requests: each `FusedSage` request compiles the
/// gather → degree-normalize → feature-matmul step into a single kernel
/// (one launch per layer instead of SpMM + host-side GEMM), with only
/// the elementwise ReLU between layers on the caller's thread. The
/// fused op's mean aggregator is structural, so it works off the same
/// [`serving_adjacency`] handle — the normalized values are ignored and
/// the per-row `1/deg` is folded into the kernel instead. Numerically
/// this regroups `Σ(x/deg)` as `(Σx)/deg`, so results agree with
/// [`GraphSage::forward`] to relative epsilon, not bit-for-bit.
///
/// # Errors
/// Propagates engine errors; dense-shape mismatches surface as
/// [`EngineError::Shape`].
pub fn serve_sage_forward_fused(
    engine: &Engine,
    model: &GraphSage,
    adj: &Adjacency,
    x: &Dense,
) -> Result<Dense, EngineError> {
    let h1 = engine
        .serve(adj, Submission::fused_sage(x.clone(), model.w1.clone()))?
        .into_dense()?
        .relu();
    engine.serve(adj, Submission::fused_sage(h1, model.w2.clone()))?.into_dense()
}

fn shape_err(e: sparsetir_smat::SmatError) -> EngineError {
    EngineError::Shape(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_engine::EngineConfig;
    use sparsetir_smat::prelude::*;
    use std::sync::Arc;

    fn toy_graph(n: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn served_forward_matches_reference_forward() {
        let adj_csr = toy_graph(48, 7);
        let model = GraphSage::new(&adj_csr, 8, 6, 4, 11).unwrap();
        let adj = serving_adjacency(&model);
        let engine = Engine::new(EngineConfig::default());
        let mut rng = gen::rng(13);
        let x = gen::random_dense(48, 8, &mut rng);
        let served = serve_sage_forward(&engine, &model, &adj, &x).unwrap();
        let reference = model.forward(&x).unwrap().out;
        assert!(
            served.approx_eq(&reference, 1e-3),
            "served inference must agree with the functional forward pass"
        );
        // Two aggregations → two completed SpMM requests.
        assert_eq!(engine.stats().completed, 2);
    }

    /// The fused serving path agrees with the functional forward pass to
    /// relative epsilon, runs each layer as one kernel (two cached
    /// kernels total), and shows up in the per-op width histogram.
    #[test]
    fn fused_served_forward_matches_reference_forward() {
        let adj_csr = toy_graph(48, 9);
        let model = GraphSage::new(&adj_csr, 8, 6, 4, 11).unwrap();
        let adj = serving_adjacency(&model);
        let engine = Engine::new(EngineConfig { fuse: Some(true), ..EngineConfig::default() });
        let mut rng = gen::rng(19);
        let x = gen::random_dense(48, 8, &mut rng);
        let served = serve_sage_forward_fused(&engine, &model, &adj, &x).unwrap();
        let reference = model.forward(&x).unwrap().out;
        assert!(
            served.approx_eq(&reference, 1e-3),
            "fused inference must agree with the functional forward pass (max |Δ| = {})",
            served.max_abs_diff(&reference)
        );
        let stats = engine.stats();
        assert_eq!(stats.completed, 2, "one fused request per layer");
        assert_eq!(stats.widths_of("fused_sage").map(|h| h.batches), Some(2));
        // One cross-op kernel per layer shape — not SpMM + GEMM pairs.
        assert_eq!(engine.runtime().cached(), 2);
    }

    /// The `SPARSETIR_NO_FUSE`-equivalent engine flag routes fused
    /// requests to the multi-launch pipeline and still answers
    /// bit-identically to the fused engine.
    #[test]
    fn fused_serving_kill_switch_stays_bit_identical() {
        let adj_csr = toy_graph(40, 29);
        let model = GraphSage::new(&adj_csr, 6, 5, 3, 31).unwrap();
        let adj = serving_adjacency(&model);
        let mut rng = gen::rng(37);
        let x = gen::random_dense(40, 6, &mut rng);
        let fused = Engine::new(EngineConfig { fuse: Some(true), ..EngineConfig::default() });
        let unfused = Engine::new(EngineConfig { fuse: Some(false), ..EngineConfig::default() });
        let yes = serve_sage_forward_fused(&fused, &model, &adj, &x).unwrap();
        let no = serve_sage_forward_fused(&unfused, &model, &adj, &x).unwrap();
        assert_eq!(
            yes.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            no.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fused and pipeline serving must agree bit-for-bit"
        );
        assert_eq!(fused.runtime().cached(), 2, "one fused kernel per layer");
        assert_eq!(unfused.runtime().cached(), 4, "gather + matmul kernels per layer");
    }

    /// Many clients serving inference over one shared model: every client
    /// must get its own correct answer, and the engine must have batched
    /// at least some of the concurrent aggregations.
    #[test]
    fn concurrent_inference_clients_are_correct_and_batch() {
        const CLIENTS: usize = 6;
        let adj_csr = toy_graph(80, 17);
        let model = Arc::new(GraphSage::new(&adj_csr, 10, 8, 3, 23).unwrap());
        let adj = serving_adjacency(&model);
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 32,
            max_batch: 8,
            tune: false,
            fuse: None,
            batch_window: None,
            ..EngineConfig::default()
        }));
        std::thread::scope(|s| {
            for client in 0..CLIENTS {
                let engine = Arc::clone(&engine);
                let model = Arc::clone(&model);
                let adj = adj.clone();
                s.spawn(move || {
                    let mut rng = gen::rng(300 + client as u64);
                    for _ in 0..4 {
                        let x = gen::random_dense(80, 10, &mut rng);
                        let served = serve_sage_forward(&engine, &model, &adj, &x).unwrap();
                        let reference = model.forward(&x).unwrap().out;
                        assert!(served.approx_eq(&reference, 1e-3), "client {client}");
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.completed, (CLIENTS * 4 * 2) as u64);
        assert_eq!(stats.failed, 0);
        // With a single worker and six concurrent clients, requests must
        // have queued behind a busy dispatch and folded into wider
        // launches at least once.
        assert!(stats.max_batch >= 2, "concurrent aggregations never batched: {stats:?}");
    }
}
