//! End-to-end GraphSAGE training (§4.2.3, Figure 15): a two-layer
//! mean-aggregator GraphSAGE model whose forward *and* backward passes are
//! composed from SpMM + GEMM kernels. The paper swaps DGL's SpMM for the
//! SparseTIR-tuned kernel inside a PyTorch model; here the two variants
//! differ in exactly the same way — the SpMM plan — while sharing the GEMM
//! and elementwise kernels.

use sparsetir_autotune::tune_spmm;
use sparsetir_baselines::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// A two-layer GraphSAGE model (mean aggregator).
#[derive(Debug, Clone)]
pub struct GraphSage {
    /// Row-normalized adjacency.
    pub a_norm: Csr,
    /// Transposed normalized adjacency (backward pass).
    pub a_norm_t: Csr,
    /// Layer-1 weight (`in × hidden`) applied to aggregated features.
    pub w1: Dense,
    /// Layer-2 weight (`hidden × out`).
    pub w2: Dense,
}

/// Forward activations kept for the backward pass.
#[derive(Debug, Clone)]
pub struct SageActivations {
    /// Aggregated input features `A·X`.
    pub agg1: Dense,
    /// Layer-1 post-ReLU output.
    pub h1: Dense,
    /// Aggregated hidden features `A·H1`.
    pub agg2: Dense,
    /// Final output.
    pub out: Dense,
}

impl GraphSage {
    /// Build a model with row-normalized adjacency and random weights.
    ///
    /// # Errors
    /// Propagates shape errors from normalization.
    pub fn new(
        adj: &Csr,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        seed: u64,
    ) -> Result<GraphSage, SmatError> {
        let mut a = adj.clone();
        // Row-normalize: mean aggregator.
        {
            let indptr = a.indptr().to_vec();
            let vals = a.values_mut();
            for r in 0..indptr.len() - 1 {
                let deg = (indptr[r + 1] - indptr[r]) as f32;
                if deg > 0.0 {
                    for v in &mut vals[indptr[r]..indptr[r + 1]] {
                        *v = 1.0 / deg;
                    }
                }
            }
        }
        let mut rng = gen::rng(seed);
        Ok(GraphSage {
            a_norm_t: a.transpose(),
            a_norm: a,
            w1: gen::random_dense(in_dim, hidden, &mut rng).scale(0.2),
            w2: gen::random_dense(hidden, out_dim, &mut rng).scale(0.2),
        })
    }

    /// Functional forward pass: `H1 = relu((A·X)·W1)`, `Out = (A·H1)·W2`.
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn forward(&self, x: &Dense) -> Result<SageActivations, SmatError> {
        let agg1 = self.a_norm.spmm(x)?;
        let h1 = agg1.matmul(&self.w1)?.relu();
        let agg2 = self.a_norm.spmm(&h1)?;
        let out = agg2.matmul(&self.w2)?;
        Ok(SageActivations { agg1, h1, agg2, out })
    }

    /// Functional backward pass for loss gradient `dout`; returns
    /// `(dW1, dW2)`. Uses `Aᵀ` SpMM for feature gradients — exactly the
    /// kernels whose speed Figure 15 measures.
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn backward(
        &self,
        acts: &SageActivations,
        dout: &Dense,
    ) -> Result<(Dense, Dense), SmatError> {
        // dW2 = agg2ᵀ · dout
        let dw2 = acts.agg2.transpose().matmul(dout)?;
        // dAgg2 = dout · W2ᵀ ; dH1 = Aᵀ · dAgg2 (masked by ReLU)
        let dagg2 = dout.matmul(&self.w2.transpose())?;
        let mut dh1 = self.a_norm_t.spmm(&dagg2)?;
        for (g, h) in dh1.data_mut().iter_mut().zip(acts.h1.data()) {
            if *h <= 0.0 {
                *g = 0.0;
            }
        }
        // dW1 = agg1ᵀ · dH1
        let dw1 = acts.agg1.transpose().matmul(&dh1)?;
        Ok((dw1, dw2))
    }
}

/// Per-step kernel launches of one training iteration as simulator plans:
/// 2 forward SpMMs + 1 backward SpMM (Aᵀ), plus 4 GEMMs. `spmm` builds
/// the SpMM plan for a given adjacency and feature width — the only
/// difference between the DGL and SparseTIR variants.
fn training_step_time(
    spec: &GpuSpec,
    model: &GraphSage,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    spmm: &dyn Fn(&Csr, usize) -> Vec<KernelPlan>,
) -> f64 {
    let n = model.a_norm.rows();
    let mut plans: Vec<KernelPlan> = Vec::new();
    plans.extend(spmm(&model.a_norm, in_dim)); // agg1
    plans.push(cublas_gemm_fp32_plan(n, hidden, in_dim)); // h1
    plans.extend(spmm(&model.a_norm, hidden)); // agg2
    plans.push(cublas_gemm_fp32_plan(n, out_dim, hidden)); // out
    plans.push(cublas_gemm_fp32_plan(hidden, out_dim, n)); // dW2
    plans.push(cublas_gemm_fp32_plan(n, hidden, out_dim)); // dAgg2
    plans.extend(spmm(&model.a_norm_t, hidden)); // dH1
    plans.push(cublas_gemm_fp32_plan(in_dim, hidden, n)); // dW1
    simulate_sequence(spec, &plans).1
}

/// Simulated training-step time with DGL's SpMM backend.
#[must_use]
pub fn dgl_step_time(spec: &GpuSpec, model: &GraphSage, dims: (usize, usize, usize)) -> f64 {
    training_step_time(spec, model, dims.0, dims.1, dims.2, &|a, feat| vec![dgl_spmm_plan(a, feat)])
}

/// Simulated training-step time with the SparseTIR hyb SpMM (horizontally
/// fused buckets).
#[must_use]
pub fn sparsetir_step_time(spec: &GpuSpec, model: &GraphSage, dims: (usize, usize, usize)) -> f64 {
    training_step_time(spec, model, dims.0, dims.1, dims.2, &|a, feat| {
        let hyb = Hyb::with_default_k(a, 2).expect("c=2 valid");
        let plans = hyb_spmm_plans(&hyb, feat, CsrSpmmParams::default());
        vec![KernelPlan::fused(&plans, "spmm_hyb_fused")]
    })
}

/// Simulated training-step time with the autotuned SpMM: each
/// `(adjacency, feature width)` pair goes through the cached
/// `sparsetir_autotune::tune_spmm` joint search, and the winning
/// configuration's plans run horizontally fused. Because the [`TuneCache`]
/// keys on the sparsity fingerprint, every subsequent step of a training
/// run reuses the decision at zero search cost — the amortization §2
/// assumes.
///
/// [`TuneCache`]: sparsetir_autotune::TuneCache
#[must_use]
pub fn tuned_step_time(spec: &GpuSpec, model: &GraphSage, dims: (usize, usize, usize)) -> f64 {
    training_step_time(spec, model, dims.0, dims.1, dims.2, &|a, feat| {
        let config = tune_spmm(spec, a, feat).config;
        let plans = tuned_spmm_plans(a, feat, &config, "spmm_tuned");
        vec![KernelPlan::fused(&plans, "spmm_tuned_fused")]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_graph(n: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn forward_matches_manual_composition() {
        let adj = toy_graph(24, 1);
        let model = GraphSage::new(&adj, 8, 6, 4, 2).unwrap();
        let mut rng = gen::rng(3);
        let x = gen::random_dense(24, 8, &mut rng);
        let acts = model.forward(&x).unwrap();
        let manual = model
            .a_norm
            .spmm(&model.a_norm.spmm(&x).unwrap().matmul(&model.w1).unwrap().relu())
            .unwrap()
            .matmul(&model.w2)
            .unwrap();
        assert!(acts.out.approx_eq(&manual, 1e-4));
    }

    #[test]
    fn backward_gradient_check_w2() {
        // Finite-difference check on one element of W2 for the loss
        // L = Σ out².
        let adj = toy_graph(12, 5);
        let mut model = GraphSage::new(&adj, 4, 3, 2, 6).unwrap();
        let mut rng = gen::rng(7);
        let x = gen::random_dense(12, 4, &mut rng);
        let acts = model.forward(&x).unwrap();
        let dout = acts.out.scale(2.0); // dL/dout for L = Σ out²
        let (_dw1, dw2) = model.backward(&acts, &dout).unwrap();

        let eps = 1e-3f32;
        let orig = model.w2.get(1, 1);
        model.w2.set(1, 1, orig + eps);
        let lp: f32 = model.forward(&x).unwrap().out.data().iter().map(|v| v * v).sum();
        model.w2.set(1, 1, orig - eps);
        let lm: f32 = model.forward(&x).unwrap().out.data().iter().map(|v| v * v).sum();
        model.w2.set(1, 1, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dw2.get(1, 1);
        assert!(
            (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn tuned_step_no_slower_than_fixed_hyb() {
        let adj = toy_graph(2000, 12);
        let model = GraphSage::new(&adj, 32, 32, 8, 11).unwrap();
        let spec = GpuSpec::v100();
        let dgl = dgl_step_time(&spec, &model, (32, 32, 8));
        let fixed = sparsetir_step_time(&spec, &model, (32, 32, 8));
        let tuned = tuned_step_time(&spec, &model, (32, 32, 8));
        // The tuner searched a superset of the fixed hyb(2, k) deployment
        // (small tolerance: the search objective fuses per-SpMM, the step
        // estimator sequences whole steps).
        assert!(tuned <= fixed * 1.05, "tuned {tuned} vs fixed {fixed}");
        assert!(tuned < dgl, "tuned {tuned} vs dgl {dgl}");
    }

    #[test]
    fn figure15_sparsetir_step_beats_dgl() {
        let adj = toy_graph(3000, 9);
        let model = GraphSage::new(&adj, 64, 64, 16, 10).unwrap();
        let spec = GpuSpec::v100();
        let dgl = dgl_step_time(&spec, &model, (64, 64, 16));
        let stir = sparsetir_step_time(&spec, &model, (64, 64, 16));
        let speedup = dgl / stir;
        assert!(
            (1.02..3.0).contains(&speedup),
            "speedup {speedup} (dgl {dgl} vs sparsetir {stir})"
        );
    }
}

#[cfg(test)]
mod training_tests {
    use super::*;
    use rand::Rng;

    /// A few SGD steps on a regression loss must reduce it monotonically
    /// (up to small noise) — validating the hand-derived backward pass in
    /// an actual optimization loop, not just a gradient check.
    #[test]
    fn sgd_training_converges() {
        let mut rng = gen::rng(1234);
        let n = 30usize;
        let adj = gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.05)) as usize).clamp(1, 10)
            },
            &mut rng,
        );
        let (din, hidden, dout) = (6usize, 5usize, 3usize);
        let mut model = GraphSage::new(&adj, din, hidden, dout, 99).unwrap();
        let x = gen::random_dense(n, din, &mut rng);
        // Realizable target: the output of a differently-seeded teacher,
        // so gradient descent has a reachable optimum.
        let teacher = GraphSage::new(&adj, din, hidden, dout, 4321).unwrap();
        let target = teacher.forward(&x).unwrap().out;

        let loss_of = |out: &Dense| -> f32 {
            out.data().iter().zip(target.data()).map(|(o, t)| (o - t) * (o - t)).sum()
        };
        let lr = 0.15f32;
        let mut losses = Vec::new();
        for _ in 0..80 {
            let acts = model.forward(&x).unwrap();
            losses.push(loss_of(&acts.out));
            // dL/dout for L = Σ (out − target)².
            let mut dout_m = acts.out.clone();
            for (d, t) in dout_m.data_mut().iter_mut().zip(target.data()) {
                *d = 2.0 * (*d - t);
            }
            let (dw1, dw2) = model.backward(&acts, &dout_m).unwrap();
            model.w1 = model.w1.add(&dw1.scale(-lr)).unwrap();
            model.w2 = model.w2.add(&dw2.scale(-lr)).unwrap();
        }
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.5, "training failed to converge: {first} → {last} ({losses:?})");
    }
}
