//! # sparsetir-nn
//!
//! End-to-end models of the paper's evaluation: GraphSAGE training
//! (§4.2.3, Figure 15) and RGCN inference (§4.4.1, Figure 20). Functional
//! numerics run through `sparsetir-smat`; per-step times compose kernel
//! plans on the GPU simulator, differing between systems only in the
//! sparse kernels — mirroring how the paper swaps SparseTIR kernels into
//! a PyTorch model.

#![warn(missing_docs)]

pub mod graphsage;
pub mod rgcn;
pub mod serving;

/// Common imports.
pub mod prelude {
    pub use crate::graphsage::{
        dgl_step_time, sparsetir_step_time, tuned_step_time, GraphSage, SageActivations,
    };
    pub use crate::rgcn::{figure20_measurements, tuned_rgms, RgcnLayer, RgcnMeasurement};
    pub use crate::serving::{serve_sage_forward, serve_sage_forward_fused, serving_adjacency};
}
