//! End-to-end RGCN inference (§4.4.1, Figure 20): one relational graph
//! convolution layer at feature size 32, with every execution strategy of
//! the figure — PyG / DGL / Graphiler two-stage pipelines and the
//! SparseTIR naive / hyb / hyb+TC fused kernels — plus GPU memory
//! footprints.

use sparsetir_autotune::tune_op;
use sparsetir_baselines::prelude::rgcn as baseline_rgcn;
use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// An RGCN layer instance: relational structure plus per-relation weights.
#[derive(Debug, Clone)]
pub struct RgcnLayer {
    /// The RGMS workload (relations, feature dims).
    pub workload: RgmsWorkload,
    /// Per-relation weight matrices (`din × dout`).
    pub weights: Vec<Dense>,
}

impl RgcnLayer {
    /// Build a layer with random weights (feature size 32 as in §4.4.1).
    #[must_use]
    pub fn new(relations: Vec<Csr>, feat: usize, seed: u64) -> RgcnLayer {
        let mut rng = gen::rng(seed);
        let weights = (0..relations.len())
            .map(|_| gen::random_dense(feat, feat, &mut rng).scale(0.1))
            .collect();
        RgcnLayer { workload: RgmsWorkload { relations, din: feat, dout: feat }, weights }
    }

    /// Functional inference: `Y = relu(Σ_r A_r · X · W_r)`.
    ///
    /// # Errors
    /// Propagates shape mismatches.
    pub fn infer(&self, x: &Dense) -> Result<Dense, SmatError> {
        Ok(rgms_execute(&self.workload, x, &self.weights)?.relu())
    }
}

/// One Figure 20 measurement: inference time and memory footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct RgcnMeasurement {
    /// System label as in the figure.
    pub system: &'static str,
    /// Simulated inference time in milliseconds.
    pub time_ms: f64,
    /// GPU memory footprint in bytes.
    pub footprint_bytes: u64,
}

/// Run every Figure 20 system on one heterograph workload.
#[must_use]
pub fn figure20_measurements(spec: &GpuSpec, layer: &RgcnLayer) -> Vec<RgcnMeasurement> {
    let w = &layer.workload;
    let two_stage_fp = two_stage_footprint_bytes(w);
    vec![
        RgcnMeasurement {
            system: "PyG",
            time_ms: baseline_rgcn::total_time_ms(spec, &baseline_rgcn::pyg_plans(w)),
            footprint_bytes: two_stage_fp,
        },
        RgcnMeasurement {
            system: "DGL",
            time_ms: baseline_rgcn::total_time_ms(spec, &baseline_rgcn::dgl_plans(w)),
            footprint_bytes: two_stage_fp,
        },
        RgcnMeasurement {
            system: "Graphiler",
            time_ms: baseline_rgcn::total_time_ms(spec, &baseline_rgcn::graphiler_plans(w)),
            footprint_bytes: two_stage_fp,
        },
        RgcnMeasurement {
            system: "SparseTIR(naive)",
            time_ms: simulate_kernel(spec, &rgms_naive_plan(w, "stir_naive")).time_ms,
            footprint_bytes: fused_footprint_bytes(w, false),
        },
        RgcnMeasurement {
            system: "SparseTIR(hyb)",
            time_ms: simulate_kernel(spec, &rgms_hyb_plan(w, 5, false, "stir_hyb")).time_ms,
            footprint_bytes: fused_footprint_bytes(w, false),
        },
        RgcnMeasurement {
            system: "SparseTIR(hyb+TC)",
            time_ms: simulate_kernel(spec, &rgms_hyb_plan(w, 5, true, "stir_hyb_tc")).time_ms,
            footprint_bytes: fused_footprint_bytes(w, true),
        },
        RgcnMeasurement {
            system: "SparseTIR(tuned)",
            time_ms: tuned_rgms(spec, layer, true).1,
            footprint_bytes: fused_footprint_bytes(w, true),
        },
    ]
}

/// Search the 3-D hyb bucket exponent `k` through the generic, cached
/// `tune_op` path (the fixed `k = 5` of the figure is one candidate) and
/// return `(k, simulated_ms)` of the winner. RGCN picks its operator
/// through exactly the same op-agnostic tuning layer as SpMM, SDDMM and
/// attention — and a retune of the same relational structure is a cache
/// hit.
#[must_use]
pub fn tuned_rgms(spec: &GpuSpec, layer: &RgcnLayer, tensor_cores: bool) -> (u32, f64) {
    let w = &layer.workload;
    let r = tune_op::<RgmsOp>(spec, w, &[w.din, w.dout, usize::from(tensor_cores)]);
    (r.config, r.report.time_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn hetero_relations(n: usize, rels: usize, seed: u64) -> Vec<Csr> {
        let mut rng = gen::rng(seed);
        (0..rels)
            .map(|r| {
                let participation = if r % 4 == 0 { 0.2 } else { 0.04 };
                gen::random_csr_with_row_lengths(
                    n,
                    n,
                    move |rr| {
                        if rr.gen_bool(participation) {
                            let u: f64 = rr.gen_range(0.0..1.0);
                            ((6.0 / (u + 0.1)) as usize).clamp(1, 48)
                        } else {
                            0
                        }
                    },
                    &mut rng,
                )
            })
            .collect()
    }

    #[test]
    fn inference_matches_reference() {
        let layer = RgcnLayer::new(hetero_relations(30, 4, 1), 8, 2);
        let mut rng = gen::rng(3);
        let x = gen::random_dense(30, 8, &mut rng);
        let y = layer.infer(&x).unwrap();
        let manual = rgms_reference(&layer.workload.relations, &x, &layer.weights).unwrap().relu();
        assert!(y.approx_eq(&manual, 1e-4));
    }

    #[test]
    fn tuned_rgms_no_slower_than_fixed_k() {
        let layer = RgcnLayer::new(hetero_relations(600, 24, 7), 32, 8);
        let spec = GpuSpec::v100();
        let (k, t) = tuned_rgms(&spec, &layer, true);
        assert!((2..=6).contains(&k));
        // The figure's fixed k = 5 is one of the candidates, so the tuned
        // pick can never be slower.
        let fixed = simulate_kernel(&spec, &rgms_hyb_plan(&layer.workload, 5, true, "fx")).time_ms;
        assert!(t <= fixed, "tuned {t} vs fixed {fixed}");
    }

    #[test]
    fn figure20_shape_holds() {
        let layer = RgcnLayer::new(hetero_relations(600, 24, 5), 32, 6);
        let spec = GpuSpec::v100();
        let ms = figure20_measurements(&spec, &layer);
        let get = |s: &str| ms.iter().find(|m| m.system == s).unwrap();
        let graphiler = get("Graphiler");
        let tc = get("SparseTIR(hyb+TC)");
        let hyb = get("SparseTIR(hyb)");
        let naive = get("SparseTIR(naive)");
        // Headline: hyb+TC beats Graphiler by a large factor.
        assert!(
            tc.time_ms * 2.0 < graphiler.time_ms,
            "tc {} vs graphiler {}",
            tc.time_ms,
            graphiler.time_ms
        );
        // Ablation ordering: naive > hyb > hyb+TC.
        assert!(naive.time_ms > hyb.time_ms);
        assert!(hyb.time_ms > tc.time_ms);
        // Memory: fused ≪ two-stage; TC variant costs a bit more than hyb.
        assert!(tc.footprint_bytes < graphiler.footprint_bytes);
        assert!(tc.footprint_bytes > hyb.footprint_bytes);
    }
}
