//! Op-agnostic tuning: any [`SparseOp`] with a search space tunes through
//! the one generic, cached [`tune_op`] path. The per-op grid loops that
//! used to live beside each kernel are gone — an op contributes its
//! candidate space and simulator scoring ([`TunableOp`]), and the shared
//! machinery handles trial evaluation (parallel OS threads), winner
//! selection and [`TuneCache`] amortization keyed by sparsity
//! fingerprint. Decisions are stored as the kind-tagged [`OpConfig`] so
//! one cache holds every op's configurations.

use crate::cache::{TuneCache, TuneKey};
use crate::engine::{tune, Evaluator, ListSpace, SearchSpace, Trial, TuneOutcome};
use crate::evaluate::{AttentionSimEvaluator, SddmmSimEvaluator, SpmmSimEvaluator};
use crate::space::{AttentionSpace, SddmmSpace, SpmmSpace};
use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_kernels::rgms::rgms_hyb_plan;
use sparsetir_smat::prelude::Csr;
use std::sync::OnceLock;

/// An [`Evaluator`] built from a plain scoring closure — the adapter that
/// lets an op's [`TunableOp::search`] reuse the generic trial engine
/// without a bespoke evaluator type.
pub struct FnEvaluator<F>(pub F);

impl<C, F> Evaluator<C> for FnEvaluator<F>
where
    F: Fn(&C) -> Option<f64> + Sync,
{
    fn evaluate(&self, candidate: &C) -> Option<f64> {
        (self.0)(candidate)
    }
}

/// A [`SparseOp`] with a tuning story: a candidate space and a simulator
/// scoring pass. Everything else — caching, key construction, winner
/// reporting — is shared by [`tune_op`].
pub trait TunableOp: SparseOp {
    /// Run the op's simulator search at `shape` (the same shape vector
    /// [`SparseOp::shape_of`] produces). `None` when no candidate is
    /// feasible.
    fn search(
        spec: &GpuSpec,
        adj: &Self::Adj,
        shape: &[usize],
    ) -> Option<TuneOutcome<Self::Config>>;

    /// Simulated report of one configuration at `shape` (stored alongside
    /// the cached decision).
    fn report(
        spec: &GpuSpec,
        adj: &Self::Adj,
        shape: &[usize],
        config: &Self::Config,
    ) -> KernelReport;
}

/// A cached op-agnostic tuning decision: the kind-tagged configuration,
/// the winner's simulated report, and how many trials the original
/// search evaluated.
#[derive(Debug, Clone)]
pub struct OpDecision {
    /// Winning configuration (variant always matches the key's workload).
    pub config: OpConfig,
    /// The winner's simulated report.
    pub report: KernelReport,
    /// Configurations evaluated by the original search.
    pub trials: usize,
}

/// Result of a [`tune_op`] run, typed back to the op's configuration.
#[derive(Debug, Clone)]
pub struct OpTuneResult<C> {
    /// Winning configuration.
    pub config: C,
    /// Its simulated report.
    pub report: KernelReport,
    /// Configurations evaluated by the original search (preserved through
    /// the cache).
    pub trials: usize,
    /// True when served from the [`TuneCache`] rather than a fresh search.
    pub from_cache: bool,
}

/// The process-wide cache of simulator-backed decisions for *every*
/// [`SparseOp`] — the `TuneCache<V>` was always generic; this is the one
/// instantiation all ops share, keyed by `(kind, device, shape,
/// fingerprint)`.
pub fn op_sim_cache() -> &'static TuneCache<OpDecision> {
    static CACHE: OnceLock<TuneCache<OpDecision>> = OnceLock::new();
    CACHE.get_or_init(TuneCache::new)
}

/// Tune any [`TunableOp`] on `adj` at `shape` under the simulator,
/// cached by `(op kind, device, shape, sparsity fingerprint)`: a repeated
/// tune of the same structure is a [`TuneCache`] hit with zero new
/// simulation or kernel compilation.
///
/// # Panics
/// Panics when the op's search space has no feasible candidate.
#[must_use]
pub fn tune_op<O>(spec: &GpuSpec, adj: &O::Adj, shape: &[usize]) -> OpTuneResult<O::Config>
where
    O: TunableOp,
    OpConfig: From<O::Config>,
    O::Config: TryFrom<OpConfig>,
{
    let key = TuneKey {
        workload: O::kind(),
        backend: "gpusim",
        device: spec.device_id(),
        extra: shape.to_vec(),
        fingerprint: O::sparsity(adj),
    };
    let (decision, from_cache) = op_sim_cache().get_or_insert_with(key, || {
        let outcome = O::search(spec, adj, shape).expect("non-empty op search space");
        let report = O::report(spec, adj, shape, &outcome.best.candidate);
        OpDecision { config: outcome.best.candidate.into(), report, trials: outcome.trials.len() }
    });
    let config = O::Config::try_from(decision.config)
        .ok()
        .expect("cached op-config variant matches its kind-scoped key");
    OpTuneResult { config, report: decision.report, trials: decision.trials, from_cache }
}

impl TunableOp for SpmmOp {
    fn search(spec: &GpuSpec, adj: &Csr, shape: &[usize]) -> Option<TuneOutcome<SpmmConfig>> {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        tune(&SpmmSpace::joint(adj), &SpmmSimEvaluator::new(spec, adj, feat))
    }

    fn report(spec: &GpuSpec, adj: &Csr, shape: &[usize], config: &SpmmConfig) -> KernelReport {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        tuned_spmm_time(spec, adj, feat, config)
    }
}

impl TunableOp for SddmmOp {
    fn search(spec: &GpuSpec, adj: &Csr, shape: &[usize]) -> Option<TuneOutcome<SddmmParams>> {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        tune(&SddmmSpace, &SddmmSimEvaluator { spec, matrix: adj, feat })
    }

    fn report(spec: &GpuSpec, adj: &Csr, shape: &[usize], config: &SddmmParams) -> KernelReport {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        simulate_kernel(spec, &sddmm_plan(adj, feat, *config, "sparsetir_sddmm"))
    }
}

impl TunableOp for AttentionOp {
    fn search(
        spec: &GpuSpec,
        adj: &Csr,
        shape: &[usize],
    ) -> Option<TuneOutcome<AttentionOpConfig>> {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        let heads = shape.get(1).copied().unwrap_or(1).max(1);
        let evaluator = AttentionSimEvaluator { spec, mask: adj, feat, heads };
        let configs: Vec<AttentionOpConfig> = AttentionSpace
            .candidates()
            .into_iter()
            .map(|block| AttentionOpConfig { block, ..AttentionOpConfig::default() })
            .collect();
        tune(
            &ListSpace(configs),
            &FnEvaluator(|c: &AttentionOpConfig| evaluator.evaluate(&c.block)),
        )
        .or_else(|| {
            // The mask digitizes at none of the searched blocks: fall
            // back to the default config priced on the CSR CUDA-core
            // plan, so a served adjacency of any shape still tunes
            // instead of panicking the search.
            let config = AttentionOpConfig::default();
            let score = Self::report(spec, adj, shape, &config).time_ms;
            Some(TuneOutcome {
                best: Trial { candidate: config, score },
                trials: vec![Trial { candidate: config, score }],
            })
        })
    }

    fn report(
        spec: &GpuSpec,
        adj: &Csr,
        shape: &[usize],
        config: &AttentionOpConfig,
    ) -> KernelReport {
        // `plans` already falls back to the CSR CUDA-core plan when the
        // mask does not digitize at `config.block`.
        let plan = Self::plans(adj, shape, config, "tune_attn")
            .into_iter()
            .next()
            .expect("attention plan face is non-empty");
        simulate_kernel(spec, &plan)
    }
}

impl TunableOp for FusedAttentionOp {
    fn search(
        spec: &GpuSpec,
        adj: &Csr,
        shape: &[usize],
    ) -> Option<TuneOutcome<FusedAttentionConfig>> {
        // The fused launch is priced as its two flop-dominant phases
        // (score SDDMM + aggregation SpMM); the searched knob is the
        // score phase's schedule, scored by the summed phase times.
        let configs: Vec<FusedAttentionConfig> = sddmm_param_candidates()
            .into_iter()
            .map(|sddmm| FusedAttentionConfig { sddmm, ..FusedAttentionConfig::default() })
            .collect();
        tune(
            &ListSpace(configs),
            &FnEvaluator(|c: &FusedAttentionConfig| {
                Some(
                    Self::plans(adj, shape, c, "tune_fused_attn")
                        .iter()
                        .map(|p| simulate_kernel(spec, p).time_ms)
                        .sum(),
                )
            }),
        )
    }

    fn report(
        spec: &GpuSpec,
        adj: &Csr,
        shape: &[usize],
        config: &FusedAttentionConfig,
    ) -> KernelReport {
        // Store the dominant phase's report (the search already scored
        // the summed phases).
        Self::plans(adj, shape, config, "tune_fused_attn")
            .iter()
            .map(|p| simulate_kernel(spec, p))
            .max_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
            .expect("fused attention plan face is non-empty")
    }
}

impl TunableOp for FusedSageOp {
    fn search(spec: &GpuSpec, adj: &Csr, shape: &[usize]) -> Option<TuneOutcome<FusedSageConfig>> {
        // One executable schedule today; the single candidate still flows
        // through the generic trial engine so the decision caches and
        // reports uniformly.
        tune(
            &ListSpace(vec![FusedSageConfig::default()]),
            &FnEvaluator(|c: &FusedSageConfig| {
                Some(
                    Self::plans(adj, shape, c, "tune_fused_sage")
                        .iter()
                        .map(|p| simulate_kernel(spec, p).time_ms)
                        .sum(),
                )
            }),
        )
    }

    fn report(
        spec: &GpuSpec,
        adj: &Csr,
        shape: &[usize],
        config: &FusedSageConfig,
    ) -> KernelReport {
        Self::plans(adj, shape, config, "tune_fused_sage")
            .iter()
            .map(|p| simulate_kernel(spec, p))
            .max_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
            .expect("fused sage plan face is non-empty")
    }
}

impl TunableOp for RgmsOp {
    fn search(
        spec: &GpuSpec,
        adj: &sparsetir_kernels::rgms::RgmsWorkload,
        shape: &[usize],
    ) -> Option<TuneOutcome<u32>> {
        let tensor_cores = shape.get(2).is_some_and(|&tc| tc != 0);
        tune(
            &ListSpace(vec![2u32, 3, 4, 5, 6]),
            &FnEvaluator(|k: &u32| {
                Some(
                    simulate_kernel(spec, &rgms_hyb_plan(adj, *k, tensor_cores, "stir_tuned"))
                        .time_ms,
                )
            }),
        )
    }

    fn report(
        spec: &GpuSpec,
        adj: &sparsetir_kernels::rgms::RgmsWorkload,
        shape: &[usize],
        config: &u32,
    ) -> KernelReport {
        let tensor_cores = shape.get(2).is_some_and(|&tc| tc != 0);
        simulate_kernel(spec, &rgms_hyb_plan(adj, *config, tensor_cores, "stir_tuned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::prelude::*;

    #[test]
    fn op_tuning_caches_per_kind_and_shape() {
        let mut rng = gen::rng(61);
        let a = gen::random_csr(200, 200, 0.05, &mut rng);
        let spec = GpuSpec::v100();
        let r1 = tune_op::<SddmmOp>(&spec, &a, &[32]);
        assert!(!r1.from_cache);
        assert_eq!(r1.trials, sddmm_param_candidates().len());
        let r2 = tune_op::<SddmmOp>(&spec, &a, &[32]);
        assert!(r2.from_cache, "second tune of the same shape must hit");
        assert_eq!(r1.config, r2.config);
        // Same matrix, different op kind: a distinct decision.
        assert!(!tune_op::<SpmmOp>(&spec, &a, &[32]).from_cache);
        // Same op, different shape: a distinct decision.
        assert!(!tune_op::<SddmmOp>(&spec, &a, &[64]).from_cache);
    }

    #[test]
    fn fused_op_tuning_searches_and_caches() {
        let mut rng = gen::rng(62);
        let a = gen::random_csr(150, 150, 0.05, &mut rng);
        let spec = GpuSpec::v100();
        let r1 = tune_op::<FusedAttentionOp>(&spec, &a, &[16, 16, 4]);
        assert!(!r1.from_cache);
        assert_eq!(r1.trials, sddmm_param_candidates().len());
        assert!(tune_op::<FusedAttentionOp>(&spec, &a, &[16, 16, 4]).from_cache);
        let sage = tune_op::<FusedSageOp>(&spec, &a, &[16, 8]);
        assert!(!sage.from_cache, "distinct kind, distinct decision");
        assert_eq!(sage.trials, 1);
    }

    #[test]
    fn attention_tuning_picks_a_searched_block() {
        let mut coo = Coo::new(128, 128);
        for i in 0..128usize {
            let lo = i.saturating_sub(8);
            let hi = (i + 8).min(127);
            for j in lo..=hi {
                coo.push(i as u32, j as u32, 1.0);
            }
        }
        let mask = Csr::from_coo(&coo);
        let spec = GpuSpec::v100();
        let r = tune_op::<AttentionOp>(&spec, &mask, &[32, 4]);
        assert!([16usize, 32, 64].contains(&r.config.block));
        assert_eq!(r.trials, 3);
    }
}
