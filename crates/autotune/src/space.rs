//! Concrete search spaces: the joint format × schedule space of §4.2.1
//! for SpMM, the schedule space of §4.2.2 for SDDMM, and the block
//! granularity of §4.3.1 for block-sparse attention.

use crate::engine::SearchSpace;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// The paper's column-partition candidates (§4.2.1: "we search for the
/// best c over {1, 2, 4, 8, 16}").
#[must_use]
pub fn col_part_candidates() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// The CSR schedule candidates (rows per block, vector width).
#[must_use]
pub fn schedule_candidates() -> Vec<CsrSpmmParams> {
    vec![
        CsrSpmmParams::default(),
        CsrSpmmParams { rows_per_block: 8, ..Default::default() },
        CsrSpmmParams { rows_per_block: 2, ..Default::default() },
        CsrSpmmParams { vec_width: 2, ..Default::default() },
    ]
}

/// The joint SpMM space: `(no-decomposition + hyb(c, k)) × schedules`.
pub struct SpmmSpace {
    /// Schedule parameter candidates.
    pub schedules: Vec<CsrSpmmParams>,
    /// Column-partition candidates (empty = CSR-only search).
    pub col_parts: Vec<usize>,
    /// Bucket exponent `k` for the hyb arms.
    pub bucket_k: u32,
}

impl SpmmSpace {
    /// The paper's full joint space for matrix `a`, with `k` defaulted to
    /// `⌈log2(nnz/n)⌉` as §4.2.1 prescribes.
    #[must_use]
    pub fn joint(a: &Csr) -> SpmmSpace {
        SpmmSpace {
            schedules: schedule_candidates(),
            col_parts: col_part_candidates(),
            bucket_k: default_k(a),
        }
    }

    /// Schedule-only search over plain CSR (the `SparseTIR(no-hyb)`
    /// variant of Figure 13).
    #[must_use]
    pub fn csr_only() -> SpmmSpace {
        SpmmSpace { schedules: schedule_candidates(), col_parts: Vec::new(), bucket_k: 0 }
    }
}

impl SearchSpace for SpmmSpace {
    type Candidate = SpmmConfig;

    fn candidates(&self) -> Vec<SpmmConfig> {
        let mut out = Vec::new();
        // No-decomposition arm first: ties break toward the simpler
        // format. `bucket_k` is meaningless without decomposition, so it
        // is canonicalized to 0 — this keeps derived equality meaningful
        // (the CSR default here equals `SpmmConfig::default_csr()`).
        for &params in &self.schedules {
            out.push(SpmmConfig { col_parts: None, bucket_k: 0, params });
        }
        for &c in &self.col_parts {
            for &params in &self.schedules {
                out.push(SpmmConfig { col_parts: Some(c), bucket_k: self.bucket_k, params });
            }
        }
        out
    }
}

/// The SDDMM schedule space (`sddmm_param_candidates`).
pub struct SddmmSpace;

impl SearchSpace for SddmmSpace {
    type Candidate = SddmmParams;

    fn candidates(&self) -> Vec<SddmmParams> {
        sddmm_param_candidates()
    }
}

/// Block granularities searched for block-sparse attention (§4.3.1;
/// Triton fixes 64, SparseTIR searches).
pub struct AttentionSpace;

impl SearchSpace for AttentionSpace {
    type Candidate = usize;

    fn candidates(&self) -> Vec<usize> {
        vec![16, 32, 64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    #[test]
    fn joint_space_covers_both_arms() {
        let mut rng = gen::rng(3);
        let a = gen::random_csr(32, 32, 0.1, &mut rng);
        let cands = SpmmSpace::joint(&a).candidates();
        // 4 schedules × (1 no-hyb arm + 5 column-partition arms).
        assert_eq!(cands.len(), 24);
        assert!(cands[0].col_parts.is_none());
        assert!(cands.iter().any(|c| c.col_parts == Some(16)));
    }

    #[test]
    fn csr_only_space_has_no_decomposition() {
        assert!(SpmmSpace::csr_only().candidates().iter().all(|c| c.col_parts.is_none()));
    }
}
