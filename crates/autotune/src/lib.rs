//! # sparsetir-autotune
//!
//! The measurement-driven tuning subsystem of §2: SparseTIR "constructs a
//! joint search space of composable formats and composable
//! transformations", and the search cost "can be amortized" across a
//! training run. Three layers deliver that:
//!
//! * a generic engine ([`SearchSpace`] / [`Evaluator`] / [`tune`]) that
//!   SpMM, SDDMM and block-sparse attention all tune through, with
//!   parallel trial evaluation across OS threads;
//! * two evaluator backends — the GPU **simulator** (cheap pruning pass)
//!   and a **measured** backend ([`SpmmMeasuredEvaluator`]) that lowers
//!   each candidate, compiles it through the slot-compiled
//!   `ir::exec::Runtime`, and wall-clock-times real executions with
//!   warmup/repeat control;
//! * a [`TuneCache`] keyed by a structural [`SparsityFingerprint`] (rows,
//!   cols, nnz, degree histogram), so repeated tunes of the same matrix
//!   hit cache with zero recompilation — the amortization the paper
//!   assumes.
//!
//! Every operator tunes through the one generic [`tune_op`] path: a
//! [`TunableOp`] contributes its candidate space and simulator scoring,
//! and the shared machinery handles caching and winner selection. The
//! per-op entry points below (`tune_spmm`, `tune_sddmm`,
//! `tune_attention_block`) are thin typed wrappers over it.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod evaluate;
pub mod op;
pub mod space;

pub use cache::{SparsityFingerprint, TuneCache, TuneKey};
pub use engine::{tune, Evaluator, ListSpace, SearchSpace, Trial, TuneOutcome};
pub use evaluate::{
    AttentionSimEvaluator, MeasureOpts, SddmmSimEvaluator, SpmmMeasuredEvaluator, SpmmSimEvaluator,
};
pub use op::{op_sim_cache, tune_op, FnEvaluator, OpDecision, OpTuneResult, TunableOp};
pub use space::{col_part_candidates, schedule_candidates, AttentionSpace, SddmmSpace, SpmmSpace};
// The configuration types the searches range over live with the kernels
// that consume them; re-exported here so tuner callers need one import.
pub use sparsetir_kernels::op::OpConfig;
pub use sparsetir_kernels::spmm::SpmmConfig;

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;
use std::sync::OnceLock;

/// Result of a simulator-backed SpMM tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Winning configuration.
    pub config: SpmmConfig,
    /// Its simulated report.
    pub report: KernelReport,
    /// Number of configurations evaluated by the original search (the
    /// count is preserved through the cache).
    pub trials: usize,
    /// True when this result came from the [`TuneCache`] rather than a
    /// fresh search.
    pub from_cache: bool,
}

/// Result of a measured SpMM tuning run.
#[derive(Debug, Clone)]
pub struct MeasuredTuneResult {
    /// Winning configuration under real executor wall clock.
    pub config: SpmmConfig,
    /// Its measured time in seconds (minimum over repeats).
    pub seconds: f64,
    /// Measured time of the untuned default CSR schedule from the same
    /// pass — the baseline the winner is guaranteed not to exceed.
    pub default_seconds: f64,
    /// Trials evaluated by the simulator pruning pass.
    pub sim_trials: usize,
    /// The measured shortlist trials (candidate, seconds).
    pub measured: Vec<Trial<SpmmConfig>>,
    /// True when served from the [`TuneCache`].
    pub from_cache: bool,
}

/// Result of a simulator-backed SDDMM tuning run.
#[derive(Debug, Clone)]
pub struct SddmmTuneResult {
    /// Winning schedule parameters.
    pub params: SddmmParams,
    /// Their simulated report.
    pub report: KernelReport,
    /// Number of configurations evaluated.
    pub trials: usize,
    /// True when served from the [`TuneCache`].
    pub from_cache: bool,
}

/// Process-wide cache of measured SpMM decisions (the simulator-backed
/// decisions of every op share [`op_sim_cache`] instead).
pub fn spmm_measured_cache() -> &'static TuneCache<MeasuredTuneResult> {
    static CACHE: OnceLock<TuneCache<MeasuredTuneResult>> = OnceLock::new();
    CACHE.get_or_init(TuneCache::new)
}

fn tune_key(
    workload: &'static str,
    backend: &'static str,
    spec: &GpuSpec,
    a: &Csr,
    extra: Vec<usize>,
) -> TuneKey {
    TuneKey {
        workload,
        backend,
        device: spec.device_id(),
        extra,
        fingerprint: SparsityFingerprint::of(a),
    }
}

/// Grid-search the joint format × schedule space for SpMM on `a` at
/// feature width `feat` under the simulator, returning the fastest
/// configuration. A thin typed wrapper over the generic [`tune_op`] path;
/// cached by sparsity fingerprint, so a repeated tune of the same matrix
/// is a [`TuneCache`] hit.
#[must_use]
pub fn tune_spmm(spec: &GpuSpec, a: &Csr, feat: usize) -> TuneResult {
    let r = tune_op::<SpmmOp>(spec, a, &[feat]);
    if !r.from_cache {
        // In debug builds, verify the tuned operator actually computes
        // SpMM (compiled-executor path, amortized by the kernel cache).
        debug_assert!(functional_check_spmm(a, feat), "tuned SpMM failed the functional check");
    }
    TuneResult { config: r.config, report: r.report, trials: r.trials, from_cache: r.from_cache }
}

/// Two-phase measured tuning for SpMM: the simulator prunes the joint
/// space to a shortlist, then the measured evaluator compiles each
/// survivor through `ir::exec::Runtime` and wall-clock-times real
/// executions. The untuned default CSR schedule is always measured too, so
/// the winner's measured time never exceeds the untuned baseline. Cached
/// by sparsity fingerprint: a second tune of the same matrix performs zero
/// new kernel compilations.
#[must_use]
pub fn tune_spmm_measured(
    spec: &GpuSpec,
    a: &Csr,
    feat: usize,
    opts: MeasureOpts,
) -> MeasuredTuneResult {
    // Measurement controls are part of the decision's identity: a retune
    // with more repeats or a wider shortlist must not hit the old entry.
    let key =
        tune_key("spmm", "measured", spec, a, vec![feat, opts.warmup, opts.repeat, opts.shortlist]);
    let (mut result, hit) = spmm_measured_cache().get_or_insert_with(key, || {
        // Phase 1: simulator pruning over the full joint space.
        let sim = tune(&SpmmSpace::joint(a), &SpmmSimEvaluator::new(spec, a, feat))
            .expect("non-empty SpMM search space");
        let mut ranked = sim.trials.clone();
        ranked.sort_by(|x, y| x.score.total_cmp(&y.score));
        let mut shortlist: Vec<SpmmConfig> =
            ranked.iter().take(opts.shortlist.max(1)).map(|t| t.candidate).collect();
        let default = SpmmConfig::default_csr();
        if !shortlist.contains(&default) {
            shortlist.push(default);
        }
        // Phase 2: wall-clock measurement through the compiled executor.
        let evaluator = SpmmMeasuredEvaluator::new(a, feat, opts);
        let measured = tune(&ListSpace(shortlist), &evaluator)
            .expect("the default CSR schedule always measures");
        let default_seconds = measured
            .trials
            .iter()
            .find(|t| t.candidate == default)
            .map_or(f64::INFINITY, |t| t.score);
        MeasuredTuneResult {
            config: measured.best.candidate,
            seconds: measured.best.score,
            default_seconds,
            sim_trials: sim.trials.len(),
            measured: measured.trials,
            from_cache: false,
        }
    });
    result.from_cache = hit;
    result
}

/// Tune the SDDMM schedule (§4.2.2) under the simulator — a thin typed
/// wrapper over the generic [`tune_op`] path, cached by sparsity
/// fingerprint.
#[must_use]
pub fn tune_sddmm(spec: &GpuSpec, a: &Csr, feat: usize) -> SddmmTuneResult {
    let r = tune_op::<SddmmOp>(spec, a, &[feat]);
    SddmmTuneResult {
        params: r.config,
        report: r.report,
        trials: r.trials,
        from_cache: r.from_cache,
    }
}

/// Tune the BSR block size for a sparse-attention mask (§4.3.1: "the
/// sparse matrices used in sparse attentions … have a block-sparse
/// pattern"; SparseTIR searches the block granularity while Triton fixes
/// 64). A thin typed wrapper over the generic [`tune_op`] path; returns
/// `(block, report)` of the fastest candidate, cached by mask
/// fingerprint.
#[must_use]
pub fn tune_attention_block(
    spec: &GpuSpec,
    mask: &Csr,
    feat: usize,
    heads: usize,
) -> (usize, KernelReport) {
    let r = tune_op::<AttentionOp>(spec, mask, &[feat, heads]);
    (r.config.block, r.report)
}

/// Functional spot-check of the tuned operator through the slot-compiled
/// kernel cache: the lowered IR compiles once per distinct function and
/// is reused across trials and repeated tuning runs, so this costs one
/// compilation plus one (parallel) execution instead of a fresh
/// tree-walking interpretation per call.
#[must_use]
pub fn functional_check_spmm(a: &Csr, feat: usize) -> bool {
    let mut rng = gen::rng(0xB0B);
    let x = gen::random_dense(a.cols(), feat, &mut rng);
    match (csr_spmm_execute(a, &x), a.spmm(&x)) {
        (Ok(got), Ok(want)) => got.approx_eq(&want, 1e-3),
        _ => false,
    }
}

/// Generic random search over an arbitrary space: draws `budget` samples
/// via `sample` and keeps the one minimizing `evaluate`.
pub fn random_search<C>(
    budget: usize,
    mut sample: impl FnMut(usize) -> C,
    mut evaluate: impl FnMut(&C) -> f64,
) -> Option<(C, f64)> {
    let mut best: Option<(C, f64)> = None;
    for i in 0..budget {
        let cand = sample(i);
        let score = evaluate(&cand);
        if best.as_ref().is_none_or(|(_, b)| score < *b) {
            best = Some((cand, score));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn power_law(n: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.5 / (u + 0.004)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn tuning_explores_both_arms_and_beats_defaults() {
        let a = power_law(1500, 17);
        let spec = GpuSpec::v100();
        let result = tune_spmm(&spec, &a, 64);
        assert!(result.trials >= 20, "trials {}", result.trials);
        // The tuned configuration is at least as fast as the untuned CSR
        // default.
        let default_time =
            simulate_kernel(&spec, &csr_spmm_plan(&a, 64, CsrSpmmParams::default(), "d")).time_ms;
        assert!(result.report.time_ms <= default_time);
    }

    #[test]
    fn tuning_picks_hyb_on_skewed_graphs() {
        let a = power_law(2500, 19);
        let spec = GpuSpec::v100();
        let result = tune_spmm(&spec, &a, 64);
        assert!(
            result.config.col_parts.is_some(),
            "expected a composable format on a skewed graph, got {:?}",
            result.config
        );
    }

    #[test]
    fn sim_tuning_caches_by_fingerprint() {
        let a = power_law(400, 27);
        let spec = GpuSpec::v100();
        let r1 = tune_spmm(&spec, &a, 32);
        assert!(!r1.from_cache);
        let r2 = tune_spmm(&spec, &a, 32);
        assert!(r2.from_cache, "second tune of the same matrix must hit the TuneCache");
        assert_eq!(r1.config, r2.config);
        assert_eq!(r1.trials, r2.trials);
        // Same structure, different feature width → distinct decision.
        assert!(!tune_spmm(&spec, &a, 16).from_cache);
    }

    #[test]
    fn measured_tuning_beats_default_and_caches_with_zero_recompilation() {
        use sparsetir_ir::exec::Runtime;
        let a = power_law(500, 29);
        let spec = GpuSpec::v100();
        let opts = MeasureOpts::default();
        let r1 = tune_spmm_measured(&spec, &a, 32, opts);
        assert!(!r1.from_cache);
        // The untuned default CSR schedule was measured in the same pass,
        // and the winner is the minimum over a set containing it.
        assert!(r1.default_seconds.is_finite());
        assert!(
            r1.seconds <= r1.default_seconds,
            "measured winner {}s vs untuned default {}s",
            r1.seconds,
            r1.default_seconds
        );
        assert!(r1.sim_trials >= 20, "sim pruning pass must cover the joint space");
        // Second tune of the same matrix: TuneCache hit, zero new kernel
        // compilations in the executor runtime.
        let compiles = Runtime::global().compilations();
        let r2 = tune_spmm_measured(&spec, &a, 32, opts);
        assert!(r2.from_cache, "second measured tune must hit the TuneCache");
        assert_eq!(r2.config, r1.config);
        assert_eq!(
            Runtime::global().compilations(),
            compiles,
            "a TuneCache hit must not compile any kernel"
        );
    }

    #[test]
    fn attention_block_tuning_picks_a_candidate() {
        // A band mask digitizes best at fine granularity when the band is
        // narrow; the tuner must return one of the searched blocks and be
        // no slower than Triton's fixed 64.
        let mut coo = Coo::new(512, 512);
        for i in 0..512usize {
            let lo = i.saturating_sub(16);
            let hi = (i + 16).min(511);
            for j in lo..=hi {
                coo.push(i as u32, j as u32, 1.0);
            }
        }
        let mask = Csr::from_coo(&coo);
        let spec = GpuSpec::v100();
        let (block, report) = tune_attention_block(&spec, &mask, 64, 4);
        assert!([16usize, 32, 64].contains(&block));
        let fixed64 = simulate_kernel(
            &spec,
            &batched_bsr_spmm_plan(
                &Bsr::from_csr(&mask, 64).unwrap(),
                64,
                4,
                SPARSETIR_BSR_EFFICIENCY,
                "fixed",
            ),
        );
        assert!(report.time_ms <= fixed64.time_ms);
    }

    #[test]
    fn sddmm_tuning_matches_kernel_grid() {
        let a = power_law(600, 33);
        let spec = GpuSpec::v100();
        let r = tune_sddmm(&spec, &a, 64);
        assert_eq!(r.trials, sddmm_param_candidates().len());
        // The engine-picked schedule matches the kernels-crate grid search.
        let grid = tuned_sddmm_time(&spec, &a, 64);
        assert!((r.report.time_ms - grid.time_ms).abs() < 1e-12);
        assert!(tune_sddmm(&spec, &a, 64).from_cache);
    }

    #[test]
    fn engine_parallel_and_serial_agree() {
        struct Range;
        impl SearchSpace for Range {
            type Candidate = i64;
            fn candidates(&self) -> Vec<i64> {
                (0..40).collect()
            }
        }
        struct Par;
        impl Evaluator<i64> for Par {
            fn evaluate(&self, c: &i64) -> Option<f64> {
                if *c % 7 == 3 {
                    None // infeasible candidates are skipped
                } else {
                    Some(((c - 18) * (c - 18)) as f64)
                }
            }
        }
        struct Ser;
        impl Evaluator<i64> for Ser {
            fn evaluate(&self, c: &i64) -> Option<f64> {
                Par.evaluate(c)
            }
            fn parallel(&self) -> bool {
                false
            }
        }
        let p = tune(&Range, &Par).unwrap();
        let s = tune(&Range, &Ser).unwrap();
        assert_eq!(p.best.candidate, 18);
        assert_eq!(s.best.candidate, 18);
        assert_eq!(p.trials.len(), s.trials.len());
        assert!(p.trials.iter().all(|t| t.candidate % 7 != 3));
    }

    #[test]
    fn functional_check_uses_kernel_cache() {
        let a = power_law(300, 23);
        // First call compiles the lowered IR; the second must hit the
        // global kernel cache (same function fingerprint).
        assert!(functional_check_spmm(&a, 16));
        let before = sparsetir_ir::exec::Runtime::global().cached();
        assert!(functional_check_spmm(&a, 16));
        let after = sparsetir_ir::exec::Runtime::global().cached();
        assert_eq!(before, after, "second check must not recompile");
    }

    #[test]
    fn random_search_minimizes() {
        let best = random_search(64, |i| i as f64, |x| (x - 13.0).abs()).unwrap();
        assert_eq!(best.0, 13.0);
    }

    #[test]
    fn random_search_empty_budget_is_none() {
        assert!(random_search(0, |i| i, |_| 0.0).is_none());
    }
}
