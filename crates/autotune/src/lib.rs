//! # sparsetir-autotune
//!
//! The performance-tuning system of §2: SparseTIR "constructs a joint
//! search space of composable formats and composable transformations".
//! Here the space is the cross product of format parameters (the `c` of
//! `hyb(c, k)` over `{1, 2, 4, 8, 16}`, `k` defaulted to
//! `⌈log2(nnz/n)⌉` as §4.2.1 prescribes, plus the no-decomposition
//! option) and schedule parameters (rows per block, vector width,
//! register caching), evaluated by the GPU simulator — amortizable
//! because the compiled operator is reused across a training run
//! (§2: "the overhead can be amortized").

#![warn(missing_docs)]

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// One point of the joint SpMM search space.
#[derive(Debug, Clone, Copy)]
pub struct SpmmConfig {
    /// Column partitions `c` (`None` = no format decomposition).
    pub col_parts: Option<usize>,
    /// Bucket exponent `k` (ignored without decomposition).
    pub bucket_k: u32,
    /// Schedule parameters.
    pub params: CsrSpmmParams,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Winning configuration.
    pub config: SpmmConfig,
    /// Its simulated report.
    pub report: KernelReport,
    /// Number of configurations evaluated.
    pub trials: usize,
}

/// The paper's column-partition candidates (§4.2.1: "we search for the
/// best c over {1, 2, 4, 8, 16}").
#[must_use]
pub fn col_part_candidates() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// Functional spot-check of the tuned operator through the slot-compiled
/// kernel cache: the lowered IR compiles once per distinct function and
/// is reused across trials and repeated tuning runs, so this costs one
/// compilation plus one (parallel) execution instead of a fresh
/// tree-walking interpretation per call.
#[must_use]
pub fn functional_check_spmm(a: &Csr, feat: usize) -> bool {
    let mut rng = gen::rng(0xB0B);
    let x = gen::random_dense(a.cols(), feat, &mut rng);
    match (csr_spmm_execute(a, &x), a.spmm(&x)) {
        (Ok(got), Ok(want)) => got.approx_eq(&want, 1e-3),
        _ => false,
    }
}

/// Grid-search the joint format × schedule space for SpMM on `a` at
/// feature width `feat`, returning the fastest configuration under the
/// simulator.
#[must_use]
pub fn tune_spmm(spec: &GpuSpec, a: &Csr, feat: usize) -> TuneResult {
    let schedule_candidates = [
        CsrSpmmParams::default(),
        CsrSpmmParams { rows_per_block: 8, ..Default::default() },
        CsrSpmmParams { rows_per_block: 2, ..Default::default() },
        CsrSpmmParams { vec_width: 2, ..Default::default() },
    ];
    let k = default_k(a);
    let mut best: Option<(SpmmConfig, KernelReport)> = None;
    let mut trials = 0usize;
    // No-decomposition arm (the SparseTIR(no-hyb) variant).
    for params in schedule_candidates {
        let report = simulate_kernel(spec, &csr_spmm_plan(a, feat, params, "tune_csr"));
        trials += 1;
        if best.as_ref().is_none_or(|(_, b)| report.time_ms < b.time_ms) {
            best = Some((SpmmConfig { col_parts: None, bucket_k: k, params }, report));
        }
    }
    // Composable-format arms.
    for c in col_part_candidates() {
        let Ok(hyb) = Hyb::from_csr(a, c, k) else { continue };
        for params in schedule_candidates {
            let report = hyb_spmm_time(spec, &hyb, feat, params);
            trials += 1;
            if best.as_ref().is_none_or(|(_, b)| report.time_ms < b.time_ms) {
                best = Some((SpmmConfig { col_parts: Some(c), bucket_k: k, params }, report));
            }
        }
    }
    let (config, report) = best.expect("non-empty search space");
    // In debug builds, verify the tuned operator actually computes SpMM
    // (compiled-executor path, amortized by the kernel cache).
    debug_assert!(functional_check_spmm(a, feat), "tuned SpMM failed the functional check");
    TuneResult { config, report, trials }
}

/// Tune the BSR block size for a sparse-attention mask (§4.3.1: "the
/// sparse matrices used in sparse attentions … have a block-sparse
/// pattern"; SparseTIR searches the block granularity while Triton fixes
/// 64). Returns `(block, report)` of the fastest candidate.
#[must_use]
pub fn tune_attention_block(
    spec: &GpuSpec,
    mask: &Csr,
    feat: usize,
    heads: usize,
) -> (usize, KernelReport) {
    let mut best: Option<(usize, KernelReport)> = None;
    for block in [16usize, 32, 64] {
        let Ok(bsr) = Bsr::from_csr(mask, block) else { continue };
        let r = simulate_kernel(
            spec,
            &batched_bsr_spmm_plan(&bsr, feat, heads, SPARSETIR_BSR_EFFICIENCY, "tune_attn"),
        );
        if best.as_ref().is_none_or(|(_, b)| r.time_ms < b.time_ms) {
            best = Some((block, r));
        }
    }
    best.expect("non-empty block candidates")
}

/// Generic random search over an arbitrary space: draws `budget` samples
/// via `sample` and keeps the one minimizing `evaluate`.
pub fn random_search<C>(
    budget: usize,
    mut sample: impl FnMut(usize) -> C,
    mut evaluate: impl FnMut(&C) -> f64,
) -> Option<(C, f64)> {
    let mut best: Option<(C, f64)> = None;
    for i in 0..budget {
        let cand = sample(i);
        let score = evaluate(&cand);
        if best.as_ref().is_none_or(|(_, b)| score < *b) {
            best = Some((cand, score));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn power_law(n: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.5 / (u + 0.004)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn tuning_explores_both_arms_and_beats_defaults() {
        let a = power_law(1500, 17);
        let spec = GpuSpec::v100();
        let result = tune_spmm(&spec, &a, 64);
        assert!(result.trials >= 20, "trials {}", result.trials);
        // The tuned configuration is at least as fast as the untuned CSR
        // default.
        let default_time =
            simulate_kernel(&spec, &csr_spmm_plan(&a, 64, CsrSpmmParams::default(), "d")).time_ms;
        assert!(result.report.time_ms <= default_time);
    }

    #[test]
    fn tuning_picks_hyb_on_skewed_graphs() {
        let a = power_law(2500, 19);
        let spec = GpuSpec::v100();
        let result = tune_spmm(&spec, &a, 64);
        assert!(
            result.config.col_parts.is_some(),
            "expected a composable format on a skewed graph, got {:?}",
            result.config
        );
    }

    #[test]
    fn attention_block_tuning_picks_a_candidate() {
        // A band mask digitizes best at fine granularity when the band is
        // narrow; the tuner must return one of the searched blocks and be
        // no slower than Triton's fixed 64.
        let mut coo = Coo::new(512, 512);
        for i in 0..512usize {
            let lo = i.saturating_sub(16);
            let hi = (i + 16).min(511);
            for j in lo..=hi {
                coo.push(i as u32, j as u32, 1.0);
            }
        }
        let mask = Csr::from_coo(&coo);
        let spec = GpuSpec::v100();
        let (block, report) = tune_attention_block(&spec, &mask, 64, 4);
        assert!([16usize, 32, 64].contains(&block));
        let fixed64 = simulate_kernel(
            &spec,
            &batched_bsr_spmm_plan(
                &Bsr::from_csr(&mask, 64).unwrap(),
                64,
                4,
                SPARSETIR_BSR_EFFICIENCY,
                "fixed",
            ),
        );
        assert!(report.time_ms <= fixed64.time_ms);
    }

    #[test]
    fn functional_check_uses_kernel_cache() {
        let a = power_law(300, 23);
        // First call compiles the lowered IR; the second must hit the
        // global kernel cache (same function fingerprint).
        assert!(functional_check_spmm(&a, 16));
        let before = sparsetir_ir::exec::Runtime::global().cached();
        assert!(functional_check_spmm(&a, 16));
        let after = sparsetir_ir::exec::Runtime::global().cached();
        assert_eq!(before, after, "second check must not recompile");
    }

    #[test]
    fn random_search_minimizes() {
        let best = random_search(64, |i| i as f64, |x| (x - 13.0).abs()).unwrap();
        assert_eq!(best.0, 13.0);
    }

    #[test]
    fn random_search_empty_budget_is_none() {
        assert!(random_search(0, |i| i, |_| 0.0).is_none());
    }
}
