//! The [`TuneCache`]: tuning results keyed by a structural sparsity
//! fingerprint, so repeated tunes of the same matrix (the common case in a
//! training run — §2: "the overhead can be amortized") hit cache with zero
//! recompilation and zero re-measurement.

use sparsetir_smat::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Structural summary of a sparse matrix: dimensions, non-zero count and
/// the power-of-two degree histogram. Two matrices with the same
/// fingerprint have the same shape of tuning problem, so a cached decision
/// transfers. Note the asymmetry: the *configuration* transfers between
/// colliding matrices by design, but any absolute timings stored alongside
/// it were observed on the first matrix — treat them as representative,
/// not exact, for a collider.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SparsityFingerprint {
    /// Rows of the matrix.
    pub rows: usize,
    /// Columns of the matrix.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `Csr::degree_histogram_log2` — the degree-skew summary that drives
    /// bucketing decisions.
    pub degree_hist: Vec<usize>,
}

impl SparsityFingerprint {
    /// Fingerprint a CSR matrix.
    #[must_use]
    pub fn of(a: &Csr) -> SparsityFingerprint {
        SparsityFingerprint {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            degree_hist: a.degree_histogram_log2(),
        }
    }
}

/// Cache key: workload kind, evaluation backend, device, extra workload
/// parameters (feature width, heads, …) and the matrix fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Workload kind (`"spmm"`, `"sddmm"`, `"attention"`).
    pub workload: &'static str,
    /// Evaluation backend (`"gpusim"` or `"measured"`).
    pub backend: &'static str,
    /// `GpuSpec::device_id` of the device tuned for.
    pub device: &'static str,
    /// Extra workload parameters (feature width, heads, …).
    pub extra: Vec<usize>,
    /// The matrix fingerprint.
    pub fingerprint: SparsityFingerprint,
}

/// Thread-safe map from [`TuneKey`] to a tuning result, with hit/miss
/// statistics.
#[derive(Default)]
pub struct TuneCache<V> {
    map: Mutex<HashMap<TuneKey, V>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V: Clone> TuneCache<V> {
    /// Empty cache.
    #[must_use]
    pub fn new() -> TuneCache<V> {
        TuneCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Read-only probe: the cached value for `key`, counting a hit when
    /// present (a miss is not counted — callers falling through to
    /// [`TuneCache::get_or_insert_with`] would double-count it). Lets a
    /// caller with its own single-flight guard serve hits without taking
    /// that guard.
    pub fn get(&self, key: &TuneKey) -> Option<V> {
        let v = self.map.lock().unwrap().get(key).cloned();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Look up `key`, computing and inserting on a miss. Returns the value
    /// and whether it was a hit. `compute` runs outside the lock, so a
    /// slow tuning run never blocks unrelated lookups. No single-flight
    /// guard is provided: concurrent callers racing on the same key each
    /// pay the compute and the last insert wins (for the measured backend
    /// the racing results may differ by timing noise).
    pub fn get_or_insert_with(&self, key: TuneKey, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.map.lock().unwrap().insert(key, v.clone());
        (v, false)
    }

    /// Number of cached decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to tune.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: usize) -> TuneKey {
        TuneKey {
            workload: "spmm",
            backend: "gpusim",
            device: "V100",
            extra: vec![tag],
            fingerprint: SparsityFingerprint { rows: 4, cols: 4, nnz: 2, degree_hist: vec![2, 2] },
        }
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = TuneCache::new();
        let (v, hit) = cache.get_or_insert_with(key(1), || 42);
        assert!(!hit);
        assert_eq!(v, 42);
        let (v, hit) = cache.get_or_insert_with(key(1), || unreachable!("must hit"));
        assert!(hit);
        assert_eq!(v, 42);
        let (_, hit) = cache.get_or_insert_with(key(2), || 7);
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
    }

    #[test]
    fn fingerprint_distinguishes_degree_distributions() {
        let a = Csr::new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        let b = Csr::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap();
        assert_ne!(SparsityFingerprint::of(&a), SparsityFingerprint::of(&b));
    }
}
