//! The [`TuneCache`]: tuning results keyed by a structural sparsity
//! fingerprint, so repeated tunes of the same matrix (the common case in a
//! training run — §2: "the overhead can be amortized") hit cache with zero
//! recompilation and zero re-measurement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// The fingerprint moved into `sparsetir-smat` (it is a pure structural
// summary) so the op layer in `sparsetir-kernels` can key on it without a
// dependency cycle; re-exported here for the existing tuner-facing path.
pub use sparsetir_smat::fingerprint::SparsityFingerprint;

/// Cache key: workload kind, evaluation backend, device, extra workload
/// parameters (feature width, heads, …) and the matrix fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Workload kind (`"spmm"`, `"sddmm"`, `"attention"`).
    pub workload: &'static str,
    /// Evaluation backend (`"gpusim"` or `"measured"`).
    pub backend: &'static str,
    /// `GpuSpec::device_id` of the device tuned for.
    pub device: &'static str,
    /// Extra workload parameters (feature width, heads, …).
    pub extra: Vec<usize>,
    /// The matrix fingerprint.
    pub fingerprint: SparsityFingerprint,
}

/// Thread-safe map from [`TuneKey`] to a tuning result, with hit/miss
/// statistics.
#[derive(Default)]
pub struct TuneCache<V> {
    map: Mutex<HashMap<TuneKey, V>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V: Clone> TuneCache<V> {
    /// Empty cache.
    #[must_use]
    pub fn new() -> TuneCache<V> {
        TuneCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Read-only probe: the cached value for `key`, counting a hit when
    /// present (a miss is not counted — callers falling through to
    /// [`TuneCache::get_or_insert_with`] would double-count it). Lets a
    /// caller with its own single-flight guard serve hits without taking
    /// that guard.
    pub fn get(&self, key: &TuneKey) -> Option<V> {
        let v = self.map.lock().unwrap().get(key).cloned();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Look up `key`, computing and inserting on a miss. Returns the value
    /// and whether it was a hit. `compute` runs outside the lock, so a
    /// slow tuning run never blocks unrelated lookups. No single-flight
    /// guard is provided: concurrent callers racing on the same key each
    /// pay the compute and the last insert wins (for the measured backend
    /// the racing results may differ by timing noise).
    pub fn get_or_insert_with(&self, key: TuneKey, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.map.lock().unwrap().insert(key, v.clone());
        (v, false)
    }

    /// Unconditionally install (or overwrite) the decision for `key`,
    /// without touching the hit/miss statistics. This is the atomic-swap
    /// primitive of stale-while-retune serving: the engine pre-seeds a new
    /// fingerprint's key with the stale-but-correct config so lookups never
    /// stall, then a background retune overwrites it in one locked insert —
    /// readers see either the stale or the fresh decision, never a gap.
    pub fn insert(&self, key: TuneKey, value: V) {
        self.map.lock().unwrap().insert(key, value);
    }

    /// Read-only probe that counts neither a hit nor a miss (for
    /// bookkeeping paths like retune seeding, which must not skew the
    /// serving statistics).
    pub fn peek(&self, key: &TuneKey) -> Option<V> {
        self.map.lock().unwrap().get(key).cloned()
    }

    /// Number of cached decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to tune.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: usize) -> TuneKey {
        TuneKey {
            workload: "spmm",
            backend: "gpusim",
            device: "V100",
            extra: vec![tag],
            fingerprint: SparsityFingerprint {
                rows: 4,
                cols: 4,
                nnz: 2,
                degree_hist: vec![2, 2],
                relation_dims: vec![],
            },
        }
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = TuneCache::new();
        let (v, hit) = cache.get_or_insert_with(key(1), || 42);
        assert!(!hit);
        assert_eq!(v, 42);
        let (v, hit) = cache.get_or_insert_with(key(1), || unreachable!("must hit"));
        assert!(hit);
        assert_eq!(v, 42);
        let (_, hit) = cache.get_or_insert_with(key(2), || 7);
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
    }

    #[test]
    fn insert_overwrites_atomically_without_stats() {
        let cache = TuneCache::new();
        cache.insert(key(1), 42); // pre-seed (stale config under new key)
        assert_eq!(cache.peek(&key(1)), Some(42));
        cache.insert(key(1), 43); // background retune swaps it
        assert_eq!(cache.peek(&key(1)), Some(43));
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "seeding must not skew stats");
        let (v, hit) = cache.get_or_insert_with(key(1), || unreachable!("seeded"));
        assert!(hit);
        assert_eq!(v, 43);
    }
}
