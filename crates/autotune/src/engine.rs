//! The generic tuning engine: a [`SearchSpace`] enumerates candidates, an
//! [`Evaluator`] scores them, and [`tune`] keeps the minimum — evaluating
//! trials in parallel across OS threads when the evaluator allows it.
//! SpMM, SDDMM and block-sparse attention all tune through this one engine
//! instead of bespoke grid loops.

/// A finite space of tuning candidates.
pub trait SearchSpace {
    /// One point of the space.
    type Candidate: Clone + Send + Sync;

    /// Enumerate every candidate in deterministic order. Score ties
    /// resolve to the earliest candidate, so put preferred defaults first.
    fn candidates(&self) -> Vec<Self::Candidate>;
}

/// Scores candidates; smaller is better. `None` marks an infeasible
/// candidate (e.g. a decomposition that fails to build).
pub trait Evaluator<C>: Sync {
    /// Cost of one candidate.
    fn evaluate(&self, candidate: &C) -> Option<f64>;

    /// Whether trials may run concurrently. Wall-clock (measured)
    /// evaluators return `false` so timings don't perturb each other.
    fn parallel(&self) -> bool {
        true
    }
}

/// An explicit candidate list as a space — used for measured shortlists
/// after a simulator pruning pass.
pub struct ListSpace<C>(pub Vec<C>);

impl<C: Clone + Send + Sync> SearchSpace for ListSpace<C> {
    type Candidate = C;

    fn candidates(&self) -> Vec<C> {
        self.0.clone()
    }
}

/// One scored trial.
#[derive(Debug, Clone)]
pub struct Trial<C> {
    /// The evaluated candidate.
    pub candidate: C,
    /// Its cost (milliseconds under the simulator, seconds when measured).
    pub score: f64,
}

/// Result of a [`tune`] run.
#[derive(Debug, Clone)]
pub struct TuneOutcome<C> {
    /// The minimum-cost trial (earliest on ties).
    pub best: Trial<C>,
    /// Every feasible trial, in candidate order.
    pub trials: Vec<Trial<C>>,
}

/// Evaluate every candidate of `space` with `evaluator` and return the
/// best, or `None` when no candidate is feasible.
pub fn tune<S, E>(space: &S, evaluator: &E) -> Option<TuneOutcome<S::Candidate>>
where
    S: SearchSpace,
    E: Evaluator<S::Candidate>,
{
    let candidates = space.candidates();
    let scores = if evaluator.parallel() && candidates.len() > 1 {
        parallel_scores(&candidates, evaluator)
    } else {
        candidates.iter().map(|c| evaluator.evaluate(c)).collect()
    };
    let trials: Vec<Trial<S::Candidate>> = candidates
        .into_iter()
        .zip(scores)
        .filter_map(|(candidate, score)| score.map(|score| Trial { candidate, score }))
        .collect();
    let mut best: Option<&Trial<S::Candidate>> = None;
    for t in &trials {
        if best.is_none_or(|b| t.score < b.score) {
            best = Some(t);
        }
    }
    let best = best.cloned()?;
    Some(TuneOutcome { best, trials })
}

/// Score `candidates` across OS threads (rayon is unavailable offline),
/// preserving candidate order in the returned vector.
fn parallel_scores<C, E>(candidates: &[C], evaluator: &E) -> Vec<Option<f64>>
where
    C: Sync,
    E: Evaluator<C>,
{
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let chunk = candidates.len().div_ceil(threads.clamp(1, candidates.len()));
    let mut scores = vec![None; candidates.len()];
    std::thread::scope(|s| {
        for (cands, out) in candidates.chunks(chunk).zip(scores.chunks_mut(chunk)) {
            s.spawn(move || {
                for (c, slot) in cands.iter().zip(out.iter_mut()) {
                    *slot = evaluator.evaluate(c);
                }
            });
        }
    });
    scores
}
