//! Evaluator backends: the GPU simulator (cheap pruning pass) and the
//! *measured* evaluator, which lowers each candidate, compiles it through
//! the slot-compiled `ir::exec::Runtime`, and wall-clock-times real
//! executions with warmup/repeat control.

use crate::engine::Evaluator;
use sparsetir_gpusim::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Memoized `(c, k) → hyb decomposition` table (`None` = infeasible).
type HybMemo = HashMap<(usize, u32), Option<Arc<Hyb>>>;

/// Simulator-backed SpMM evaluator. Decompositions are memoized per
/// `(c, k)` so the four schedule candidates of each format arm share one
/// `Hyb::from_csr` (the hyb-decomposition hot path every trial pays).
pub struct SpmmSimEvaluator<'a> {
    spec: &'a GpuSpec,
    matrix: &'a Csr,
    feat: usize,
    hybs: Mutex<HybMemo>,
}

impl<'a> SpmmSimEvaluator<'a> {
    /// Evaluator for `matrix · X` at feature width `feat` on `spec`.
    #[must_use]
    pub fn new(spec: &'a GpuSpec, matrix: &'a Csr, feat: usize) -> SpmmSimEvaluator<'a> {
        SpmmSimEvaluator { spec, matrix, feat, hybs: Mutex::new(HybMemo::new()) }
    }

    fn hyb(&self, c: usize, k: u32) -> Option<Arc<Hyb>> {
        if let Some(h) = self.hybs.lock().unwrap().get(&(c, k)) {
            return h.clone();
        }
        // Decompose outside the lock so distinct (c, k) arms build
        // concurrently; a racing duplicate is cheaper than serializing
        // every hyb trial on one mutex.
        let h = Hyb::from_csr(self.matrix, c, k).ok().map(Arc::new);
        self.hybs.lock().unwrap().entry((c, k)).or_insert(h).clone()
    }
}

impl Evaluator<SpmmConfig> for SpmmSimEvaluator<'_> {
    fn evaluate(&self, config: &SpmmConfig) -> Option<f64> {
        match config.col_parts {
            None => Some(
                simulate_kernel(
                    self.spec,
                    &csr_spmm_plan(self.matrix, self.feat, config.params, "tune_csr"),
                )
                .time_ms,
            ),
            Some(c) => {
                let hyb = self.hyb(c, config.bucket_k)?;
                Some(hyb_spmm_time(self.spec, &hyb, self.feat, config.params).time_ms)
            }
        }
    }
}

/// Wall-clock controls of the measured evaluator.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Untimed warmup executions per candidate.
    pub warmup: usize,
    /// Timed repetitions; the minimum is kept.
    pub repeat: usize,
    /// Candidates surviving the simulator pruning pass into measurement.
    pub shortlist: usize,
}

impl Default for MeasureOpts {
    fn default() -> MeasureOpts {
        MeasureOpts { warmup: 1, repeat: 3, shortlist: 4 }
    }
}

/// Measured SpMM evaluator: each candidate is lowered (CSR schedule or hyb
/// decomposition), compiled once through the global [`Runtime`] kernel
/// cache, then executed for real against a deterministic dense operand.
/// Trials run serially ([`Evaluator::parallel`] is `false`) so concurrent
/// timings don't perturb each other.
pub struct SpmmMeasuredEvaluator<'a> {
    matrix: &'a Csr,
    x: Dense,
    opts: MeasureOpts,
}

impl<'a> SpmmMeasuredEvaluator<'a> {
    /// Evaluator for `matrix · X` at feature width `feat`; the dense
    /// operand is seeded deterministically from the matrix structure.
    #[must_use]
    pub fn new(matrix: &'a Csr, feat: usize, opts: MeasureOpts) -> SpmmMeasuredEvaluator<'a> {
        let mut rng = gen::rng(0x7E57 ^ matrix.nnz() as u64);
        let x = gen::random_dense(matrix.cols(), feat, &mut rng);
        SpmmMeasuredEvaluator { matrix, x, opts }
    }

    /// Measure one configuration: compile (or reuse from the kernel
    /// cache), warm up, then keep the minimum of `repeat` timed runs in
    /// seconds. `None` when the candidate fails to lower or execute.
    #[must_use]
    pub fn measure(&self, config: &SpmmConfig) -> Option<f64> {
        let mut prepared = prepare_spmm(self.matrix, &self.x, config).ok()?;
        let kernel = Runtime::global().compile(&prepared.func).ok()?;
        let scalars = HashMap::new();
        for _ in 0..self.opts.warmup {
            prepared.reset_output();
            kernel.run(&scalars, &mut prepared.bindings).ok()?;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.opts.repeat.max(1) {
            prepared.reset_output();
            let t0 = Instant::now();
            kernel.run(&scalars, &mut prepared.bindings).ok()?;
            best = best.min(t0.elapsed().as_secs_f64());
        }
        Some(best)
    }
}

impl Evaluator<SpmmConfig> for SpmmMeasuredEvaluator<'_> {
    fn evaluate(&self, config: &SpmmConfig) -> Option<f64> {
        self.measure(config)
    }

    fn parallel(&self) -> bool {
        false
    }
}

/// Simulator-backed SDDMM evaluator.
pub struct SddmmSimEvaluator<'a> {
    /// Target device.
    pub spec: &'a GpuSpec,
    /// Sparsity pattern.
    pub matrix: &'a Csr,
    /// Feature width.
    pub feat: usize,
}

impl Evaluator<SddmmParams> for SddmmSimEvaluator<'_> {
    fn evaluate(&self, params: &SddmmParams) -> Option<f64> {
        Some(
            simulate_kernel(
                self.spec,
                &sddmm_plan(self.matrix, self.feat, *params, "sparsetir_sddmm"),
            )
            .time_ms,
        )
    }
}

/// Simulator-backed block-sparse attention evaluator over BSR block sizes.
pub struct AttentionSimEvaluator<'a> {
    /// Target device.
    pub spec: &'a GpuSpec,
    /// Attention mask.
    pub mask: &'a Csr,
    /// Feature width per head.
    pub feat: usize,
    /// Number of heads.
    pub heads: usize,
}

impl Evaluator<usize> for AttentionSimEvaluator<'_> {
    fn evaluate(&self, block: &usize) -> Option<f64> {
        let bsr = Bsr::from_csr(self.mask, *block).ok()?;
        Some(
            simulate_kernel(
                self.spec,
                &batched_bsr_spmm_plan(
                    &bsr,
                    self.feat,
                    self.heads,
                    SPARSETIR_BSR_EFFICIENCY,
                    "tune_attn",
                ),
            )
            .time_ms,
        )
    }
}
