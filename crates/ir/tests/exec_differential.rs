//! Differential property suite: every compiled executor — the generic
//! tree walk, the dense-lane **fused** tree build, the flat **bytecode**
//! stream, and bytecode with fused **superinstructions** — must produce
//! **bit-identical** results to the reference interpreter on random
//! lowered programs over F32 and I32 buffers, including thread-bound
//! reduction loops and parallel-dispatched `blockIdx` loops.
//!
//! Programs are drawn in five families:
//!
//! * `serial_nest` — arbitrary (even colliding) stores under serial /
//!   `threadIdx` / vectorized loops, wide expression coverage;
//! * `block_striped` — `blockIdx.x`-bound outer loop whose stores stripe
//!   the output disjointly per block (the spatial contract that licenses
//!   parallel dispatch);
//! * `block_reduction` — a reduction block whose reduce axis is bound to
//!   `threadIdx.x` under a `blockIdx.x` spatial loop (§3.3 semantics);
//! * `scheduled_nest` — random `split`/`bind`/`unroll`/`vectorize`
//!   compositions applied by the real `Schedule` machinery;
//! * `lane_kernel` — axpy/dot-shaped lane loops with random lane counts
//!   (including 1/2/3/32/33), strides, init seeding and aliasing, aimed
//!   squarely at the fused `FillLanes`/`AxpyLanes`/`DotLanes`/
//!   `GatherScaleAccumulate` microkernels and their fallback boundary.
//!
//! Every case runs five ways — interpreter, then the four backend×fusion
//! executor builds (tree / tree+fused / bytecode / bytecode+super) — and
//! each compiled kernel also runs twice (through the cache) to check
//! that frame reuse cannot leak state between invocations. Failure paths
//! are differential too: runtime bounds/probe errors must carry the same
//! message and leave the same written prefix on every executor.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparsetir_ir::prelude::*;
use sparsetir_ir::stmt::IterVar;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Bitwise comparison helpers
// ---------------------------------------------------------------------------

fn assert_bits_eq(name: &str, a: &TensorData, b: &TensorData) -> Result<(), String> {
    match (a, b) {
        (TensorData::F32(x), TensorData::F32(y)) => {
            if x.len() != y.len() {
                return Err(format!("`{name}`: length {} vs {}", x.len(), y.len()));
            }
            for (i, (xa, xb)) in x.iter().zip(y).enumerate() {
                if xa.to_bits() != xb.to_bits() {
                    return Err(format!(
                        "`{name}`[{i}]: {xa} ({:#x}) vs {xb} ({:#x})",
                        xa.to_bits(),
                        xb.to_bits()
                    ));
                }
            }
            Ok(())
        }
        (TensorData::I32(x), TensorData::I32(y)) => {
            if x != y {
                return Err(format!("`{name}`: i32 data differs"));
            }
            Ok(())
        }
        _ => Err(format!("`{name}`: storage kinds differ")),
    }
}

/// The four executor builds under differential test: every backend ×
/// fusion combination, labeled for error reporting.
const EXECUTORS: [(ExecBackend, bool, &str); 4] = [
    (ExecBackend::Tree, false, "tree"),
    (ExecBackend::Tree, true, "tree+fused"),
    (ExecBackend::Bytecode, false, "bytecode"),
    (ExecBackend::Bytecode, true, "bytecode+super"),
];

/// Run the interpreter and all four backend×fusion executor builds on
/// the same program and initial tensors; demand bit-identical tensor maps
/// afterwards. Each compiled path runs twice (cache hit + pooled frame)
/// to catch state leaking between invocations.
fn differential(
    f: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &HashMap<String, TensorData>,
) -> Result<(), String> {
    let mut interp = tensors.clone();
    eval_func(f, scalars, &mut interp).map_err(|e| format!("interpreter failed: {e}"))?;

    for (backend, fuse, label) in EXECUTORS {
        let rt = Runtime::with_options(fuse, backend);
        let kernel = rt.compile(f).map_err(|e| format!("{label} compile failed: {e}"))?;
        let mut compiled = tensors.clone();
        kernel.run(scalars, &mut compiled).map_err(|e| format!("{label} executor failed: {e}"))?;
        for (name, data) in &interp {
            let got = compiled.get(name).ok_or_else(|| format!("`{name}` missing"))?;
            assert_bits_eq(name, data, got).map_err(|e| format!("[{label}] {e}"))?;
        }

        // Second run through the cache with a pooled frame.
        let kernel2 = rt.compile(f).map_err(|e| format!("{label} recompile failed: {e}"))?;
        let mut again = tensors.clone();
        kernel2.run(scalars, &mut again).map_err(|e| format!("{label} second run failed: {e}"))?;
        for (name, data) in &interp {
            assert_bits_eq(name, data, &again[name]).map_err(|e| format!("[{label}#2] {e}"))?;
        }
    }
    Ok(())
}

/// Failure-path differential: the program must fail on every executor
/// build with the **same error message**, and every executor must leave
/// the **same written prefix** in the tensors (the in-bounds work done
/// before the error). Returns that shared error message.
fn differential_failure(
    f: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &HashMap<String, TensorData>,
) -> Result<String, String> {
    let mut first: Option<(String, HashMap<String, TensorData>)> = None;
    for (backend, fuse, label) in EXECUTORS {
        let rt = Runtime::with_options(fuse, backend);
        let kernel = rt.compile(f).map_err(|e| format!("{label} compile failed: {e}"))?;
        let mut after = tensors.clone();
        let err = match kernel.run(scalars, &mut after) {
            Err(e) => e.to_string(),
            Ok(()) => return Err(format!("[{label}] expected a runtime error, got success")),
        };
        match &first {
            None => first = Some((err, after)),
            Some((msg, prefix)) => {
                if *msg != err {
                    return Err(format!("[{label}] error `{err}` differs from `{msg}`"));
                }
                for (name, data) in prefix {
                    assert_bits_eq(name, data, &after[name])
                        .map_err(|e| format!("[{label}] written prefix diverged: {e}"))?;
                }
            }
        }
    }
    Ok(first.expect("EXECUTORS is non-empty").0)
}

// ---------------------------------------------------------------------------
// Random program generator (seeded, deterministic)
// ---------------------------------------------------------------------------

struct ProgGen {
    rng: SmallRng,
    loop_vars: Vec<Var>,
}

impl ProgGen {
    fn new(seed: u64) -> Self {
        ProgGen { rng: SmallRng::seed_from_u64(seed), loop_vars: Vec::new() }
    }

    fn small_const(&mut self) -> Expr {
        Expr::i32(self.rng.gen_range(-4i64..9))
    }

    /// Random integer expression over loop vars, `B` loads and constants.
    /// Magnitudes stay bounded so neither engine overflows `i64`.
    fn int_expr(&mut self, b: &Buffer, blen: i64, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_range(0..10) < 3 {
            return match self.rng.gen_range(0..3) {
                0 => self.small_const(),
                1 if !self.loop_vars.is_empty() => {
                    let i = self.rng.gen_range(0..self.loop_vars.len());
                    Expr::var(&self.loop_vars[i])
                }
                _ => {
                    let idx = self.int_expr(b, blen, 0) % Expr::i32(blen);
                    b.load(vec![idx])
                }
            };
        }
        let l = self.int_expr(b, blen, depth - 1);
        let r = self.int_expr(b, blen, depth - 1);
        match self.rng.gen_range(0..8) {
            0 => l + r,
            1 => l - r,
            2 => l * Expr::i32(self.rng.gen_range(-3i64..4)),
            3 => l.min(r),
            4 => l.max(r),
            5 => l % Expr::i32(self.rng.gen_range(1i64..7)),
            6 => l / Expr::i32(self.rng.gen_range(1i64..7)),
            _ => l.lt(r.clone()).select(self.int_expr(b, blen, depth - 1), r),
        }
    }

    /// Random float expression over `A` loads, casts of int expressions
    /// and constants. Casts back to int are clamped so downstream integer
    /// arithmetic stays bounded.
    fn float_expr(&mut self, a: &Buffer, alen: i64, b: &Buffer, blen: i64, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_range(0..10) < 3 {
            return match self.rng.gen_range(0..3) {
                0 => Expr::f32(f64::from(self.rng.gen_range(-2.0f32..2.0))),
                1 => {
                    let idx = self.int_expr(b, blen, 1) % Expr::i32(alen);
                    a.load(vec![idx])
                }
                _ => self.int_expr(b, blen, 1).cast(DType::F32),
            };
        }
        let l = self.float_expr(a, alen, b, blen, depth - 1);
        let r = self.float_expr(a, alen, b, blen, depth - 1);
        match self.rng.gen_range(0..8) {
            0 => l + r,
            1 => l - r,
            2 => l * r,
            3 => l / r, // may produce inf/NaN; comparison is bitwise
            4 => l.min(r),
            5 => l.max(r),
            6 => Expr::Call { intrin: Intrinsic::Relu, args: vec![l] },
            _ => l.le(r.clone()).select(r.clone(), self.float_expr(a, alen, b, blen, depth - 1)),
        }
    }

    /// Clamped integer view of a float expression (`cast` then min/max),
    /// bounding the interpreter's cast-through-f64 to a safe range.
    fn clamped_int_of_float(&mut self, a: &Buffer, alen: i64, b: &Buffer, blen: i64) -> Expr {
        self.float_expr(a, alen, b, blen, 1)
            .cast(DType::I32)
            .min(Expr::i32(1000))
            .max(Expr::i32(-1000))
    }
}

/// Inputs shared by every generated program: `A` (F32) and `B` (I32, small
/// non-negative values so it can serve as an index source), plus outputs
/// `C` (F32) and `D` (I32).
fn standard_buffers(g: &mut ProgGen) -> (Buffer, i64, Buffer, i64, Buffer, i64, Buffer, i64) {
    let alen = g.rng.gen_range(8i64..48);
    let blen = g.rng.gen_range(6i64..24);
    let clen = g.rng.gen_range(6i64..24);
    let dlen = g.rng.gen_range(6i64..24);
    let a = Buffer::global_f32("A", vec![Expr::i32(alen)]);
    let b = Buffer::global_i32("B", vec![Expr::i32(blen)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(clen)]);
    let d = Buffer::global_i32("D", vec![Expr::i32(dlen)]);
    (a, alen, b, blen, c, clen, d, dlen)
}

fn standard_tensors(
    g: &mut ProgGen,
    alen: i64,
    blen: i64,
    clen: i64,
    dlen: i64,
) -> HashMap<String, TensorData> {
    let mut t = HashMap::new();
    let a: Vec<f32> = (0..alen).map(|_| g.rng.gen_range(-3.0f32..3.0)).collect();
    let b: Vec<i32> = (0..blen).map(|_| g.rng.gen_range(0i32..8)).collect();
    t.insert("A".to_string(), TensorData::F32(a));
    t.insert("B".to_string(), TensorData::I32(b));
    t.insert("C".to_string(), TensorData::F32(vec![0.5; clen as usize]));
    t.insert("D".to_string(), TensorData::I32(vec![7; dlen as usize]));
    t
}

/// Family 1: serial/threadIdx/vectorized nest with arbitrary (possibly
/// colliding) stores — covers the widest expression space.
fn serial_nest(seed: u64) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let (a, alen, b, blen, c, clen, d, dlen) = standard_buffers(&mut g);
    let tensors = standard_tensors(&mut g, alen, blen, clen, dlen);

    let depth = g.rng.gen_range(1usize..4);
    let mut loops: Vec<(Var, i64, ForKind)> = Vec::new();
    for li in 0..depth {
        let kinds = [
            ForKind::Serial,
            ForKind::ThreadBinding(ThreadAxis::ThreadIdxX),
            ForKind::Unrolled,
            ForKind::Vectorized,
            ForKind::Parallel,
        ];
        let kind = kinds[g.rng.gen_range(0..kinds.len())];
        loops.push((Var::i32(format!("l{li}")), g.rng.gen_range(1i64..6), kind));
    }
    g.loop_vars = loops.iter().map(|(v, _, _)| v.clone()).collect();

    let n_stores = g.rng.gen_range(1usize..4);
    let mut body = Stmt::nop();
    for _ in 0..n_stores {
        let st = if g.rng.gen_bool(0.5) {
            let idx = g.int_expr(&b, blen, 2) % Expr::i32(clen);
            let val = g.float_expr(&a, alen, &b, blen, 2);
            Stmt::BufferStore { buffer: c.clone(), indices: vec![idx], value: val }
        } else {
            let idx = g.int_expr(&b, blen, 2) % Expr::i32(dlen);
            let val = if g.rng.gen_bool(0.3) {
                g.clamped_int_of_float(&a, alen, &b, blen)
            } else {
                g.int_expr(&b, blen, 2)
            };
            Stmt::BufferStore { buffer: d.clone(), indices: vec![idx], value: val }
        };
        body = body.then(st);
    }
    // Optionally wrap the innermost body in a `let` / `if`.
    if g.rng.gen_bool(0.4) {
        let lv = Var::i32("t");
        let value = g.int_expr(&b, blen, 2);
        g.loop_vars.push(lv.clone());
        let idx = g.int_expr(&b, blen, 1) % Expr::i32(clen);
        let val = g.float_expr(&a, alen, &b, blen, 1);
        g.loop_vars.pop();
        body = body.then(Stmt::Let {
            var: lv,
            value,
            body: Box::new(Stmt::BufferStore { buffer: c.clone(), indices: vec![idx], value: val }),
        });
    }
    if g.rng.gen_bool(0.4) {
        let cond = g.int_expr(&b, blen, 1).lt(g.int_expr(&b, blen, 1));
        body = Stmt::IfThenElse {
            cond,
            then_branch: Box::new(body),
            else_branch: if g.rng.gen_bool(0.5) {
                let idx = g.int_expr(&b, blen, 1) % Expr::i32(dlen);
                Some(Box::new(Stmt::BufferStore {
                    buffer: d.clone(),
                    indices: vec![idx],
                    value: g.int_expr(&b, blen, 1),
                }))
            } else {
                None
            },
        };
    }
    for (v, ext, kind) in loops.into_iter().rev() {
        body = Stmt::For { var: v, extent: Expr::i32(ext), kind, body: Box::new(body) };
    }
    (PrimFunc::new("serial_nest", vec![], vec![a, b, c, d], body), tensors)
}

/// Family 2: `blockIdx.x`-bound outer loop with disjointly striped output
/// writes (the spatial contract that licenses parallel dispatch).
fn block_striped(seed: u64) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let e1 = g.rng.gen_range(2i64..9);
    let stride = g.rng.gen_range(1i64..4);
    let e2 = g.rng.gen_range(1i64..5);
    let clen = e1 * stride;
    let alen = g.rng.gen_range(8i64..48);
    let blen = g.rng.gen_range(6i64..24);

    let a = Buffer::global_f32("A", vec![Expr::i32(alen)]);
    let b = Buffer::global_i32("B", vec![Expr::i32(blen)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(clen)]);
    let d = Buffer::global_i32("D", vec![Expr::i32(clen)]);
    let tensors = standard_tensors(&mut g, alen, blen, clen, clen);

    let i = Var::i32("i");
    let j = Var::i32("j");
    g.loop_vars = vec![i.clone(), j.clone()];
    // Stripe-local offset: any expression folded into [0, stride).
    let off = g.int_expr(&b, blen, 2) % Expr::i32(stride);
    let idx = Expr::var(&i) * stride + off;
    let val = g.float_expr(&a, alen, &b, blen, 2);
    let off2 = g.int_expr(&b, blen, 2) % Expr::i32(stride);
    let idx2 = Expr::var(&i) * stride + off2;
    let val2 = g.int_expr(&b, blen, 2);
    let inner = Stmt::BufferStore { buffer: c.clone(), indices: vec![idx], value: val }
        .then(Stmt::BufferStore { buffer: d.clone(), indices: vec![idx2], value: val2 });
    let body = Stmt::For {
        var: i.clone(),
        extent: Expr::i32(e1),
        kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
        body: Box::new(Stmt::For {
            var: j.clone(),
            extent: Expr::i32(e2),
            kind: if g.rng.gen_bool(0.5) {
                ForKind::Serial
            } else {
                ForKind::ThreadBinding(ThreadAxis::ThreadIdxX)
            },
            body: Box::new(inner),
        }),
    };
    (PrimFunc::new("block_striped", vec![], vec![a, b, c, d], body), tensors)
}

/// Family 3: reduction block whose reduce axis is bound to `threadIdx.x`
/// under a `blockIdx.x` spatial loop — thread-bound reduction semantics.
fn block_reduction(seed: u64) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let rows = g.rng.gen_range(2i64..8);
    let red = g.rng.gen_range(1i64..7);
    let alen = rows * red;
    let blen = g.rng.gen_range(6i64..24);

    let a = Buffer::global_f32("A", vec![Expr::i32(alen)]);
    let b = Buffer::global_i32("B", vec![Expr::i32(blen)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(rows)]);
    let d = Buffer::global_i32("D", vec![Expr::i32(rows)]);
    let tensors = standard_tensors(&mut g, alen, blen, rows, rows);

    let i = Var::i32("i");
    let j = Var::i32("j");
    let vi = Var::i32("vi");
    let vj = Var::i32("vj");
    // Optionally seed the accumulator from an expression instead of zero
    // (exercises the "reduce binding non-zero skips init" rule).
    let init_val = if g.rng.gen_bool(0.5) {
        Expr::f32(0.0)
    } else {
        Expr::f32(f64::from(g.rng.gen_range(-1.0f32..1.0)))
    };
    g.loop_vars = vec![vi.clone(), vj.clone()];
    let term =
        a.load(vec![Expr::var(&vi) * red + Expr::var(&vj)]) * g.float_expr(&a, alen, &b, blen, 1);
    let block = Stmt::Block(sparsetir_ir::stmt::Block {
        name: "acc".into(),
        iter_vars: vec![
            IterVar::spatial(vi.clone(), Expr::var(&i)),
            IterVar::reduce(vj.clone(), Expr::var(&j)),
        ],
        reads: vec![],
        writes: vec![],
        init: Some(Box::new(Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&vi)],
            value: init_val,
        })),
        body: Box::new(Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&vi)],
            value: c.load(vec![Expr::var(&vi)]) + term,
        }),
    });
    let mut body = Stmt::For {
        var: i.clone(),
        extent: Expr::i32(rows),
        kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
        body: Box::new(Stmt::For {
            var: j.clone(),
            extent: Expr::i32(red),
            kind: ForKind::ThreadBinding(ThreadAxis::ThreadIdxX),
            body: Box::new(block),
        }),
    };
    // Follow with an integer epilogue using binary_search over a sorted
    // prefix of B.
    if g.rng.gen_bool(0.6) {
        let k = Var::i32("k");
        let needle = g.rng.gen_range(0i64..8);
        let search = Expr::Call {
            intrin: Intrinsic::BinarySearch,
            args: vec![
                b.load(vec![Expr::i32(0)]),
                Expr::i32(0),
                Expr::i32(blen.min(6)),
                Expr::i32(needle),
            ],
        };
        body = body.then(Stmt::For {
            var: k.clone(),
            extent: Expr::i32(rows),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(Stmt::BufferStore {
                buffer: d.clone(),
                indices: vec![Expr::var(&k)],
                value: search + Expr::var(&k),
            }),
        });
    }
    let mut tensors = tensors;
    // Sort B so binary_search's precondition holds.
    if let Some(TensorData::I32(bv)) = tensors.get_mut("B") {
        bv.sort_unstable();
    }
    (PrimFunc::new("block_reduction", vec![], vec![a, b, c, d], body), tensors)
}

/// Family 4: the real `Schedule` machinery applied to a dense 3-nest,
/// including `bind` to blockIdx/threadIdx.
fn scheduled_nest(seed: u64) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let (n1, n2, n3) =
        (g.rng.gen_range(2i64..5), g.rng.gen_range(2i64..5), g.rng.gen_range(2i64..6));
    let len = n1 * n2 * n3;
    let i = Var::i32("i");
    let j = Var::i32("j");
    let k = Var::i32("k");
    let a = Buffer::global_f32("A", vec![Expr::i32(len)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(len)]);
    let flat = Expr::var(&i) * (n2 * n3) + Expr::var(&j) * n3 + Expr::var(&k);
    let body = Stmt::for_serial(
        i.clone(),
        n1,
        Stmt::for_serial(
            j.clone(),
            n2,
            Stmt::for_serial(
                k.clone(),
                n3,
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![flat.clone()],
                    value: a.load(vec![flat]) * 2.0f32
                        + (Expr::var(&i) + Expr::var(&j) + Expr::var(&k)).cast(DType::F32),
                },
            ),
        ),
    );
    let f = PrimFunc::new("nest", vec![], vec![a.clone(), c.clone()], body);

    let mut sch = Schedule::new(f);
    let mut loops: Vec<String> = vec!["i".into(), "j".into(), "k".into()];
    for _ in 0..g.rng.gen_range(0usize..4) {
        match g.rng.gen_range(0..3) {
            0 => {
                let t = g.rng.gen_range(0..loops.len());
                let name = loops[t].clone();
                let factor = g.rng.gen_range(2i64..5);
                if let Ok((o, inner)) = sch.split(&name, factor) {
                    let pos = loops.iter().position(|l| l == &name).unwrap();
                    loops[pos] = o;
                    loops.insert(pos + 1, inner);
                }
            }
            1 => {
                let t = g.rng.gen_range(0..loops.len());
                let _ = sch.unroll(&loops[t]);
            }
            _ => {
                let t = g.rng.gen_range(0..loops.len());
                let _ = sch.vectorize(&loops[t]);
            }
        }
    }
    // Bind the outermost loop to blockIdx.x and (sometimes) the innermost
    // to threadIdx.x.
    let _ = sch.bind(&loops[0].clone(), ThreadAxis::BlockIdxX);
    if g.rng.gen_bool(0.7) && loops.len() > 1 {
        let last = loops.last().unwrap().clone();
        let _ = sch.bind(&last, ThreadAxis::ThreadIdxX);
    }
    let f = sch.into_func();

    let mut tensors = HashMap::new();
    let av: Vec<f32> = (0..len).map(|_| g.rng.gen_range(-2.0f32..2.0)).collect();
    tensors.insert("A".to_string(), TensorData::F32(av));
    tensors.insert("C".to_string(), TensorData::zeros(DType::F32, len as usize));
    (f, tensors)
}

// ---------------------------------------------------------------------------
// Family 5: lane-kernel programs targeting the fusion pass
// ---------------------------------------------------------------------------

/// Lane counts the fused microkernels must handle, straddling the warp
/// width (1/2/3 short remainders, 32 exact, 33 just past the boundary).
const LANE_COUNTS: [i64; 5] = [1, 2, 3, 32, 33];

/// Axpy-shaped lane loop under a serial reduce loop:
/// `for j in 0..reps { for k in 0..n { block { init C[k·ds] = seed if j == 0;
/// C[k·ds] += A[0] · B[k·ss] } } }`. `ds`/`ss` ≠ 1 must fall back;
/// `alias_coeff` loads the coefficient from the written buffer (must fall
/// back); `alias_src` accumulates `C` from `C` itself (must fall back).
fn lane_axpy(
    n: i64,
    ds: i64,
    ss: i64,
    alias_coeff: bool,
    alias_src: bool,
    seed: u64,
) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let clen = n * ds + i64::from(alias_src);
    let blen = n * ss;
    let a = Buffer::global_f32("A", vec![Expr::i32(1)]);
    let b = Buffer::global_f32("B", vec![Expr::i32(blen)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(clen)]);
    let j = Var::i32("j");
    let k = Var::i32("k");
    let vk = Var::i32("vk");
    let vp = Var::i32("vp");
    let src = if alias_src { c.clone() } else { b.clone() };
    let src_idx = if alias_src { Expr::var(&vk) + Expr::i32(1) } else { Expr::var(&vk) * ss };
    let coeff = if alias_coeff { c.load(vec![Expr::i32(0)]) } else { a.load(vec![Expr::i32(0)]) };
    let block = Stmt::Block(sparsetir_ir::stmt::Block {
        name: "axpy".into(),
        iter_vars: vec![
            IterVar::spatial(vk.clone(), Expr::var(&k)),
            IterVar::reduce(vp.clone(), Expr::var(&j)),
        ],
        reads: vec![],
        writes: vec![],
        init: Some(Box::new(Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&vk) * ds],
            value: Expr::f32(f64::from(g.rng.gen_range(-1.0f32..1.0))),
        })),
        body: Box::new(Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&vk) * ds],
            value: c.load(vec![Expr::var(&vk) * ds]) + coeff * src.load(vec![src_idx]),
        }),
    });
    let body = Stmt::for_serial(j.clone(), 2, Stmt::for_serial(k.clone(), n, block));
    let f = PrimFunc::new("lane_axpy", vec![], vec![a, b, c], body);
    let mut tensors = HashMap::new();
    tensors.insert("A".to_string(), TensorData::F32(vec![g.rng.gen_range(-2.0f32..2.0)]));
    tensors.insert(
        "B".to_string(),
        TensorData::F32((0..blen).map(|_| g.rng.gen_range(-2.0f32..2.0)).collect()),
    );
    tensors.insert(
        "C".to_string(),
        TensorData::F32((0..clen).map(|_| g.rng.gen_range(-2.0f32..2.0)).collect()),
    );
    (f, tensors)
}

/// Scalar dot/gather lane loop whose reduce binding strides with the
/// lane (accumulator-init-at-lane-0 semantics):
/// `for k in 0..n { block { init S[0] = 0 at k == 0;
/// S[0] += (A[0] · X[k]) · Y[k·bs] } }`.
fn lane_dot(
    n: i64,
    bs: i64,
    with_coeff: bool,
    seed: u64,
) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed);
    let a = Buffer::global_f32("A", vec![Expr::i32(1)]);
    let x = Buffer::global_f32("X", vec![Expr::i32(n)]);
    let y = Buffer::global_f32("Y", vec![Expr::i32(n * bs)]);
    let s = Buffer::global_f32("S", vec![Expr::i32(1)]);
    let k = Var::i32("k");
    let vk = Var::i32("vk");
    let vp = Var::i32("vp");
    let xl = x.load(vec![Expr::var(&vk)]);
    let yl = y.load(vec![Expr::var(&vk) * bs]);
    let term = if with_coeff { a.load(vec![Expr::i32(0)]) * xl * yl } else { xl * yl };
    let block = Stmt::Block(sparsetir_ir::stmt::Block {
        name: "dot".into(),
        iter_vars: vec![
            IterVar::spatial(vk.clone(), Expr::var(&k)),
            IterVar::reduce(vp.clone(), Expr::var(&k)),
        ],
        reads: vec![],
        writes: vec![],
        init: Some(Box::new(Stmt::BufferStore {
            buffer: s.clone(),
            indices: vec![Expr::i32(0)],
            value: Expr::f32(0.0),
        })),
        body: Box::new(Stmt::BufferStore {
            buffer: s.clone(),
            indices: vec![Expr::i32(0)],
            value: s.load(vec![Expr::i32(0)]) + term,
        }),
    });
    let body = Stmt::for_serial(k.clone(), n, block);
    let f = PrimFunc::new("lane_dot", vec![], vec![a, x, y, s], body);
    let mut tensors = HashMap::new();
    tensors.insert("A".to_string(), TensorData::F32(vec![g.rng.gen_range(-2.0f32..2.0)]));
    tensors.insert(
        "X".to_string(),
        TensorData::F32((0..n).map(|_| g.rng.gen_range(-2.0f32..2.0)).collect()),
    );
    tensors.insert(
        "Y".to_string(),
        TensorData::F32((0..n * bs).map(|_| g.rng.gen_range(-2.0f32..2.0)).collect()),
    );
    tensors.insert("S".to_string(), TensorData::F32(vec![g.rng.gen_range(-1.0f32..1.0)]));
    (f, tensors)
}

/// Random draw from the lane-kernel family.
fn lane_kernel(seed: u64) -> (PrimFunc, HashMap<String, TensorData>) {
    let mut g = ProgGen::new(seed ^ 0xA5A5);
    let n = LANE_COUNTS[g.rng.gen_range(0..LANE_COUNTS.len())];
    match g.rng.gen_range(0..6) {
        0 => lane_axpy(n, 1, 1, false, false, seed),
        1 => lane_axpy(n, g.rng.gen_range(2i64..4), 1, false, false, seed),
        2 => lane_axpy(n, 1, g.rng.gen_range(2i64..4), false, false, seed),
        3 => lane_axpy(n, 1, 1, true, false, seed),
        4 => lane_axpy(n, 1, 1, false, true, seed),
        _ => lane_dot(n, g.rng.gen_range(1i64..4), g.rng.gen_bool(0.5), seed),
    }
}

// ---------------------------------------------------------------------------
// Targeted fused-vs-generic-vs-interpreter cases
// ---------------------------------------------------------------------------

#[test]
fn fused_lane_counts_cover_the_fallback_boundary() {
    for n in LANE_COUNTS {
        let (f, tensors) = lane_axpy(n, 1, 1, false, false, 0x100 + n as u64);
        let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
        assert_eq!(fused.fused_ops(), 1, "n = {n} must fuse");
        assert_eq!(fused.fused_kinds(), vec!["AxpyLanes"]);
        differential(&f, &HashMap::new(), &tensors).unwrap_or_else(|m| panic!("n = {n}: {m}"));

        let (f, tensors) = lane_dot(n, 3, true, 0x200 + n as u64);
        let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
        assert_eq!(fused.fused_ops(), 1, "dot n = {n} must fuse");
        assert_eq!(fused.fused_kinds(), vec!["GatherScaleAccumulate"]);
        differential(&f, &HashMap::new(), &tensors).unwrap_or_else(|m| panic!("dot n = {n}: {m}"));

        let (f, tensors) = lane_dot(n, 1, false, 0x300 + n as u64);
        let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
        assert_eq!(fused.fused_kinds(), vec!["DotLanes"]);
        differential(&f, &HashMap::new(), &tensors)
            .unwrap_or_else(|m| panic!("pure dot n = {n}: {m}"));
    }
}

#[test]
fn non_contiguous_strides_fall_back_to_generic() {
    for (ds, ss) in [(2, 1), (1, 2), (3, 3)] {
        let (f, tensors) = lane_axpy(32, ds, ss, false, false, 0x400 + (ds * 8 + ss) as u64);
        let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
        assert_eq!(fused.fused_ops(), 0, "strides ({ds},{ss}) must not fuse");
        differential(&f, &HashMap::new(), &tensors)
            .unwrap_or_else(|m| panic!("strides ({ds},{ss}): {m}"));
    }
    // Strided gather operands on a *scalar* reduction stay fused (the
    // GatherScaleAccumulate shape) and still bit-match.
    let (f, tensors) = lane_dot(33, 2, true, 0x777);
    let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
    assert_eq!(fused.fused_kinds(), vec!["GatherScaleAccumulate"]);
    differential(&f, &HashMap::new(), &tensors).unwrap();
}

#[test]
fn aliased_buffers_fall_back_to_generic() {
    // Coefficient loaded from the written buffer.
    let (f, tensors) = lane_axpy(33, 1, 1, true, false, 0x500);
    let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
    assert_eq!(fused.fused_ops(), 0, "aliased coefficient must not fuse");
    differential(&f, &HashMap::new(), &tensors).unwrap();

    // Source lanes overlapping the destination lanes (C[k] += A·C[k+1]).
    let (f, tensors) = lane_axpy(32, 1, 1, false, true, 0x600);
    let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
    assert_eq!(fused.fused_ops(), 0, "self-aliasing source must not fuse");
    differential(&f, &HashMap::new(), &tensors).unwrap();
}

// ---------------------------------------------------------------------------
// Failure-path identity: runtime errors must match on every executor
// ---------------------------------------------------------------------------

/// A fusable axpy loop whose extent is a scalar param: binding it past
/// the buffer lengths makes the superinstruction's lane validation fail
/// and every executor (fused fast paths included) must report the
/// interpreter's exact out-of-bounds error after the same written prefix.
#[test]
fn out_of_bounds_store_fails_identically_on_every_executor() {
    let k = Var::i32("k");
    let n = Var::i32("n");
    let b = Buffer::global_f32("B", vec![Expr::i32(8)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
    let body = Stmt::For {
        var: k.clone(),
        extent: Expr::var(&n),
        kind: ForKind::Serial,
        body: Box::new(Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&k)],
            value: c.load(vec![Expr::var(&k)]) + Expr::f32(2.0) * b.load(vec![Expr::var(&k)]),
        }),
    };
    let f = PrimFunc::new("oob_store", vec![n], vec![b, c], body);
    let fused = CompiledKernel::compile_opts(&f, true, ExecBackend::Bytecode).unwrap();
    assert_eq!(fused.fused_ops(), 1, "dynamic-extent axpy fuses to a superinstruction");
    let mut tensors = HashMap::new();
    tensors.insert("B".to_string(), TensorData::F32(vec![1.0; 8]));
    tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
    let scalars = scalar_map(&[("n", 12)]);
    let msg = differential_failure(&f, &scalars, &tensors).unwrap();
    assert_eq!(msg, "executor error: index 8 out of bounds for dim of extent 8 in buffer `C`");
    let mut interp = tensors.clone();
    let ierr = eval_func(&f, &scalars, &mut interp).unwrap_err();
    let bare = msg.strip_prefix("executor error: ").unwrap();
    assert!(ierr.to_string().ends_with(bare), "interpreter error `{ierr}` must end with `{bare}`");
}

/// An out-of-bounds *load* (probe failure) part-way through a serial
/// loop: the first two iterations must land before the error, identically
/// everywhere.
#[test]
fn out_of_bounds_probe_fails_identically_after_the_same_prefix() {
    let k = Var::i32("k");
    let b = Buffer::global_f32("B", vec![Expr::i32(2)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
    let body = Stmt::for_serial(
        k.clone(),
        8,
        Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&k)],
            // B has extent 2: iteration k == 2 probes out of bounds.
            value: b.load(vec![Expr::var(&k)]) * 3.0f32,
        },
    );
    let f = PrimFunc::new("oob_probe", vec![], vec![b, c], body);
    let mut tensors = HashMap::new();
    tensors.insert("B".to_string(), TensorData::F32(vec![1.5, -2.5]));
    tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
    let msg = differential_failure(&f, &HashMap::new(), &tensors).unwrap();
    assert_eq!(msg, "executor error: index 2 out of bounds for dim of extent 2 in buffer `B`");
}

/// Integer division by a zero loaded at run time.
#[test]
fn division_by_zero_fails_identically_on_every_executor() {
    let k = Var::i32("k");
    let b = Buffer::global_i32("B", vec![Expr::i32(4)]);
    let d = Buffer::global_i32("D", vec![Expr::i32(4)]);
    let body = Stmt::for_serial(
        k.clone(),
        4,
        Stmt::BufferStore {
            buffer: d.clone(),
            indices: vec![Expr::var(&k)],
            value: Expr::i32(7) / b.load(vec![Expr::var(&k)]),
        },
    );
    let f = PrimFunc::new("div_zero", vec![], vec![b, d], body);
    let mut tensors = HashMap::new();
    tensors.insert("B".to_string(), TensorData::I32(vec![2, 1, 0, 3]));
    tensors.insert("D".to_string(), TensorData::I32(vec![0; 4]));
    let msg = differential_failure(&f, &HashMap::new(), &tensors).unwrap();
    assert!(msg.contains("division by zero"), "got `{msg}`");
}

/// A missing tensor binding errors identically before any execution.
#[test]
fn missing_binding_fails_identically_on_every_executor() {
    let (f, mut tensors) = lane_axpy(8, 1, 1, false, false, 0x900);
    tensors.remove("B");
    let msg = differential_failure(&f, &HashMap::new(), &tensors).unwrap();
    assert_eq!(msg, "executor error: missing tensor binding for buffer `B`");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn serial_nests_bit_match(seed in 0u64..1_000_000) {
        let (f, tensors) = serial_nest(seed);
        if let Err(msg) = differential(&f, &HashMap::new(), &tensors) {
            prop_assert!(false, "seed {seed}: {msg}\n{}", print_func(&f));
        }
    }

    #[test]
    fn block_striped_programs_bit_match(seed in 0u64..1_000_000) {
        let (f, tensors) = block_striped(seed);
        if let Err(msg) = differential(&f, &HashMap::new(), &tensors) {
            prop_assert!(false, "seed {seed}: {msg}\n{}", print_func(&f));
        }
    }

    #[test]
    fn thread_bound_reductions_bit_match(seed in 0u64..1_000_000) {
        let (f, tensors) = block_reduction(seed);
        if let Err(msg) = differential(&f, &HashMap::new(), &tensors) {
            prop_assert!(false, "seed {seed}: {msg}\n{}", print_func(&f));
        }
    }

    #[test]
    fn scheduled_nests_bit_match(seed in 0u64..1_000_000) {
        let (f, tensors) = scheduled_nest(seed);
        if let Err(msg) = differential(&f, &HashMap::new(), &tensors) {
            prop_assert!(false, "seed {seed}: {msg}\n{}", print_func(&f));
        }
    }

    #[test]
    fn lane_kernels_bit_match(seed in 0u64..1_000_000) {
        let (f, tensors) = lane_kernel(seed);
        if let Err(msg) = differential(&f, &HashMap::new(), &tensors) {
            prop_assert!(false, "seed {seed}: {msg}\n{}", print_func(&f));
        }
    }
}
