//! Concurrency stress tests for the sharded, single-flight kernel cache:
//! a compile storm on one function must cost exactly one compilation and
//! hand every racer the same (bit-identically behaving) kernel, and
//! distinct fingerprints compiled concurrently must all land in the cache
//! with exact `cached()`/`compilations()` accounting across shards.

use sparsetir_ir::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// `C[i] = i * scale` over a serial loop — `scale` varies the fingerprint.
fn iota_func(n: i64, scale: i64, name: &str) -> PrimFunc {
    let i = Var::i32("i");
    let c = Buffer::global_f32("C", vec![Expr::i32(n)]);
    let body = Stmt::for_serial(
        i.clone(),
        n,
        Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&i)],
            value: (Expr::var(&i) * scale).cast(DType::F32),
        },
    );
    PrimFunc::new(name, vec![], vec![c], body)
}

fn run_kernel(k: &CompiledKernel, n: usize) -> Vec<u32> {
    let mut tensors = HashMap::new();
    tensors.insert("C".to_string(), TensorData::zeros(DType::F32, n));
    k.run(&HashMap::new(), &mut tensors).expect("kernel runs");
    tensors["C"].as_f32().iter().map(|v| v.to_bits()).collect()
}

/// 16 threads racing `compile` on the same `PrimFunc`: the single-flight
/// cell must collapse the storm to exactly one compilation, every thread
/// must receive the same cached kernel, and all outputs must be
/// bit-identical.
#[test]
fn compile_storm_on_one_function_compiles_once() {
    const THREADS: usize = 16;
    const N: usize = 256;
    let rt = Arc::new(Runtime::new());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let rt = Arc::clone(&rt);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // Each thread builds its own structurally-identical function,
            // so nothing is shared but the printed-IR fingerprint.
            let f = iota_func(N as i64, 3, "storm");
            barrier.wait();
            let kernel = rt.compile(&f).expect("compiles");
            let bits = run_kernel(&kernel, N);
            (kernel, bits)
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    assert_eq!(rt.compilations(), 1, "16 racing compiles must collapse to one");
    assert_eq!(rt.cached(), 1);
    let (first_kernel, first_bits) = &results[0];
    for (kernel, bits) in &results {
        assert!(Arc::ptr_eq(first_kernel, kernel), "all racers must share one kernel");
        assert_eq!(bits, first_bits, "outputs must be bit-identical across racers");
    }
    // A late arrival still hits.
    let again = rt.compile(&iota_func(N as i64, 3, "storm")).expect("compiles");
    assert!(Arc::ptr_eq(first_kernel, &again));
    assert_eq!(rt.compilations(), 1);
}

/// Distinct fingerprints compiled concurrently must all land in the cache:
/// `cached()` and `compilations()` stay exact even though the entries are
/// spread across shards.
#[test]
fn concurrent_distinct_fingerprints_all_land_in_cache() {
    const FUNCS: usize = 48; // 3 functions per shard on average
    const RACERS_PER_FUNC: usize = 3;
    let rt = Arc::new(Runtime::new());
    let barrier = Arc::new(std::sync::Barrier::new(FUNCS * RACERS_PER_FUNC));
    let mut handles = Vec::new();
    for scale in 0..FUNCS {
        for _ in 0..RACERS_PER_FUNC {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let f = iota_func(64, scale as i64 + 1, "multi");
                barrier.wait();
                let kernel = rt.compile(&f).expect("compiles");
                (scale, run_kernel(&kernel, 64))
            }));
        }
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    assert_eq!(rt.compilations(), FUNCS, "one compilation per distinct fingerprint");
    assert_eq!(rt.cached(), FUNCS, "every fingerprint must be cached");
    // Each scale's racers agree with the serially computed expectation.
    for (scale, bits) in results {
        let expect: Vec<u32> =
            (0..64).map(|i| ((i * (scale as i64 + 1)) as f32).to_bits()).collect();
        assert_eq!(bits, expect, "scale {scale}");
    }
}

/// The fusion flag keeps separate single-flight cells: racing fused and
/// generic compiles of one function yield exactly two compilations.
#[test]
fn racing_fusion_flags_compile_each_variant_once() {
    const THREADS: usize = 12;
    let rt = Arc::new(Runtime::new());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let f = iota_func(32, 5, "flags");
                barrier.wait();
                rt.compile_with(&f, t % 2 == 0).expect("compiles")
            })
        })
        .collect();
    let kernels: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    assert_eq!(rt.compilations(), 2, "one compilation per fusion flag");
    assert_eq!(rt.cached(), 2);
    for k in &kernels {
        assert_eq!(run_kernel(k, 32), run_kernel(&kernels[0], 32));
    }
}

/// A function that fails to compile must fail identically for every racer
/// and never count as a compilation or a cached kernel.
#[test]
fn racing_compile_errors_are_consistent() {
    const THREADS: usize = 8;
    let rt = Arc::new(Runtime::new());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // References a buffer that is not declared anywhere.
                let ghost = Buffer::global_f32("ghost", vec![Expr::i32(1)]);
                let body = Stmt::BufferStore {
                    buffer: ghost,
                    indices: vec![Expr::i32(0)],
                    value: Expr::f32(1.0),
                };
                let f = PrimFunc::new("bad", vec![], vec![], body);
                barrier.wait();
                rt.compile(&f).expect_err("unbound buffer must not compile")
            })
        })
        .collect();
    let errs: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    for e in &errs {
        assert_eq!(e, &errs[0], "racers must observe the same error");
    }
    assert_eq!(rt.compilations(), 0, "failed compiles are not counted");
    assert_eq!(rt.cached(), 0, "failed compiles are not cached kernels");
}
