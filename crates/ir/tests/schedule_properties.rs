//! Property-based tests of the schedule primitives: arbitrary compositions
//! of split / reorder / unroll / vectorize / bind over a 3-deep loop nest
//! must preserve interpreted semantics and verifier well-formedness — the
//! "composable transformations never change meaning" contract.

use proptest::prelude::*;
use sparsetir_ir::prelude::*;
use std::collections::HashMap;

/// `C[i·N2·N3 + j·N3 + k] = A[...] * 2 + i + j + k` over a 3-deep nest.
fn nest(n1: i64, n2: i64, n3: i64) -> PrimFunc {
    let i = Var::i32("i");
    let j = Var::i32("j");
    let k = Var::i32("k");
    let len = n1 * n2 * n3;
    let a = Buffer::global_f32("A", vec![Expr::i32(len)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(len)]);
    let flat = Expr::var(&i) * (n2 * n3) + Expr::var(&j) * n3 + Expr::var(&k);
    let body = Stmt::for_serial(
        i.clone(),
        n1,
        Stmt::for_serial(
            j.clone(),
            n2,
            Stmt::for_serial(
                k.clone(),
                n3,
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![flat.clone()],
                    value: a.load(vec![flat]) * 2.0f32
                        + (Expr::var(&i) + Expr::var(&j) + Expr::var(&k)).cast(DType::F32),
                },
            ),
        ),
    );
    PrimFunc::new("nest", vec![], vec![a, c], body)
}

fn run(f: &PrimFunc, len: usize) -> Vec<f32> {
    let mut t = HashMap::new();
    t.insert(
        "A".to_string(),
        TensorData::from((0..len).map(|x| (x % 13) as f32 * 0.5 - 2.0).collect::<Vec<_>>()),
    );
    t.insert("C".to_string(), TensorData::zeros(DType::F32, len));
    eval_func(f, &HashMap::new(), &mut t).expect("interprets");
    t["C"].as_f32().to_vec()
}

/// One schedule action drawn by proptest.
#[derive(Debug, Clone)]
enum Action {
    Split { target: usize, factor: i64 },
    Unroll { target: usize },
    Vectorize { target: usize },
    ReorderJk,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..3, 2i64..6).prop_map(|(target, factor)| Action::Split { target, factor }),
        (0usize..3).prop_map(|target| Action::Unroll { target }),
        (0usize..3).prop_map(|target| Action::Vectorize { target }),
        Just(Action::ReorderJk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedule_compositions_preserve_semantics(
        dims in (2i64..5, 2i64..5, 2i64..6),
        actions in proptest::collection::vec(arb_action(), 0..5),
    ) {
        let (n1, n2, n3) = dims;
        let len = (n1 * n2 * n3) as usize;
        let base = nest(n1, n2, n3);
        let expected = run(&base, len);

        let mut sch = Schedule::new(base);
        // Track live loop names; splits replace a name with two.
        let mut loops: Vec<String> = vec!["i".into(), "j".into(), "k".into()];
        let mut reordered = false;
        for action in &actions {
            match action {
                Action::Split { target, factor } => {
                    let name = loops[target % loops.len()].clone();
                    let (o, inner) = sch.split(&name, *factor).expect("split succeeds");
                    let pos = loops.iter().position(|l| l == &name).expect("tracked");
                    loops[pos] = o;
                    loops.insert(pos + 1, inner);
                }
                Action::Unroll { target } => {
                    let name = loops[target % loops.len()].clone();
                    sch.unroll(&name).expect("unroll succeeds");
                }
                Action::Vectorize { target } => {
                    let name = loops[target % loops.len()].clone();
                    sch.vectorize(&name).expect("vectorize succeeds");
                }
                Action::ReorderJk => {
                    // Only valid while j and k are intact and adjacent.
                    if !reordered
                        && loops.iter().any(|l| l == "j")
                        && loops.iter().any(|l| l == "k")
                        && loops.ends_with(&["j".to_string(), "k".to_string()])
                    {
                        sch.reorder(&["k", "j"]).expect("reorder succeeds");
                        reordered = true;
                    }
                }
            }
        }
        let scheduled = sch.into_func();
        verify(&scheduled).expect("scheduled function verifies");
        prop_assert_eq!(run(&scheduled, len), expected);
    }

    #[test]
    fn split_factors_larger_than_extent_still_correct(
        n in 1i64..12,
        factor in 1i64..20,
    ) {
        let base = nest(n, 2, 2);
        let len = (n * 4) as usize;
        let expected = run(&base, len);
        let mut sch = Schedule::new(base);
        sch.split("i", factor).expect("split");
        prop_assert_eq!(run(sch.func(), len), expected);
    }

    #[test]
    fn fuse_then_split_roundtrips(
        n1 in 2i64..5,
        n2 in 2i64..5,
    ) {
        let base = nest(n1, n2, 2);
        let len = (n1 * n2 * 2) as usize;
        let expected = run(&base, len);
        let mut sch = Schedule::new(base);
        let fused = sch.fuse("i", "j").expect("fuse");
        sch.split(&fused, n2).expect("split back");
        verify(sch.func()).expect("verifies");
        prop_assert_eq!(run(sch.func(), len), expected);
    }
}
