//! Golden-file tests on the kernel disassembler: canonical kernels (CSR
//! SpMM, hyb SpMM, batched SDDMM, fused attention) must disassemble to
//! byte-identical listings committed under `tests/golden/`. Any change to
//! slot allocation, lowering, fusion matching or the instruction set
//! shows up here as a readable diff.
//!
//! * Re-bless after an intentional codegen change with
//!   `SPARSETIR_BLESS=1 cargo test -p sparsetir-ir --test golden_disasm`.
//! * On mismatch the produced listing is written next to the golden file
//!   as `<name>.disasm.actual` (CI uploads these as artifacts).
//!
//! The kernels are built from a hand-constructed deterministic matrix —
//! no RNG — so the listings are stable across runs and platforms. Every
//! kernel is also compiled for both executor backends to pin down that
//! disassembly is backend-independent (tree kernels lower on demand).

use sparsetir_ir::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_kernels::sddmm::batched_sddmm_ir;
use sparsetir_smat::prelude::*;
use std::path::PathBuf;

/// Deterministic 6×6 sparse matrix with varied row degrees (0 to 5), so
/// the hyb decomposition produces several non-empty buckets.
fn fixture_csr() -> Csr {
    let indptr = vec![0, 3, 4, 4, 9, 10, 12];
    let indices: Vec<u32> = vec![0, 2, 4, 1, 0, 1, 2, 3, 5, 3, 2, 4];
    let values: Vec<f32> = (0..12).map(|i| 0.5 + i as f32 * 0.25).collect();
    Csr::new(6, 6, indptr, indices, values).expect("valid fixture matrix")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.disasm"))
}

/// Compile `func` for both backends, check their listings agree, then
/// compare (or bless) the golden file.
fn check_golden(name: &str, func: &PrimFunc) {
    let code = CompiledKernel::compile_opts(func, true, ExecBackend::Bytecode).expect("compiles");
    let tree = CompiledKernel::compile_opts(func, true, ExecBackend::Tree).expect("compiles");
    let listing = code.disassemble();
    assert_eq!(listing, tree.disassemble(), "{name}: disassembly must be backend-independent");

    let path = golden_path(name);
    if std::env::var_os("SPARSETIR_BLESS").is_some() {
        std::fs::write(&path, &listing).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); regenerate with SPARSETIR_BLESS=1", path.display())
    });
    if want != listing {
        let actual = path.with_extension("disasm.actual");
        std::fs::write(&actual, &listing).expect("write actual listing");
        let diff_at = want.lines().zip(listing.lines()).position(|(a, b)| a != b).map_or_else(
            || "listing lengths differ".to_string(),
            |l| format!("first diff at line {}", l + 1),
        );
        panic!(
            "{name}: disassembly drifted from {} ({diff_at}); \
             actual listing written to {}; re-bless with SPARSETIR_BLESS=1 if intentional",
            path.display(),
            actual.display()
        );
    }
}

#[test]
fn csr_spmm_disassembly_is_stable() {
    let a = fixture_csr();
    let f = csr_spmm_ir(&a, 4).expect("builds");
    let k = CompiledKernel::compile_opts(&f, true, ExecBackend::Bytecode).unwrap();
    assert!(k.fused_ops() > 0, "CSR SpMM inner loop fuses to a superinstruction");
    check_golden("csr_spmm", &f);
}

#[test]
fn hyb_spmm_disassembly_is_stable() {
    let a = fixture_csr();
    let x = Dense::from_fn(a.cols(), 4, |i, j| (i * 4 + j) as f32 * 0.125 - 1.0);
    let cfg = SpmmConfig { col_parts: Some(2), bucket_k: 2, params: CsrSpmmParams::default() };
    let prepared = prepare_spmm(&a, &x, &cfg).expect("builds");
    check_golden("hyb_spmm", &prepared.func);
}

#[test]
fn segmented_batch_spmm_disassembly_is_stable() {
    // The widened kernel the zero-copy view path compiles for a stacked
    // batch of riders (widths 4 + 2 → feat 6, vec runs widened by the
    // same rule as `spmm_execute_views_on`). The batch binds per-rider
    // column segments at launch time — bindings never appear in a
    // listing — so this pins the program those segmented views execute:
    // one flat-indexed buffer per operand, resolved through the segment
    // table at run time.
    let a = fixture_csr();
    let feat: usize = 6;
    let mut cfg = SpmmConfig::default_csr();
    cfg.params.vec_width = cfg.params.vec_width.max(feat.div_ceil(8));
    let (f, _) = prepare_spmm_structure(&a, feat, &cfg).expect("builds");
    check_golden("csr_spmm_wide_batch", &f);
}

#[test]
fn batched_sddmm_disassembly_is_stable() {
    let a = fixture_csr();
    let f = batched_sddmm_ir(&a, 2, 4).expect("builds");
    check_golden("batched_sddmm", &f);
}

#[test]
fn fused_attention_disassembly_is_stable() {
    let a = fixture_csr();
    let f = fused_attention_ir(&a, 2, 4, 3).expect("builds");
    check_golden("fused_attention", &f);
}
