//! Failure-injection tests: every user-facing error path of the IR crate
//! must fail loudly with an actionable message — never silently compute
//! garbage. (C-GOOD-ERR / C-VALIDATE.)

use sparsetir_ir::prelude::*;
use std::collections::HashMap;

fn scale_func(n: i64) -> PrimFunc {
    let i = Var::i32("i");
    let a = Buffer::global_f32("A", vec![Expr::i32(n)]);
    let c = Buffer::global_f32("C", vec![Expr::i32(n)]);
    let body = Stmt::for_serial(
        i.clone(),
        n,
        Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&i)],
            value: a.load(vec![Expr::var(&i)]) * 2.0f32,
        },
    );
    PrimFunc::new("scale", vec![], vec![a, c], body)
}

mod interpreter {
    use super::*;

    #[test]
    fn missing_tensor_binding() {
        let f = scale_func(4);
        let mut t = HashMap::new();
        t.insert("A".to_string(), TensorData::from(vec![0.0f32; 4]));
        let err = eval_func(&f, &HashMap::new(), &mut t).unwrap_err();
        assert!(err.to_string().contains("missing tensor binding"), "{err}");
    }

    #[test]
    fn missing_scalar_param() {
        let n = Var::i32("n");
        let f = PrimFunc::new("f", vec![n], vec![], Stmt::nop());
        let err = eval_func(&f, &HashMap::new(), &mut HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("missing scalar param"), "{err}");
    }

    #[test]
    fn undersized_binding_is_out_of_bounds() {
        let f = scale_func(4);
        let mut t = HashMap::new();
        t.insert("A".to_string(), TensorData::from(vec![0.0f32; 2])); // too short
        t.insert("C".to_string(), TensorData::from(vec![0.0f32; 4]));
        let err = eval_func(&f, &HashMap::new(), &mut t).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn integer_division_by_zero() {
        let out = Buffer::global_i32("out", vec![Expr::i32(1)]);
        let body = Stmt::BufferStore {
            buffer: out.clone(),
            indices: vec![Expr::i32(0)],
            value: Expr::i32(1) / Expr::i32(0),
        };
        let f = PrimFunc::new("div0", vec![], vec![out], body);
        let mut t = HashMap::new();
        t.insert("out".to_string(), TensorData::from(vec![0i32]));
        let err = eval_func(&f, &HashMap::new(), &mut t).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let a = Buffer::global_f32("A", vec![Expr::i32(2), Expr::i32(2)]);
        let body = Stmt::BufferStore {
            buffer: a.clone(),
            indices: vec![Expr::i32(0)], // rank-2 buffer, 1 index
            value: Expr::f32(0.0),
        };
        let f = PrimFunc::new("f", vec![], vec![a], body);
        let mut t = HashMap::new();
        t.insert("A".to_string(), TensorData::from(vec![0.0f32; 4]));
        let err = eval_func(&f, &HashMap::new(), &mut t).unwrap_err();
        assert!(err.to_string().contains("indices"), "{err}");
    }
}

mod schedules {
    use super::*;

    #[test]
    fn split_of_missing_loop() {
        let mut sch = Schedule::new(scale_func(4));
        let err = sch.split("zz", 2).unwrap_err();
        assert!(err.to_string().contains("not found"), "{err}");
    }

    #[test]
    fn split_by_zero_rejected() {
        let mut sch = Schedule::new(scale_func(4));
        assert!(sch.split("i", 0).is_err());
        assert!(sch.split("i", -3).is_err());
    }

    #[test]
    fn fuse_requires_perfect_nesting() {
        // i's body is a store, not the named inner loop.
        let mut sch = Schedule::new(scale_func(4));
        let err = sch.fuse("i", "j").unwrap_err();
        assert!(
            err.to_string().contains("nested") || err.to_string().contains("expected"),
            "{err}"
        );
    }

    #[test]
    fn reorder_requires_contiguous_chain() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        // i and j are siblings, not nested.
        let body = Stmt::for_serial(i, 2, Stmt::nop()).then(Stmt::for_serial(
            j,
            2,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: Expr::f32(0.0),
            },
        ));
        let mut sch = Schedule::new(PrimFunc::new("f", vec![], vec![c], body));
        assert!(sch.reorder(&["j", "i"]).is_err());
    }

    #[test]
    fn rfactor_requires_accumulation_shape() {
        // Block body is a plain store (no C = C + e pattern).
        let r = Var::i32("r");
        let c = Buffer::global_f32("C", vec![Expr::i32(1)]);
        let blk = Stmt::Block(Block {
            name: "s".into(),
            iter_vars: vec![IterVar::reduce(Var::i32("vr"), Expr::var(&r))],
            reads: vec![],
            writes: vec![],
            init: None,
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: Expr::f32(1.0),
            }),
        });
        let f = PrimFunc::new("f", vec![], vec![c], Stmt::for_serial(r, 4, blk));
        let mut sch = Schedule::new(f);
        let err = sch.rfactor("s", "r").unwrap_err();
        assert!(err.to_string().contains("C[i] = C[i] + e"), "{err}");
    }

    #[test]
    fn tensorize_requires_constant_extents() {
        let n = Var::i32("n");
        let mi = Var::i32("mi");
        let ni = Var::i32("ni");
        let ki = Var::i32("ki");
        let a = Buffer::global_f32("A", vec![Expr::i32(64)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(64)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(64)]);
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&mi) * 8 + Expr::var(&ni)],
            value: c.load(vec![Expr::var(&mi) * 8 + Expr::var(&ni)])
                + a.load(vec![Expr::var(&mi) * 8 + Expr::var(&ki)])
                    * b.load(vec![Expr::var(&ki) * 8 + Expr::var(&ni)]),
        };
        let body = Stmt::For {
            var: mi.clone(),
            extent: Expr::var(&n), // symbolic extent
            kind: ForKind::Serial,
            body: Box::new(Stmt::for_serial(ni, 8, Stmt::for_serial(ki, 8, store))),
        };
        let f = PrimFunc::new("g", vec![n], vec![a, b, c], body);
        let mut sch = Schedule::new(f);
        let err = sch.tensorize_gemm("mi", "ni", "ki").unwrap_err();
        assert!(err.to_string().contains("constant"), "{err}");
    }

    #[test]
    fn cache_read_of_missing_buffer() {
        let mut sch = Schedule::new(scale_func(4));
        let err = sch
            .cache_read("i", "ZZ", Scope::Shared, Expr::i32(0), Expr::i32(1), &|_| None)
            .unwrap_err();
        assert!(err.to_string().contains("not found"), "{err}");
    }
}

mod verifier {
    use super::*;

    #[test]
    fn scheduled_functions_still_verify() {
        let mut sch = Schedule::new(scale_func(16));
        let (o, i) = sch.split("i", 4).unwrap();
        sch.bind(&o, ThreadAxis::BlockIdxX).unwrap();
        sch.vectorize(&i).unwrap();
        verify(sch.func()).unwrap();
    }

    #[test]
    fn substituted_dangling_var_is_caught() {
        // Manually construct a body referencing a variable that no loop
        // binds — the verifier must reject what the interpreter would also
        // reject, but statically.
        let ghost = Var::i32("ghost");
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let f = PrimFunc::new(
            "bad",
            vec![],
            vec![c.clone()],
            Stmt::BufferStore {
                buffer: c,
                indices: vec![Expr::var(&ghost)],
                value: Expr::f32(0.0),
            },
        );
        assert!(verify(&f).is_err());
        let mut t = HashMap::new();
        t.insert("C".to_string(), TensorData::from(vec![0.0f32; 4]));
        assert!(eval_func(&f, &HashMap::new(), &mut t).is_err());
    }
}
