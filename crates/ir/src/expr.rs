//! Expression AST for the loop-level IR (Stage II/III of SparseTIR).

use crate::buffer::Buffer;
use crate::dtype::DType;
use std::fmt;
use std::rc::Rc;

/// A scalar variable. Identity is by `name`, which lowering keeps unique
/// within a [`crate::func::PrimFunc`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    /// Unique name within the enclosing function.
    pub name: Rc<str>,
    /// Scalar type of the variable.
    pub dtype: DType,
}

impl Var {
    /// Create a new variable of the given type.
    pub fn new(name: impl Into<Rc<str>>, dtype: DType) -> Self {
        Var { name: name.into(), dtype }
    }

    /// Convenience constructor for `int32` loop/index variables.
    pub fn i32(name: impl Into<Rc<str>>) -> Self {
        Var::new(name, DType::I32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Binary operator tags for [`Expr::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// Truncating division (operands in lowering are non-negative, so this
    /// coincides with floor division).
    Div,
    /// Remainder matching [`BinOp::Div`].
    Rem,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// True for comparison/logical operators whose result is `Bool`.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Source-form symbol used by the printer.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "//",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Intrinsic calls understood by the interpreter and code generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `binary_search(buf, lo, hi, x)` — index of `x` in the sorted segment
    /// `buf[lo..hi]`; the compress function `f⁻¹` of SparseTIR's coordinate
    /// translation (paper eq. 4, "find").
    BinarySearch,
    /// `exp(x)`
    Exp,
    /// `sqrt(x)`
    Sqrt,
    /// `relu(x)` = max(x, 0)
    Relu,
}

impl Intrinsic {
    /// Name used in printed IR and generated CUDA.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::BinarySearch => "binary_search",
            Intrinsic::Exp => "exp",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Relu => "relu",
        }
    }
}

/// Expression node. Construct through the helper methods / `From` impls and
/// the `std::ops` overloads rather than spelling out variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer immediate.
    Int {
        /// The literal value.
        value: i64,
        /// Result type.
        dtype: DType,
    },
    /// Floating-point immediate.
    Float {
        /// The literal value.
        value: f64,
        /// Result type.
        dtype: DType,
    },
    /// Variable reference.
    Var(Var),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `select(cond, then, else)` — non-branching conditional.
    Select {
        /// Predicate.
        cond: Box<Expr>,
        /// Value when the predicate holds.
        then: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
    /// Type conversion.
    Cast {
        /// Target type.
        dtype: DType,
        /// Converted expression.
        value: Box<Expr>,
    },
    /// Read `buffer[indices...]`.
    BufferLoad {
        /// Source buffer.
        buffer: Buffer,
        /// Per-dimension indices.
        indices: Vec<Expr>,
    },
    /// Intrinsic call.
    Call {
        /// Which intrinsic.
        intrin: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// `int32` immediate.
    #[must_use]
    pub fn i32(v: i64) -> Expr {
        Expr::Int { value: v, dtype: DType::I32 }
    }

    /// `float32` immediate.
    #[must_use]
    pub fn f32(v: f64) -> Expr {
        Expr::Float { value: v, dtype: DType::F32 }
    }

    /// Variable reference.
    #[must_use]
    pub fn var(v: &Var) -> Expr {
        Expr::Var(v.clone())
    }

    /// Best-effort result type of the expression.
    #[must_use]
    pub fn dtype(&self) -> DType {
        match self {
            Expr::Int { dtype, .. } | Expr::Float { dtype, .. } | Expr::Cast { dtype, .. } => {
                *dtype
            }
            Expr::Var(v) => v.dtype,
            Expr::Binary { op, lhs, .. } => {
                if op.is_predicate() {
                    DType::Bool
                } else {
                    lhs.dtype()
                }
            }
            Expr::Select { then, .. } => then.dtype(),
            Expr::BufferLoad { buffer, .. } => buffer.dtype,
            Expr::Call { intrin, args } => match intrin {
                Intrinsic::BinarySearch => DType::I32,
                _ => args.first().map_or(DType::F32, Expr::dtype),
            },
        }
    }

    /// `min(self, other)`.
    #[must_use]
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Min, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `max(self, other)`.
    #[must_use]
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Max, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self == other`.
    #[must_use]
    pub fn eq(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Eq, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self != other`.
    #[must_use]
    pub fn ne(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Ne, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self < other`.
    #[must_use]
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Lt, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self <= other`.
    #[must_use]
    pub fn le(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Le, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self > other`.
    #[must_use]
    pub fn gt(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Gt, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `self >= other`.
    #[must_use]
    pub fn ge(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::Ge, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// Logical `self && other`.
    #[must_use]
    pub fn and(self, other: impl Into<Expr>) -> Expr {
        Expr::Binary { op: BinOp::And, lhs: Box::new(self), rhs: Box::new(other.into()) }
    }

    /// `select(self, then, otherwise)`.
    #[must_use]
    pub fn select(self, then: impl Into<Expr>, otherwise: impl Into<Expr>) -> Expr {
        Expr::Select {
            cond: Box::new(self),
            then: Box::new(then.into()),
            otherwise: Box::new(otherwise.into()),
        }
    }

    /// `cast(dtype, self)`.
    #[must_use]
    pub fn cast(self, dtype: DType) -> Expr {
        Expr::Cast { dtype, value: Box::new(self) }
    }

    /// If this expression is an integer immediate, return its value.
    #[must_use]
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Expr::Int { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Substitute every occurrence of variable `var` with `with`.
    #[must_use]
    pub fn substitute(&self, var: &Var, with: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == var => with.clone(),
            Expr::Var(_) | Expr::Int { .. } | Expr::Float { .. } => self.clone(),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute(var, with)),
                rhs: Box::new(rhs.substitute(var, with)),
            },
            Expr::Select { cond, then, otherwise } => Expr::Select {
                cond: Box::new(cond.substitute(var, with)),
                then: Box::new(then.substitute(var, with)),
                otherwise: Box::new(otherwise.substitute(var, with)),
            },
            Expr::Cast { dtype, value } => {
                Expr::Cast { dtype: *dtype, value: Box::new(value.substitute(var, with)) }
            }
            Expr::BufferLoad { buffer, indices } => Expr::BufferLoad {
                buffer: buffer.clone(),
                indices: indices.iter().map(|e| e.substitute(var, with)).collect(),
            },
            Expr::Call { intrin, args } => Expr::Call {
                intrin: *intrin,
                args: args.iter().map(|e| e.substitute(var, with)).collect(),
            },
        }
    }

    /// Collect the names of all variables referenced by this expression.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Int { .. } | Expr::Float { .. } => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Select { cond, then, otherwise } => {
                cond.collect_vars(out);
                then.collect_vars(out);
                otherwise.collect_vars(out);
            }
            Expr::Cast { value, .. } => value.collect_vars(out),
            Expr::BufferLoad { indices, .. } => {
                for i in indices {
                    i.collect_vars(out);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Algebraic simplification of the common patterns lowering produces
    /// (`x + 0`, `x * 1`, `x * 0`, constant folding, `0 + x`, `x // 1`).
    #[must_use]
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.simplify();
                let r = rhs.simplify();
                if let (Some(a), Some(b)) = (l.as_const_int(), r.as_const_int()) {
                    let dtype = l.dtype();
                    let v = match op {
                        BinOp::Add => Some(a + b),
                        BinOp::Sub => Some(a - b),
                        BinOp::Mul => Some(a * b),
                        BinOp::Div if b != 0 => Some(a / b),
                        BinOp::Rem if b != 0 => Some(a % b),
                        BinOp::Min => Some(a.min(b)),
                        BinOp::Max => Some(a.max(b)),
                        _ => None,
                    };
                    if let Some(v) = v {
                        return Expr::Int { value: v, dtype };
                    }
                }
                match (op, l.as_const_int(), r.as_const_int()) {
                    (BinOp::Add, Some(0), _) => r,
                    (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => l,
                    (BinOp::Mul, Some(1), _) => r,
                    (BinOp::Mul, _, Some(1)) | (BinOp::Div, _, Some(1)) => l,
                    (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => Expr::i32(0),
                    (BinOp::Rem, _, Some(1)) => Expr::i32(0),
                    _ => Expr::Binary { op: *op, lhs: Box::new(l), rhs: Box::new(r) },
                }
            }
            Expr::Select { cond, then, otherwise } => Expr::Select {
                cond: Box::new(cond.simplify()),
                then: Box::new(then.simplify()),
                otherwise: Box::new(otherwise.simplify()),
            },
            Expr::Cast { dtype, value } => {
                Expr::Cast { dtype: *dtype, value: Box::new(value.simplify()) }
            }
            Expr::BufferLoad { buffer, indices } => Expr::BufferLoad {
                buffer: buffer.clone(),
                indices: indices.iter().map(Expr::simplify).collect(),
            },
            Expr::Call { intrin, args } => {
                Expr::Call { intrin: *intrin, args: args.iter().map(Expr::simplify).collect() }
            }
            _ => self.clone(),
        }
    }
}

impl From<&Var> for Expr {
    fn from(v: &Var) -> Self {
        Expr::Var(v.clone())
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::i32(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::i32(i64::from(v))
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::i32(v as i64)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Self {
        Expr::f32(f64::from(v))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<Expr>> std::ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::Binary { op: $op, lhs: Box::new(self), rhs: Box::new(rhs.into()) }
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, Scope};

    #[test]
    fn operator_overloads_build_binary_nodes() {
        let i = Var::i32("i");
        let e = Expr::var(&i) * 2 + 1;
        match &e {
            Expr::Binary { op: BinOp::Add, lhs, .. } => match lhs.as_ref() {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul, got {other:?}"),
            },
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn simplify_folds_constants_and_identities() {
        let i = Var::i32("i");
        let e = (Expr::var(&i) + 0) * 1 + (Expr::i32(2) * Expr::i32(3));
        let s = e.simplify();
        match s {
            Expr::Binary { op: BinOp::Add, lhs, rhs } => {
                assert_eq!(*lhs, Expr::var(&i));
                assert_eq!(rhs.as_const_int(), Some(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::erasing_op)] // `x * 0` is the expression under test
    fn simplify_mul_zero() {
        let i = Var::i32("i");
        let e = Expr::var(&i) * 0;
        assert_eq!(e.simplify().as_const_int(), Some(0));
    }

    #[test]
    fn substitute_replaces_in_loads() {
        let i = Var::i32("i");
        let buf = Buffer::new("A", DType::F32, vec![Expr::i32(16)], Scope::Global);
        let e = Expr::BufferLoad { buffer: buf, indices: vec![Expr::var(&i) + 1] };
        let sub = e.substitute(&i, &Expr::i32(3));
        match sub {
            Expr::BufferLoad { indices, .. } => {
                assert_eq!(indices[0].simplify().as_const_int(), Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collect_vars_dedups() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let e = Expr::var(&i) + Expr::var(&j) * Expr::var(&i);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn dtype_of_predicate_is_bool() {
        let e = Expr::i32(1).lt(2);
        assert_eq!(e.dtype(), DType::Bool);
    }
}
