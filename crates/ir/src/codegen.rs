//! Target-specific code generation (§3.5 of the paper).
//!
//! Emits CUDA C source text for a lowered, thread-bound [`PrimFunc`].
//! In the paper this stage hands off to TVM's CUDA backend; here (per the
//! reproduction's substitution rules — no GPU available) the generated
//! source is a *demonstration artifact*: it is asserted against golden
//! snapshots in tests and shipped for inspection, while execution happens in
//! the interpreter and performance in `sparsetir-gpusim`.

use crate::expr::{BinOp, Expr, Intrinsic};
use crate::func::PrimFunc;
use crate::stmt::{ForKind, Stmt, ThreadAxis};
use std::fmt::Write;

/// Launch configuration extracted from thread-bound loops.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Grid dimensions `(x, y, z)` when constant.
    pub grid: [Option<i64>; 3],
    /// Block dimensions `(x, y, z)` when constant.
    pub block: [Option<i64>; 3],
}

/// Extract grid/block extents from the function's thread-bound loops.
#[must_use]
pub fn launch_config(func: &PrimFunc) -> LaunchConfig {
    let mut cfg = LaunchConfig::default();
    func.body.walk(&mut |s| {
        if let Stmt::For { extent, kind: ForKind::ThreadBinding(axis), .. } = s {
            let v = extent.as_const_int();
            match axis {
                ThreadAxis::BlockIdxX => cfg.grid[0] = v,
                ThreadAxis::BlockIdxY => cfg.grid[1] = v,
                ThreadAxis::BlockIdxZ => cfg.grid[2] = v,
                ThreadAxis::ThreadIdxX => cfg.block[0] = v,
                ThreadAxis::ThreadIdxY => cfg.block[1] = v,
                ThreadAxis::ThreadIdxZ => cfg.block[2] = v,
            }
        }
    });
    cfg
}

fn ctype(dtype: crate::dtype::DType) -> &'static str {
    use crate::dtype::DType;
    match dtype {
        DType::I32 => "int",
        DType::I64 => "long long",
        DType::F32 => "float",
        DType::F16 => "half",
        DType::Bool => "bool",
    }
}

fn emit_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int { value, .. } => {
            let _ = write!(out, "{value}");
        }
        Expr::Float { value, .. } => {
            let _ = write!(out, "{value:?}f");
        }
        Expr::Var(v) => {
            let _ = write!(out, "{}", v.name);
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Min | BinOp::Max => {
                let _ = write!(out, "{}(", if *op == BinOp::Min { "min" } else { "max" });
                emit_expr(lhs, out);
                out.push_str(", ");
                emit_expr(rhs, out);
                out.push(')');
            }
            _ => {
                out.push('(');
                emit_expr(lhs, out);
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Min | BinOp::Max => unreachable!(),
                };
                let _ = write!(out, " {sym} ");
                emit_expr(rhs, out);
                out.push(')');
            }
        },
        Expr::Select { cond, then, otherwise } => {
            out.push('(');
            emit_expr(cond, out);
            out.push_str(" ? ");
            emit_expr(then, out);
            out.push_str(" : ");
            emit_expr(otherwise, out);
            out.push(')');
        }
        Expr::Cast { dtype, value } => {
            let _ = write!(out, "({})(", ctype(*dtype));
            emit_expr(value, out);
            out.push(')');
        }
        Expr::BufferLoad { buffer, indices } => {
            let _ = write!(out, "{}[", buffer.name);
            // Flatten row-major for multi-dim buffers.
            if indices.len() == 1 {
                emit_expr(&indices[0], out);
            } else {
                let mut flat = indices[0].clone();
                for (idx, dim) in indices.iter().zip(&buffer.shape).skip(1) {
                    flat = flat * dim.clone() + idx.clone();
                }
                emit_expr(&flat.simplify(), out);
            }
            out.push(']');
        }
        Expr::Call { intrin, args } => match intrin {
            Intrinsic::BinarySearch => {
                out.push_str("__binary_search(");
                if let Expr::BufferLoad { buffer, .. } = &args[0] {
                    let _ = write!(out, "{}, ", buffer.name);
                }
                emit_expr(&args[1], out);
                out.push_str(", ");
                emit_expr(&args[2], out);
                out.push_str(", ");
                emit_expr(&args[3], out);
                out.push(')');
            }
            _ => {
                let _ = write!(out, "{}(", intrin.name());
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    emit_expr(a, out);
                }
                out.push(')');
            }
        },
    }
}

fn pad(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn emit_stmt(s: &Stmt, out: &mut String, level: usize) {
    match s {
        Stmt::For { var, extent, kind, body } => match kind {
            ForKind::ThreadBinding(axis) => {
                pad(out, level);
                let _ = writeln!(out, "const int {} = {};  // extent {}", var.name, axis.name(), {
                    let mut e = String::new();
                    emit_expr(extent, &mut e);
                    e
                });
                emit_stmt(body, out, level);
            }
            _ => {
                pad(out, level);
                let pragma = match kind {
                    ForKind::Unrolled => "#pragma unroll\n",
                    ForKind::Vectorized => "// vectorized (float4)\n",
                    _ => "",
                };
                if !pragma.is_empty() {
                    out.push_str(pragma);
                    pad(out, level);
                }
                let mut e = String::new();
                emit_expr(extent, &mut e);
                let _ = writeln!(out, "for (int {v} = 0; {v} < {e}; ++{v}) {{", v = var.name);
                emit_stmt(body, out, level + 1);
                pad(out, level);
                out.push_str("}\n");
            }
        },
        Stmt::Block(b) => {
            pad(out, level);
            let _ = writeln!(out, "// block: {}", b.name);
            // Bind iter vars as consts first — the init body reads them.
            for iv in &b.iter_vars {
                pad(out, level);
                let mut e = String::new();
                emit_expr(&iv.binding, &mut e);
                let _ = writeln!(out, "const int {} = {};", iv.var.name, e);
            }
            if let Some(init) = &b.init {
                pad(out, level);
                out.push_str("// init (predicated on first reduction iteration)\n");
                // Emit guarded init when reduction vars exist.
                let conds: Vec<String> = b
                    .iter_vars
                    .iter()
                    .filter(|iv| iv.kind == crate::stmt::IterKind::Reduce)
                    .map(|iv| format!("({} == 0)", iv.var.name))
                    .collect();
                if conds.is_empty() {
                    emit_stmt(init, out, level);
                } else {
                    pad(out, level);
                    let _ = writeln!(out, "if ({}) {{", conds.join(" && "));
                    emit_stmt(init, out, level + 1);
                    pad(out, level);
                    out.push_str("}\n");
                }
            }
            emit_stmt(&b.body, out, level);
        }
        Stmt::BufferStore { buffer, indices, value } => {
            pad(out, level);
            let load = Expr::BufferLoad { buffer: buffer.clone(), indices: indices.to_vec() };
            let mut lhs = String::new();
            emit_expr(&load, &mut lhs);
            let mut rhs = String::new();
            emit_expr(value, &mut rhs);
            let _ = writeln!(out, "{lhs} = {rhs};");
        }
        Stmt::Seq(stmts) => {
            for st in stmts {
                emit_stmt(st, out, level);
            }
        }
        Stmt::IfThenElse { cond, then_branch, else_branch } => {
            pad(out, level);
            let mut c = String::new();
            emit_expr(cond, &mut c);
            let _ = writeln!(out, "if ({c}) {{");
            emit_stmt(then_branch, out, level + 1);
            pad(out, level);
            out.push_str("}\n");
            if let Some(e) = else_branch {
                pad(out, level);
                out.push_str("else {\n");
                emit_stmt(e, out, level + 1);
                pad(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::Let { var, value, body } => {
            pad(out, level);
            let mut v = String::new();
            emit_expr(value, &mut v);
            let _ = writeln!(out, "const int {} = {};", var.name, v);
            emit_stmt(body, out, level);
        }
        Stmt::Allocate { buffer, body } => {
            pad(out, level);
            let size: String = {
                let mut total = Expr::i32(1);
                for d in &buffer.shape {
                    total = total * d.clone();
                }
                let mut s = String::new();
                emit_expr(&total.simplify(), &mut s);
                s
            };
            let qual = match buffer.scope {
                crate::buffer::Scope::Shared => "__shared__ ",
                _ => "",
            };
            let _ = writeln!(out, "{qual}{} {}[{size}];", ctype(buffer.dtype), buffer.name);
            emit_stmt(body, out, level);
        }
        Stmt::Evaluate(e) => {
            pad(out, level);
            let mut s = String::new();
            emit_expr(e, &mut s);
            let _ = writeln!(out, "{s};");
        }
        Stmt::MmaSync { c, a, b, m, n, k } => {
            pad(out, level);
            let p = |e: &Expr| {
                let mut s = String::new();
                emit_expr(e, &mut s);
                s
            };
            let _ = writeln!(
                out,
                "wmma::mma_sync(&{}[{}], &{}[{}], &{}[{}]); // m{m}n{n}k{k}",
                c.buffer.name,
                p(&c.offset),
                a.buffer.name,
                p(&a.offset),
                b.buffer.name,
                p(&b.offset),
            );
        }
    }
}

/// Generate CUDA C source for a lowered function.
#[must_use]
pub fn codegen_cuda(func: &PrimFunc) -> String {
    let mut out = String::new();
    out.push_str("// generated by sparsetir-rs codegen\n");
    out.push_str(
        "__device__ int __binary_search(const int* arr, int lo, int hi, int x) {\n  while (lo < hi) { int mid = (lo + hi) >> 1; if (arr[mid] < x) lo = mid + 1; else hi = mid; }\n  return lo;\n}\n\n",
    );
    let params: Vec<String> = func
        .buffers
        .iter()
        .map(|b| format!("{}* __restrict__ {}", ctype(b.dtype), b.name))
        .chain(func.params.iter().map(|p| format!("{} {}", ctype(p.dtype), p.name)))
        .collect();
    let _ = writeln!(out, "extern \"C\" __global__ void {}({}) {{", func.name, params.join(", "));
    emit_stmt(&func.body, &mut out, 1);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::Var;
    use crate::schedule::Schedule;
    use crate::stmt::Stmt;

    fn scale_func() -> PrimFunc {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(64)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(64)]);
        let body = Stmt::for_serial(
            i.clone(),
            64,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: a.load(vec![Expr::var(&i)]) * 2.0f32,
            },
        );
        PrimFunc::new("scale", vec![], vec![a, c], body)
    }

    #[test]
    fn emits_kernel_signature() {
        let src = codegen_cuda(&scale_func());
        assert!(
            src.contains("__global__ void scale(float* __restrict__ A, float* __restrict__ C)"),
            "{src}"
        );
        assert!(src.contains("for (int i = 0; i < 64; ++i)"), "{src}");
    }

    #[test]
    fn thread_bindings_become_builtins() {
        let mut sch = Schedule::new(scale_func());
        let (o, i) = sch.split("i", 32).unwrap();
        sch.bind(&o, crate::stmt::ThreadAxis::BlockIdxX).unwrap();
        sch.bind(&i, crate::stmt::ThreadAxis::ThreadIdxX).unwrap();
        let src = codegen_cuda(sch.func());
        assert!(src.contains("const int i_o = blockIdx.x;"), "{src}");
        assert!(src.contains("const int i_i = threadIdx.x;"), "{src}");
        let cfg = launch_config(sch.func());
        assert_eq!(cfg.grid[0], Some(2));
        assert_eq!(cfg.block[0], Some(32));
    }

    #[test]
    fn unroll_emits_pragma() {
        let mut sch = Schedule::new(scale_func());
        sch.unroll("i").unwrap();
        let src = codegen_cuda(sch.func());
        assert!(src.contains("#pragma unroll"), "{src}");
    }
}
