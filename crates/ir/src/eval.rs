//! Reference interpreter for the loop-level IR.
//!
//! The interpreter establishes *functional* semantics: every kernel in this
//! workspace is validated by interpreting its lowered Stage III IR against
//! the dense/sparse reference routines in `sparsetir-smat`. Performance is
//! modeled separately by `sparsetir-gpusim`; the interpreter executes
//! thread-bound loops sequentially (a valid serialization, since blocks
//! carry spatial/reduction semantics).

use crate::buffer::Buffer;
use crate::dtype::DType;
use crate::expr::{BinOp, Expr, Intrinsic, Var};
use crate::func::PrimFunc;
use crate::stmt::{IterKind, Stmt, TensorTile};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Flat tensor storage bound to a buffer name.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// `float32` (also backs `float16` buffers functionally).
    F32(Vec<f32>),
    /// `int32` (indptr/indices auxiliary arrays).
    I32(Vec<i32>),
}

impl TensorData {
    /// Zero-filled storage of `len` elements matching `dtype`.
    #[must_use]
    pub fn zeros(dtype: DType, len: usize) -> TensorData {
        if dtype.is_float() {
            TensorData::F32(vec![0.0; len])
        } else {
            TensorData::I32(vec![0; len])
        }
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::I32(v) => v.len(),
        }
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View as `f32` slice.
    ///
    /// # Panics
    /// Panics if the storage is integer.
    #[must_use]
    pub fn as_f32(&self) -> &[f32] {
        match self {
            TensorData::F32(v) => v,
            TensorData::I32(_) => panic!("expected f32 tensor"),
        }
    }

    /// View as `i32` slice.
    ///
    /// # Panics
    /// Panics if the storage is floating-point.
    #[must_use]
    pub fn as_i32(&self) -> &[i32] {
        match self {
            TensorData::I32(v) => v,
            TensorData::F32(_) => panic!("expected i32 tensor"),
        }
    }
}

impl From<Vec<f32>> for TensorData {
    fn from(v: Vec<f32>) -> Self {
        TensorData::F32(v)
    }
}

impl From<Vec<i32>> for TensorData {
    fn from(v: Vec<i32>) -> Self {
        TensorData::I32(v)
    }
}

/// Operation categories reported by the counting interpreter
/// ([`eval_func_counting`]): used by `analysis::count_ops` to cross-check
/// simulator plans against the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// One floating-point arithmetic operation.
    Flop,
    /// One buffer element load.
    Load,
    /// One buffer element store.
    Store,
}

/// Scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    fn as_int(self) -> Result<i64, EvalError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Bool(b) => Ok(i64::from(b)),
            Value::Float(v) => Err(EvalError::new(format!("expected int, got float {v}"))),
        }
    }

    fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Bool(b) => f64::from(u8::from(b)),
        }
    }

    fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

/// Error raised during interpretation (unbound names, OOB accesses, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> Self {
        EvalError { message: message.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

struct Interp<'a, 'h> {
    env: HashMap<String, i64>,
    tensors: &'a mut HashMap<String, TensorData>,
    locals: Vec<String>,
    hook: Option<RefCell<&'h mut dyn FnMut(OpKind)>>,
}

impl<'a, 'h> Interp<'a, 'h> {
    fn tick(&self, kind: OpKind) {
        if let Some(h) = &self.hook {
            (h.borrow_mut())(kind);
        }
    }

    fn eval(&self, e: &Expr) -> Result<Value, EvalError> {
        match e {
            Expr::Int { value, .. } => Ok(Value::Int(*value)),
            Expr::Float { value, .. } => Ok(Value::Float(*value)),
            Expr::Var(v) => self
                .env
                .get(&*v.name.to_string())
                .copied()
                .map(Value::Int)
                .ok_or_else(|| EvalError::new(format!("unbound variable `{}`", v.name))),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                self.eval_binop(*op, l, r)
            }
            Expr::Select { cond, then, otherwise } => {
                if self.eval(cond)?.as_bool() {
                    self.eval(then)
                } else {
                    self.eval(otherwise)
                }
            }
            Expr::Cast { dtype, value } => {
                let v = self.eval(value)?;
                Ok(if dtype.is_float() {
                    Value::Float(v.as_float())
                } else {
                    Value::Int(v.as_float() as i64)
                })
            }
            Expr::BufferLoad { buffer, indices } => {
                self.tick(OpKind::Load);
                let flat = self.flatten_index(buffer, indices)?;
                let data = self
                    .tensors
                    .get(&*buffer.name.to_string())
                    .ok_or_else(|| EvalError::new(format!("unbound buffer `{}`", buffer.name)))?;
                match data {
                    TensorData::F32(v) => v
                        .get(flat)
                        .map(|x| Value::Float(f64::from(*x)))
                        .ok_or_else(|| oob(&buffer.name, flat, v.len())),
                    TensorData::I32(v) => v
                        .get(flat)
                        .map(|x| Value::Int(i64::from(*x)))
                        .ok_or_else(|| oob(&buffer.name, flat, v.len())),
                }
            }
            Expr::Call { intrin, args } => self.eval_call(*intrin, args),
        }
    }

    fn eval_binop(&self, op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
        use BinOp::*;
        let float = matches!(l, Value::Float(_)) || matches!(r, Value::Float(_));
        if op.is_predicate() {
            let b = if float {
                let (a, b) = (l.as_float(), r.as_float());
                match op {
                    Eq => a == b,
                    Ne => a != b,
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    And => l.as_bool() && r.as_bool(),
                    Or => l.as_bool() || r.as_bool(),
                    _ => unreachable!(),
                }
            } else {
                let (a, b) = (l.as_int()?, r.as_int()?);
                match op {
                    Eq => a == b,
                    Ne => a != b,
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    And => a != 0 && b != 0,
                    Or => a != 0 || b != 0,
                    _ => unreachable!(),
                }
            };
            return Ok(Value::Bool(b));
        }
        if float {
            self.tick(OpKind::Flop);
            let (a, b) = (l.as_float(), r.as_float());
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Rem => a % b,
                Min => a.min(b),
                Max => a.max(b),
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        } else {
            let (a, b) = (l.as_int()?, r.as_int()?);
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0 {
                        return Err(EvalError::new("integer division by zero"));
                    }
                    a.div_euclid(b)
                }
                Rem => {
                    if b == 0 {
                        return Err(EvalError::new("integer remainder by zero"));
                    }
                    a.rem_euclid(b)
                }
                Min => a.min(b),
                Max => a.max(b),
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
    }

    fn eval_call(&self, intrin: Intrinsic, args: &[Expr]) -> Result<Value, EvalError> {
        match intrin {
            Intrinsic::BinarySearch => {
                let [buf, lo, hi, x] = args else {
                    return Err(EvalError::new("binary_search expects 4 args"));
                };
                let Expr::BufferLoad { buffer, .. } = buf else {
                    return Err(EvalError::new("binary_search arg 0 must name a buffer"));
                };
                let lo = self.eval(lo)?.as_int()? as usize;
                let hi = self.eval(hi)?.as_int()? as usize;
                let x = self.eval(x)?.as_int()? as i32;
                let data = self
                    .tensors
                    .get(&*buffer.name.to_string())
                    .ok_or_else(|| EvalError::new(format!("unbound buffer `{}`", buffer.name)))?;
                let seg = &data.as_i32()[lo..hi];
                let pos = seg.partition_point(|&v| v < x);
                Ok(Value::Int(pos as i64))
            }
            Intrinsic::Exp => Ok(Value::Float(self.eval(&args[0])?.as_float().exp())),
            Intrinsic::Sqrt => Ok(Value::Float(self.eval(&args[0])?.as_float().sqrt())),
            Intrinsic::Relu => Ok(Value::Float(self.eval(&args[0])?.as_float().max(0.0))),
        }
    }

    fn flatten_index(&self, buffer: &Buffer, indices: &[Expr]) -> Result<usize, EvalError> {
        if indices.len() != buffer.shape.len() {
            return Err(EvalError::new(format!(
                "buffer `{}` has {} dims but {} indices given",
                buffer.name,
                buffer.shape.len(),
                indices.len()
            )));
        }
        let mut flat: i64 = 0;
        for (idx, dim) in indices.iter().zip(&buffer.shape) {
            let d = self.eval(dim)?.as_int()?;
            let i = self.eval(idx)?.as_int()?;
            if i < 0 || i >= d {
                return Err(EvalError::new(format!(
                    "index {i} out of bounds for dim of extent {d} in buffer `{}`",
                    buffer.name
                )));
            }
            flat = flat * d + i;
        }
        Ok(flat as usize)
    }

    fn store(&mut self, buffer: &Buffer, indices: &[Expr], value: Value) -> Result<(), EvalError> {
        self.tick(OpKind::Store);
        let flat = self.flatten_index(buffer, indices)?;
        let data = self
            .tensors
            .get_mut(&*buffer.name.to_string())
            .ok_or_else(|| EvalError::new(format!("unbound buffer `{}`", buffer.name)))?;
        match data {
            TensorData::F32(v) => {
                let len = v.len();
                *v.get_mut(flat).ok_or_else(|| oob(&buffer.name, flat, len))? =
                    value.as_float() as f32;
            }
            TensorData::I32(v) => {
                let len = v.len();
                *v.get_mut(flat).ok_or_else(|| oob(&buffer.name, flat, len))? =
                    value.as_int()? as i32;
            }
        }
        Ok(())
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), EvalError> {
        match s {
            Stmt::For { var, extent, body, .. } => {
                let n = self.eval(extent)?.as_int()?;
                let name = var.name.to_string();
                let saved = self.env.get(&name).copied();
                for i in 0..n {
                    self.env.insert(name.clone(), i);
                    self.exec(body)?;
                }
                restore(&mut self.env, name, saved);
                Ok(())
            }
            Stmt::Block(b) => {
                // Bind iter vars from their binding expressions.
                let mut saved = Vec::new();
                let mut init_needed = true;
                for iv in &b.iter_vars {
                    let v = self.eval(&iv.binding)?.as_int()?;
                    if iv.kind == IterKind::Reduce && v != 0 {
                        init_needed = false;
                    }
                    let name = iv.var.name.to_string();
                    saved.push((name.clone(), self.env.get(&name).copied()));
                    self.env.insert(name, v);
                }
                if b.iter_vars.iter().all(|iv| iv.kind == IterKind::Spatial) {
                    init_needed = b.init.is_some();
                }
                if init_needed {
                    if let Some(init) = &b.init {
                        self.exec(init)?;
                    }
                }
                let r = self.exec(&b.body);
                for (name, old) in saved {
                    restore(&mut self.env, name, old);
                }
                r
            }
            Stmt::BufferStore { buffer, indices, value } => {
                let v = self.eval(value)?;
                self.store(buffer, indices, v)
            }
            Stmt::Seq(stmts) => {
                for st in stmts {
                    self.exec(st)?;
                }
                Ok(())
            }
            Stmt::IfThenElse { cond, then_branch, else_branch } => {
                if self.eval(cond)?.as_bool() {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(())
                }
            }
            Stmt::Let { var, value, body } => {
                let v = self.eval(value)?.as_int()?;
                let name = var.name.to_string();
                let saved = self.env.get(&name).copied();
                self.env.insert(name.clone(), v);
                let r = self.exec(body);
                restore(&mut self.env, name, saved);
                r
            }
            Stmt::Allocate { buffer, body } => {
                let len: i64 = {
                    let mut acc = 1i64;
                    for d in &buffer.shape {
                        acc *= self.eval(d)?.as_int()?;
                    }
                    acc
                };
                let name = buffer.name.to_string();
                self.tensors.insert(name.clone(), TensorData::zeros(buffer.dtype, len as usize));
                self.locals.push(name.clone());
                let r = self.exec(body);
                self.tensors.remove(&name);
                self.locals.pop();
                r
            }
            Stmt::Evaluate(e) => {
                self.eval(e)?;
                Ok(())
            }
            Stmt::MmaSync { c, a, b, m, n, k } => self.mma(c, a, b, *m, *n, *k),
        }
    }

    fn tile_base(&self, t: &TensorTile) -> Result<(String, usize, usize), EvalError> {
        let off = self.eval(&t.offset)?.as_int()?;
        let stride = self.eval(&t.row_stride)?.as_int()?;
        if off < 0 || stride < 0 {
            return Err(EvalError::new("negative tile offset/stride"));
        }
        Ok((t.buffer.name.to_string(), off as usize, stride as usize))
    }

    fn mma(
        &mut self,
        c: &TensorTile,
        a: &TensorTile,
        b: &TensorTile,
        m: usize,
        n: usize,
        k: usize,
    ) -> Result<(), EvalError> {
        let (an, ao, asn) = self.tile_base(a)?;
        let (bn, bo, bsn) = self.tile_base(b)?;
        let (cn, co, csn) = self.tile_base(c)?;
        let read = |tensors: &HashMap<String, TensorData>,
                    name: &str,
                    idx: usize|
         -> Result<f32, EvalError> {
            let t = tensors
                .get(name)
                .ok_or_else(|| EvalError::new(format!("unbound buffer `{name}`")))?;
            let v = t.as_f32();
            v.get(idx).copied().ok_or_else(|| oob(name, idx, v.len()))
        };
        for _ in 0..2 * m * n * k {
            self.tick(OpKind::Flop);
        }
        for _ in 0..m * k + k * n {
            self.tick(OpKind::Load);
        }
        for _ in 0..m * n {
            self.tick(OpKind::Store);
        }
        let mut acc = vec![0.0f32; m * n];
        for mi in 0..m {
            for ni in 0..n {
                let mut sum = 0.0f32;
                for ki in 0..k {
                    let av = read(self.tensors, &an, ao + mi * asn + ki)?;
                    let bv = read(self.tensors, &bn, bo + ki * bsn + ni)?;
                    sum += av * bv;
                }
                acc[mi * n + ni] = sum;
            }
        }
        let ct = self
            .tensors
            .get_mut(&cn)
            .ok_or_else(|| EvalError::new(format!("unbound buffer `{cn}`")))?;
        let cv = match ct {
            TensorData::F32(v) => v,
            TensorData::I32(_) => return Err(EvalError::new("mma_sync target must be float")),
        };
        for mi in 0..m {
            for ni in 0..n {
                let idx = co + mi * csn + ni;
                let len = cv.len();
                *cv.get_mut(idx).ok_or_else(|| oob(&cn, idx, len))? += acc[mi * n + ni];
            }
        }
        Ok(())
    }
}

fn restore(env: &mut HashMap<String, i64>, name: String, saved: Option<i64>) {
    match saved {
        Some(v) => {
            env.insert(name, v);
        }
        None => {
            env.remove(&name);
        }
    }
}

fn oob(name: &str, idx: usize, len: usize) -> EvalError {
    EvalError::new(format!("flat index {idx} out of bounds (len {len}) in buffer `{name}`"))
}

/// Execute `func` with the given scalar parameter bindings and named
/// tensor storage. Output buffers are mutated in place.
///
/// # Errors
/// Returns [`EvalError`] on unbound names, shape mismatches and
/// out-of-bounds accesses.
pub fn eval_func(
    func: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &mut HashMap<String, TensorData>,
) -> Result<(), EvalError> {
    let mut env = HashMap::new();
    for p in &func.params {
        let v = scalars
            .get(&*p.name.to_string())
            .ok_or_else(|| EvalError::new(format!("missing scalar param `{}`", p.name)))?;
        env.insert(p.name.to_string(), *v);
    }
    for b in &func.buffers {
        if !tensors.contains_key(&*b.name.to_string()) {
            return Err(EvalError::new(format!("missing tensor binding for buffer `{}`", b.name)));
        }
    }
    let mut interp = Interp { env, tensors, locals: Vec::new(), hook: None };
    interp.exec(&func.body)
}

/// Like [`eval_func`], but reports every executed float op, load and store
/// through `hook` (used by `analysis::count_ops`).
///
/// # Errors
/// Same conditions as [`eval_func`].
pub fn eval_func_counting(
    func: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &mut HashMap<String, TensorData>,
    hook: &mut dyn FnMut(OpKind),
) -> Result<(), EvalError> {
    let mut env = HashMap::new();
    for p in &func.params {
        let v = scalars
            .get(&*p.name.to_string())
            .ok_or_else(|| EvalError::new(format!("missing scalar param `{}`", p.name)))?;
        env.insert(p.name.to_string(), *v);
    }
    for b in &func.buffers {
        if !tensors.contains_key(&*b.name.to_string()) {
            return Err(EvalError::new(format!("missing tensor binding for buffer `{}`", b.name)));
        }
    }
    let mut interp = Interp { env, tensors, locals: Vec::new(), hook: Some(RefCell::new(hook)) };
    interp.exec(&func.body)
}

/// Convenience: bind a parameter list by name→value pairs.
#[must_use]
pub fn scalar_map(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

#[allow(unused)]
fn var_unused(_: &Var) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, Scope};
    use crate::stmt::{Block, ForKind, IterVar};

    /// Build `C[i] = A[i] + B[i]` over n=4 and run it.
    #[test]
    fn vector_add() {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(4)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let body = Stmt::for_serial(
            i.clone(),
            4,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: a.load(vec![Expr::var(&i)]) + b.load(vec![Expr::var(&i)]),
            },
        );
        let f = PrimFunc::new("add", vec![], vec![a, b, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0, 2.0, 3.0, 4.0]));
        tensors.insert("B".to_string(), TensorData::from(vec![10.0, 20.0, 30.0, 40.0]));
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 4));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[11.0, 22.0, 33.0, 44.0]);
    }

    /// Reduction block with init: sum over j with init C[i]=0.
    #[test]
    fn reduction_with_init() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let a = Buffer::global_f32("A", vec![Expr::i32(2), Expr::i32(3)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(2)]);
        let vi = Var::i32("vi");
        let vj = Var::i32("vj");
        let block = Stmt::Block(Block {
            name: "sum".into(),
            iter_vars: vec![
                IterVar::spatial(vi.clone(), Expr::var(&i)),
                IterVar::reduce(vj.clone(), Expr::var(&j)),
            ],
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vi)],
                value: Expr::f32(0.0),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vi)],
                value: c.load(vec![Expr::var(&vi)]) + a.load(vec![Expr::var(&vi), Expr::var(&vj)]),
            }),
        });
        let body = Stmt::for_serial(i.clone(), 2, Stmt::for_serial(j.clone(), 3, block));
        let f = PrimFunc::new("rowsum", vec![], vec![a, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tensors.insert("C".to_string(), TensorData::from(vec![99.0, 99.0]));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[6.0, 15.0]);
    }

    #[test]
    fn thread_binding_executes_serially() {
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
        let body = Stmt::For {
            var: i.clone(),
            extent: Expr::i32(8),
            kind: ForKind::ThreadBinding(crate::stmt::ThreadAxis::ThreadIdxX),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: Expr::var(&i).cast(DType::F32),
            }),
        };
        let f = PrimFunc::new("iota", vec![], vec![c], body);
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32()[7], 7.0);
    }

    #[test]
    fn binary_search_intrinsic() {
        let idx = Buffer::global_i32("indices", vec![Expr::i32(5)]);
        let out = Buffer::global_i32("out", vec![Expr::i32(1)]);
        let call = Expr::Call {
            intrin: Intrinsic::BinarySearch,
            args: vec![idx.load(vec![Expr::i32(0)]), Expr::i32(0), Expr::i32(5), Expr::i32(9)],
        };
        let body =
            Stmt::BufferStore { buffer: out.clone(), indices: vec![Expr::i32(0)], value: call };
        let f = PrimFunc::new("find", vec![], vec![idx, out], body);
        let mut tensors = HashMap::new();
        tensors.insert("indices".to_string(), TensorData::from(vec![1, 3, 9, 10, 12]));
        tensors.insert("out".to_string(), TensorData::zeros(DType::I32, 1));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        // coordinate 9 is at position 2, matching the paper's example in §3.3.
        assert_eq!(tensors["out"].as_i32(), &[2]);
    }

    #[test]
    fn mma_sync_accumulates() {
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(4)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let tile = |buf: &Buffer, stride: i64| TensorTile {
            buffer: buf.clone(),
            offset: Expr::i32(0),
            row_stride: Expr::i32(stride),
        };
        let body =
            Stmt::MmaSync { c: tile(&c, 2), a: tile(&a, 2), b: tile(&b, 2), m: 2, n: 2, k: 2 };
        let f = PrimFunc::new("mma", vec![], vec![a, b, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0, 2.0, 3.0, 4.0]));
        tensors.insert("B".to_string(), TensorData::from(vec![5.0, 6.0, 7.0, 8.0]));
        tensors.insert("C".to_string(), TensorData::from(vec![1.0, 0.0, 0.0, 0.0]));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]; C starts with 1 at (0,0).
        assert_eq!(tensors["C"].as_f32(), &[20.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn allocate_scopes_local_buffer() {
        let tmp = Buffer::new("tmp", DType::F32, vec![Expr::i32(2)], Scope::Shared);
        let out = Buffer::global_f32("out", vec![Expr::i32(1)]);
        let body = Stmt::Allocate {
            buffer: tmp.clone(),
            body: Box::new(
                Stmt::BufferStore {
                    buffer: tmp.clone(),
                    indices: vec![Expr::i32(0)],
                    value: Expr::f32(5.0),
                }
                .then(Stmt::BufferStore {
                    buffer: out.clone(),
                    indices: vec![Expr::i32(0)],
                    value: tmp.load(vec![Expr::i32(0)]) * 2.0f32,
                }),
            ),
        };
        let f = PrimFunc::new("stage", vec![], vec![out], body);
        let mut tensors = HashMap::new();
        tensors.insert("out".to_string(), TensorData::zeros(DType::F32, 1));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["out"].as_f32(), &[10.0]);
        assert!(!tensors.contains_key("tmp"));
    }

    #[test]
    fn missing_binding_errors() {
        let c = Buffer::global_f32("C", vec![Expr::i32(1)]);
        let f = PrimFunc::new("f", vec![], vec![c], Stmt::nop());
        let mut tensors = HashMap::new();
        let err = eval_func(&f, &HashMap::new(), &mut tensors).unwrap_err();
        assert!(err.to_string().contains("missing tensor binding"));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let c = Buffer::global_f32("C", vec![Expr::i32(2)]);
        let body = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::i32(5)],
            value: Expr::f32(0.0),
        };
        let f = PrimFunc::new("f", vec![], vec![c], body);
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 2));
        assert!(eval_func(&f, &HashMap::new(), &mut tensors).is_err());
    }

    #[test]
    fn scalar_params_bind_extents() {
        let n = Var::i32("n");
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::var(&n)]);
        let body = Stmt::for_serial(
            i.clone(),
            Expr::var(&n),
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: Expr::f32(1.0),
            },
        );
        let f = PrimFunc::new("ones", vec![n], vec![c], body);
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 3));
        eval_func(&f, &scalar_map(&[("n", 3)]), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[1.0, 1.0, 1.0]);
    }
}
