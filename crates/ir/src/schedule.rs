//! Schedule primitives over the loop-level IR.
//!
//! These are the Stage II/III "composable transformations" of the paper
//! (§3.3.2): every primitive rewrites the [`PrimFunc`] in place and keeps
//! functional semantics unchanged (validated by interpreting before/after in
//! the test suite). Supported primitives mirror the TVM subset the paper
//! relies on: `split`, `fuse`, `reorder`, `bind`, `parallel`, `vectorize`,
//! `unroll`, `cache_read`/`cache_write` (explicit-rewrite form), `rfactor`
//! and `tensorize`.

use crate::buffer::{Buffer, Scope};
use crate::expr::{BinOp, Expr, Var};
use crate::func::PrimFunc;
use crate::stmt::{Block, ForKind, IterKind, IterVar, Stmt, TensorTile, ThreadAxis};
use std::fmt;
use std::rc::Rc;

/// Error raised by schedule primitives (loop not found, illegal nesting, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    message: String,
}

impl ScheduleError {
    fn new(message: impl Into<String>) -> Self {
        ScheduleError { message: message.into() }
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule error: {}", self.message)
    }
}

impl std::error::Error for ScheduleError {}

type Result<T> = std::result::Result<T, ScheduleError>;

/// A scheduling handle over a function. Primitives mutate the wrapped
/// function; call [`Schedule::into_func`] to retrieve the result.
#[derive(Debug, Clone)]
pub struct Schedule {
    func: PrimFunc,
}

impl Schedule {
    /// Wrap a function for scheduling.
    #[must_use]
    pub fn new(func: PrimFunc) -> Self {
        Schedule { func }
    }

    /// Borrow the current function.
    #[must_use]
    pub fn func(&self) -> &PrimFunc {
        &self.func
    }

    /// Unwrap the scheduled function.
    #[must_use]
    pub fn into_func(self) -> PrimFunc {
        self.func
    }

    /// Loop variable names on the path to the named block (outer→inner).
    pub fn get_loops(&self, block: &str) -> Result<Vec<String>> {
        self.func
            .body
            .loops_of_block(block)
            .map(|v| v.iter().map(|(var, _, _)| var.name.to_string()).collect())
            .ok_or_else(|| ScheduleError::new(format!("block `{block}` not found")))
    }

    /// Split `loop_var` by `factor` into `(outer, inner)` loops;
    /// returns their names. A bounds guard is inserted unless the extent is
    /// a constant multiple of `factor`.
    pub fn split(&mut self, loop_var: &str, factor: i64) -> Result<(String, String)> {
        if factor <= 0 {
            return Err(ScheduleError::new("split factor must be positive"));
        }
        let outer_name = self.func.fresh_name(&format!("{loop_var}_o"));
        // Reserve by binding a dummy: compute inner after outer is placed.
        let inner_name = {
            let mut n = format!("{loop_var}_i");
            if n == outer_name {
                n.push('x');
            }
            self.func.fresh_name(&n)
        };
        let mut found = false;
        let body = replace_loop(&self.func.body, loop_var, &mut |var, extent, kind, body| {
            found = true;
            let outer = Var::new(outer_name.clone(), var.dtype);
            let inner = Var::new(inner_name.clone(), var.dtype);
            let fused = (Expr::var(&outer) * factor + Expr::var(&inner)).simplify();
            let new_body = body.substitute(&var, &fused);
            let guarded = match extent.as_const_int() {
                Some(e) if e % factor == 0 => new_body,
                _ => Stmt::IfThenElse {
                    cond: fused.clone().lt(extent.clone()),
                    then_branch: Box::new(new_body),
                    else_branch: None,
                },
            };
            let outer_extent = ((extent.clone() + (factor - 1)) / Expr::i32(factor)).simplify();
            Stmt::For {
                var: outer,
                extent: outer_extent,
                kind,
                body: Box::new(Stmt::For {
                    var: inner,
                    extent: Expr::i32(factor),
                    kind: ForKind::Serial,
                    body: Box::new(guarded),
                }),
            }
        });
        if !found {
            return Err(ScheduleError::new(format!("loop `{loop_var}` not found")));
        }
        self.func.body = body;
        Ok((outer_name, inner_name))
    }

    /// Fuse perfectly nested loops `outer` and `inner` into one; returns the
    /// fused loop name. This is the loop-level fuse (distinct from Stage I's
    /// `sparse_fuse`).
    pub fn fuse(&mut self, outer: &str, inner: &str) -> Result<String> {
        let fused_name = self.func.fresh_name(&format!("{outer}_{inner}_f"));
        let mut err = None;
        let mut found = false;
        let body = replace_loop(&self.func.body, outer, &mut |ovar, oext, okind, obody| {
            found = true;
            let Stmt::For { var: ivar, extent: iext, body: ibody, .. } = obody.clone() else {
                err = Some(ScheduleError::new(format!(
                    "loops `{outer}` and `{inner}` are not perfectly nested"
                )));
                return Stmt::For { var: ovar, extent: oext, kind: okind, body: Box::new(obody) };
            };
            if &*ivar.name != inner {
                err = Some(ScheduleError::new(format!(
                    "inner loop of `{outer}` is `{}`, expected `{inner}`",
                    ivar.name
                )));
                return Stmt::For {
                    var: ovar,
                    extent: oext,
                    kind: okind,
                    body: Box::new(Stmt::For {
                        var: ivar,
                        extent: iext,
                        kind: ForKind::Serial,
                        body: ibody,
                    }),
                };
            }
            let fused = Var::new(fused_name.clone(), ovar.dtype);
            let o_val = (Expr::var(&fused) / iext.clone()).simplify();
            let i_val = (Expr::var(&fused) % iext.clone()).simplify();
            let new_body = ibody.substitute(&ovar, &o_val).substitute(&ivar, &i_val);
            Stmt::For {
                var: fused,
                extent: (oext * iext).simplify(),
                kind: okind,
                body: Box::new(new_body),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if !found {
            return Err(ScheduleError::new(format!("loop `{outer}` not found")));
        }
        self.func.body = body;
        Ok(fused_name)
    }

    /// Reorder a contiguous perfectly-nested chain of loops into the given
    /// order. All named loops must appear consecutively on one path.
    pub fn reorder(&mut self, order: &[&str]) -> Result<()> {
        if order.len() < 2 {
            return Ok(());
        }
        let first = order
            .iter()
            .find(|name| {
                // The chain starts at whichever of the names is outermost.
                let mut seen = false;
                self.func.body.walk(&mut |s| {
                    if let Stmt::For { var, .. } = s {
                        if &&*var.name == *name && !seen {
                            seen = true;
                        }
                    }
                });
                seen
            })
            .ok_or_else(|| ScheduleError::new("no loops found"))?;
        let _ = first;
        // Locate the outermost loop among `order` by walking down the tree.
        let mut err = None;
        let names: Vec<String> = order.iter().map(|s| (*s).to_string()).collect();
        let body = reorder_chain(&self.func.body, &names, &mut err);
        if let Some(e) = err {
            return Err(e);
        }
        self.func.body = body;
        Ok(())
    }

    fn set_kind(&mut self, loop_var: &str, kind: ForKind) -> Result<()> {
        let mut found = false;
        let body = replace_loop(&self.func.body, loop_var, &mut |var, extent, _, body| {
            found = true;
            Stmt::For { var, extent, kind, body: Box::new(body) }
        });
        if !found {
            return Err(ScheduleError::new(format!("loop `{loop_var}` not found")));
        }
        self.func.body = body;
        Ok(())
    }

    /// Bind a loop to a GPU thread axis.
    pub fn bind(&mut self, loop_var: &str, axis: ThreadAxis) -> Result<()> {
        self.set_kind(loop_var, ForKind::ThreadBinding(axis))
    }

    /// Mark a loop CPU-parallel.
    pub fn parallel(&mut self, loop_var: &str) -> Result<()> {
        self.set_kind(loop_var, ForKind::Parallel)
    }

    /// Vectorize a loop (wide loads/stores).
    pub fn vectorize(&mut self, loop_var: &str) -> Result<()> {
        self.set_kind(loop_var, ForKind::Vectorized)
    }

    /// Fully unroll a loop.
    pub fn unroll(&mut self, loop_var: &str) -> Result<()> {
        self.set_kind(loop_var, ForKind::Unrolled)
    }

    /// Stage reads of `buffer` into a scratch buffer of `scope`.
    ///
    /// At entry of loop `at_loop`'s body, a staging buffer of shape
    /// `[copy_extent]` is allocated and filled with
    /// `buffer[base + t]` for `t in 0..copy_extent`; every load of `buffer`
    /// strictly inside the loop body whose (single, flattened) index `e`
    /// can be rewritten by `rewrite(e)` into a staging index is redirected.
    ///
    /// `rewrite` returns `Some(staging_index)` for indices that fall in the
    /// staged window. The staging buffer name is returned.
    pub fn cache_read(
        &mut self,
        at_loop: &str,
        buffer: &str,
        scope: Scope,
        base: Expr,
        copy_extent: Expr,
        rewrite: &dyn Fn(&[Expr]) -> Option<Expr>,
    ) -> Result<String> {
        let buf = self
            .func
            .buffer(buffer)
            .cloned()
            .or_else(|| self.func.local_allocations().into_iter().find(|b| &*b.name == buffer))
            .ok_or_else(|| ScheduleError::new(format!("buffer `{buffer}` not found")))?;
        let stage_name = self.func.fresh_buffer_name(&format!("{buffer}_{}", scope_suffix(scope)));
        let stage = Buffer::new(stage_name.clone(), buf.dtype, vec![copy_extent.clone()], scope);
        let t = Var::i32(self.func.fresh_name("t"));
        let copy_loop = Stmt::for_serial(
            t.clone(),
            copy_extent,
            Stmt::BufferStore {
                buffer: stage.clone(),
                indices: vec![Expr::var(&t)],
                value: buf.load(vec![(base + Expr::var(&t)).simplify()]),
            },
        );
        let mut found = false;
        let stage_for_rewrite = stage.clone();
        let body = replace_loop(&self.func.body, at_loop, &mut |var, extent, kind, lbody| {
            found = true;
            let redirected = rewrite_loads(&lbody, buffer, &|indices| {
                rewrite(indices).map(|idx| stage_for_rewrite.load(vec![idx.simplify()]))
            });
            Stmt::For {
                var,
                extent,
                kind,
                body: Box::new(Stmt::Allocate {
                    buffer: stage.clone(),
                    body: Box::new(copy_loop.clone().then(redirected)),
                }),
            }
        });
        if !found {
            return Err(ScheduleError::new(format!("loop `{at_loop}` not found")));
        }
        self.func.body = body;
        Ok(stage_name)
    }

    /// Accumulate writes to `buffer` in a register/shared staging buffer and
    /// write back after loop `at_loop` finishes one iteration of its body.
    ///
    /// Inside the loop body, stores/loads of `buffer` whose indices are
    /// rewritten by `rewrite` are redirected to a staging buffer of shape
    /// `[stage_extent]`; after the body a write-back loop copies
    /// `staging[t] → buffer[base + t]`.
    pub fn cache_write(
        &mut self,
        at_loop: &str,
        buffer: &str,
        scope: Scope,
        base: Expr,
        stage_extent: Expr,
        rewrite: &dyn Fn(&[Expr]) -> Option<Expr>,
    ) -> Result<String> {
        let buf = self
            .func
            .buffer(buffer)
            .cloned()
            .ok_or_else(|| ScheduleError::new(format!("buffer `{buffer}` not found")))?;
        let stage_name = self.func.fresh_buffer_name(&format!("{buffer}_{}", scope_suffix(scope)));
        let stage = Buffer::new(stage_name.clone(), buf.dtype, vec![stage_extent.clone()], scope);
        let t = Var::i32(self.func.fresh_name("t"));
        let writeback = Stmt::for_serial(
            t.clone(),
            stage_extent,
            Stmt::BufferStore {
                buffer: buf.clone(),
                indices: vec![(base + Expr::var(&t)).simplify()],
                value: stage.load(vec![Expr::var(&t)]),
            },
        );
        let mut found = false;
        let stage2 = stage.clone();
        let body = replace_loop(&self.func.body, at_loop, &mut |var, extent, kind, lbody| {
            found = true;
            let redirected = rewrite_stores_and_loads(&lbody, buffer, &|indices| {
                rewrite(indices).map(|idx| (stage2.clone(), vec![idx.simplify()]))
            });
            Stmt::For {
                var,
                extent,
                kind,
                body: Box::new(Stmt::Allocate {
                    buffer: stage.clone(),
                    body: Box::new(redirected.then(writeback.clone())),
                }),
            }
        });
        if !found {
            return Err(ScheduleError::new(format!("loop `{at_loop}` not found")));
        }
        self.func.body = body;
        Ok(stage_name)
    }

    /// Factor the reduction of `block` over loop `loop_var` into a partial
    /// buffer (the classic `rfactor`, used by the PRedS-style two-stage
    /// SDDMM reduction in §4.2.2).
    ///
    /// Requirements: the block body is a single store
    /// `C[i...] = C[i...] + e`, `loop_var` is one of the reduction loops on
    /// the block's path, and the block's spatial indices do not depend on
    /// `loop_var`. After the rewrite:
    ///
    /// ```text
    /// partial[i..., r] (+)= e          // r = loop_var, block `<name>_rf`
    /// C[i...] (+)= partial[i..., r]    // second block `<name>_merge`
    /// ```
    pub fn rfactor(&mut self, block: &str, loop_var: &str) -> Result<String> {
        let loops = self
            .func
            .body
            .loops_of_block(block)
            .ok_or_else(|| ScheduleError::new(format!("block `{block}` not found")))?;
        let (rvar, rext, _) =
            loops.iter().find(|(v, _, _)| &*v.name == loop_var).cloned().ok_or_else(|| {
                ScheduleError::new(format!("loop `{loop_var}` not on path to `{block}`"))
            })?;
        let rext_const = rext
            .as_const_int()
            .ok_or_else(|| ScheduleError::new("rfactor loop extent must be constant"))?;
        let blk = self
            .func
            .body
            .find_block(block)
            .ok_or_else(|| ScheduleError::new(format!("block `{block}` not found")))?;
        let Stmt::BufferStore { buffer: cbuf, indices: cidx, value } = blk.body.as_ref() else {
            return Err(ScheduleError::new("rfactor block body must be a single store"));
        };
        let add_operand = match value {
            Expr::Binary { op: BinOp::Add, lhs, rhs } => match lhs.as_ref() {
                Expr::BufferLoad { buffer, indices }
                    if buffer.name == cbuf.name && indices == cidx =>
                {
                    rhs.as_ref().clone()
                }
                _ => {
                    return Err(ScheduleError::new("rfactor block body must be `C[i] = C[i] + e`"))
                }
            },
            _ => return Err(ScheduleError::new("rfactor block body must be `C[i] = C[i] + e`")),
        };
        // Partial buffer: shape = C shape × rfactor extent.
        let pname = self.func.fresh_buffer_name(&format!("{}_rf", cbuf.name));
        let mut pshape = cbuf.shape.clone();
        pshape.push(Expr::i32(rext_const));
        let pbuf = Buffer::new(pname.clone(), cbuf.dtype, pshape, Scope::Local);
        let mut pidx = cidx.clone();
        pidx.push(Expr::var(&rvar));

        let zero = if cbuf.dtype.is_float() { Expr::f32(0.0) } else { Expr::i32(0) };
        let rf_block = Stmt::Block(Block {
            name: format!("{block}_rf").into(),
            iter_vars: blk.iter_vars.clone(),
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: pbuf.clone(),
                indices: pidx.clone(),
                value: zero.clone(),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: pbuf.clone(),
                indices: pidx.clone(),
                value: pbuf.load(pidx.clone()) + add_operand,
            }),
        });

        // Replace the original block with the rf block.
        let body = self.func.body.transform(&|s| match &s {
            Stmt::Block(b) if &*b.name == block => rf_block.clone(),
            _ => s,
        });

        // Merge loop placed right after the rfactor loop body, still inside
        // the loops enclosing `loop_var`'s parent. We wrap the rfactor
        // loop: { alloc partial; for r { ... }; for r2 { merge } }.
        let r2 = Var::i32(self.func.fresh_name(&format!("{loop_var}_m")));
        let mut midx = cidx.clone();
        midx.push(Expr::var(&r2));
        let merge_vi: Vec<IterVar> = blk
            .iter_vars
            .iter()
            .filter(|iv| iv.kind == IterKind::Spatial)
            .cloned()
            .chain(std::iter::once(IterVar::reduce(r2.clone(), Expr::var(&r2))))
            .collect();
        let merge_block = Stmt::Block(Block {
            name: format!("{block}_merge").into(),
            iter_vars: merge_vi,
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: cbuf.clone(),
                indices: cidx.clone(),
                value: zero,
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: cbuf.clone(),
                indices: cidx.clone(),
                value: cbuf.load(cidx.clone()) + pbuf.load(midx),
            }),
        });
        let merge_loop = Stmt::for_serial(r2, rext_const, merge_block);

        let mut found = false;
        let pbuf2 = pbuf.clone();
        let new_body = replace_loop(&body, loop_var, &mut |var, extent, kind, lbody| {
            found = true;
            Stmt::Allocate {
                buffer: pbuf2.clone(),
                body: Box::new(
                    Stmt::For { var, extent, kind, body: Box::new(lbody) }.then(merge_loop.clone()),
                ),
            }
        });
        if !found {
            return Err(ScheduleError::new(format!("loop `{loop_var}` not found")));
        }
        self.func.body = new_body;
        Ok(pname)
    }

    /// Replace the perfectly nested `m × n × k` GEMM loops
    /// (`loop_m`/`loop_n`/`loop_k`, whose body is
    /// `C[ic] = C[ic] + A[ia] * B[ib]` over *flattened* buffers) with a
    /// tensor-core [`Stmt::MmaSync`] intrinsic. Loop extents must be
    /// constants matching the MMA shape (e.g. 16×16×16 or m8n32k16).
    pub fn tensorize_gemm(&mut self, loop_m: &str, loop_n: &str, loop_k: &str) -> Result<()> {
        let mut err: Option<ScheduleError> = None;
        let mut found = false;
        let lm = loop_m.to_string();
        let ln = loop_n.to_string();
        let lk = loop_k.to_string();
        let body = replace_loop(&self.func.body, loop_m, &mut |mvar, mext, _, mbody| {
            found = true;
            match extract_gemm(&mvar, &mext, &mbody, &ln, &lk) {
                Ok(mma) => mma,
                Err(e) => {
                    err = Some(e);
                    Stmt::For {
                        var: mvar,
                        extent: mext,
                        kind: ForKind::Serial,
                        body: Box::new(mbody),
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if !found {
            return Err(ScheduleError::new(format!("loop `{lm}` not found")));
        }
        self.func.body = body;
        Ok(())
    }
}

fn scope_suffix(scope: Scope) -> &'static str {
    match scope {
        Scope::Global => "global",
        Scope::Shared => "shared",
        Scope::Local => "local",
        Scope::WmmaFragment => "frag",
    }
}

impl PrimFunc {
    /// Generate a fresh buffer name not colliding with bound buffers or
    /// existing local allocations.
    #[must_use]
    pub fn fresh_buffer_name(&self, base: &str) -> String {
        let mut used: Vec<String> = self.buffers.iter().map(|b| b.name.to_string()).collect();
        used.extend(self.local_allocations().iter().map(|b| b.name.to_string()));
        if !used.iter().any(|u| u == base) {
            return base.to_string();
        }
        for i in 0.. {
            let cand = format!("{base}_{i}");
            if !used.iter().any(|u| u == &cand) {
                return cand;
            }
        }
        unreachable!()
    }
}

/// Replace the unique loop named `name`; `f` receives `(var, extent, kind,
/// body)` and returns the replacement statement.
fn replace_loop(s: &Stmt, name: &str, f: &mut dyn FnMut(Var, Expr, ForKind, Stmt) -> Stmt) -> Stmt {
    match s {
        Stmt::For { var, extent, kind, body } if &*var.name == name => {
            f(var.clone(), extent.clone(), *kind, body.as_ref().clone())
        }
        Stmt::For { var, extent, kind, body } => Stmt::For {
            var: var.clone(),
            extent: extent.clone(),
            kind: *kind,
            body: Box::new(replace_loop(body, name, f)),
        },
        Stmt::Block(b) => Stmt::Block(Block {
            name: b.name.clone(),
            iter_vars: b.iter_vars.clone(),
            reads: b.reads.clone(),
            writes: b.writes.clone(),
            init: b.init.as_ref().map(|s| Box::new(replace_loop(s, name, f))),
            body: Box::new(replace_loop(&b.body, name, f)),
        }),
        Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(|s| replace_loop(s, name, f)).collect()),
        Stmt::IfThenElse { cond, then_branch, else_branch } => Stmt::IfThenElse {
            cond: cond.clone(),
            then_branch: Box::new(replace_loop(then_branch, name, f)),
            else_branch: else_branch.as_ref().map(|e| Box::new(replace_loop(e, name, f))),
        },
        Stmt::Let { var, value, body } => Stmt::Let {
            var: var.clone(),
            value: value.clone(),
            body: Box::new(replace_loop(body, name, f)),
        },
        Stmt::Allocate { buffer, body } => {
            Stmt::Allocate { buffer: buffer.clone(), body: Box::new(replace_loop(body, name, f)) }
        }
        _ => s.clone(),
    }
}

/// Rewrite `BufferLoad`s of `buffer` via `f` (applied to the index list).
fn rewrite_loads(s: &Stmt, buffer: &str, f: &dyn Fn(&[Expr]) -> Option<Expr>) -> Stmt {
    fn rewrite_expr(e: &Expr, buffer: &str, f: &dyn Fn(&[Expr]) -> Option<Expr>) -> Expr {
        match e {
            Expr::BufferLoad { buffer: b, indices } => {
                let new_idx: Vec<Expr> =
                    indices.iter().map(|i| rewrite_expr(i, buffer, f)).collect();
                if &*b.name == buffer {
                    if let Some(repl) = f(&new_idx) {
                        return repl;
                    }
                }
                Expr::BufferLoad { buffer: b.clone(), indices: new_idx }
            }
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rewrite_expr(lhs, buffer, f)),
                rhs: Box::new(rewrite_expr(rhs, buffer, f)),
            },
            Expr::Select { cond, then, otherwise } => Expr::Select {
                cond: Box::new(rewrite_expr(cond, buffer, f)),
                then: Box::new(rewrite_expr(then, buffer, f)),
                otherwise: Box::new(rewrite_expr(otherwise, buffer, f)),
            },
            Expr::Cast { dtype, value } => {
                Expr::Cast { dtype: *dtype, value: Box::new(rewrite_expr(value, buffer, f)) }
            }
            Expr::Call { intrin, args } => Expr::Call {
                intrin: *intrin,
                args: args.iter().map(|a| rewrite_expr(a, buffer, f)).collect(),
            },
            _ => e.clone(),
        }
    }
    s.transform(&|st| match st {
        Stmt::BufferStore { buffer: b, indices, value } => Stmt::BufferStore {
            buffer: b,
            indices: indices.iter().map(|i| rewrite_expr(i, buffer, f)).collect(),
            value: rewrite_expr(&value, buffer, f),
        },
        Stmt::IfThenElse { cond, then_branch, else_branch } => {
            Stmt::IfThenElse { cond: rewrite_expr(&cond, buffer, f), then_branch, else_branch }
        }
        Stmt::Let { var, value, body } => {
            Stmt::Let { var, value: rewrite_expr(&value, buffer, f), body }
        }
        Stmt::Evaluate(e) => Stmt::Evaluate(rewrite_expr(&e, buffer, f)),
        Stmt::For { var, extent, kind, body } => {
            Stmt::For { var, extent: rewrite_expr(&extent, buffer, f), kind, body }
        }
        other => other,
    })
}

/// Rewrite stores *and* loads of `buffer`: `f` maps original indices to a
/// `(staging buffer, staging indices)` pair.
/// Callback rewriting a buffer load during schedule transformations.
type RewriteLoadFn<'a> = dyn Fn(&[Expr]) -> Option<(Buffer, Vec<Expr>)> + 'a;

fn rewrite_stores_and_loads(s: &Stmt, buffer: &str, f: &RewriteLoadFn<'_>) -> Stmt {
    let load_f = |indices: &[Expr]| f(indices).map(|(b, idx)| b.load(idx));
    let with_loads = rewrite_loads(s, buffer, &load_f);
    with_loads.transform(&|st| match st {
        Stmt::BufferStore { buffer: b, indices, value } if &*b.name == buffer => {
            if let Some((nb, nidx)) = f(&indices) {
                Stmt::BufferStore { buffer: nb, indices: nidx, value }
            } else {
                Stmt::BufferStore { buffer: b, indices, value }
            }
        }
        other => other,
    })
}

/// Reorder a contiguous perfectly nested chain containing exactly the loops
/// in `names` (in any order) into the order given by `names`.
fn reorder_chain(s: &Stmt, names: &[String], err: &mut Option<ScheduleError>) -> Stmt {
    match s {
        Stmt::For { var, .. } if names.iter().any(|n| n == &*var.name) => {
            // Collect the chain.
            let mut chain: Vec<(Var, Expr, ForKind)> = Vec::new();
            let mut cur = s;
            loop {
                match cur {
                    Stmt::For { var, extent, kind, body }
                        if names.iter().any(|n| n == &*var.name) =>
                    {
                        chain.push((var.clone(), extent.clone(), *kind));
                        cur = body;
                    }
                    _ => break,
                }
            }
            if chain.len() != names.len() {
                *err = Some(ScheduleError::new(format!(
                    "loops {names:?} are not perfectly nested (found {} of {})",
                    chain.len(),
                    names.len()
                )));
                return s.clone();
            }
            let innermost_body = cur.clone();
            // Rebuild in requested order.
            let mut body = innermost_body;
            for name in names.iter().rev() {
                let (var, extent, kind) = chain
                    .iter()
                    .find(|(v, _, _)| *v.name == *name)
                    .cloned()
                    .expect("name present in chain");
                body = Stmt::For { var, extent, kind, body: Box::new(body) };
            }
            body
        }
        Stmt::For { var, extent, kind, body } => Stmt::For {
            var: var.clone(),
            extent: extent.clone(),
            kind: *kind,
            body: Box::new(reorder_chain(body, names, err)),
        },
        Stmt::Block(b) => Stmt::Block(Block {
            name: b.name.clone(),
            iter_vars: b.iter_vars.clone(),
            reads: b.reads.clone(),
            writes: b.writes.clone(),
            init: b.init.clone(),
            body: Box::new(reorder_chain(&b.body, names, err)),
        }),
        Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(|s| reorder_chain(s, names, err)).collect()),
        Stmt::IfThenElse { cond, then_branch, else_branch } => Stmt::IfThenElse {
            cond: cond.clone(),
            then_branch: Box::new(reorder_chain(then_branch, names, err)),
            else_branch: else_branch.as_ref().map(|e| Box::new(reorder_chain(e, names, err))),
        },
        Stmt::Let { var, value, body } => Stmt::Let {
            var: var.clone(),
            value: value.clone(),
            body: Box::new(reorder_chain(body, names, err)),
        },
        Stmt::Allocate { buffer, body } => Stmt::Allocate {
            buffer: buffer.clone(),
            body: Box::new(reorder_chain(body, names, err)),
        },
        _ => s.clone(),
    }
}

/// Extract a GEMM pattern under the m-loop and build an `MmaSync`.
fn extract_gemm(mvar: &Var, mext: &Expr, mbody: &Stmt, loop_n: &str, loop_k: &str) -> Result<Stmt> {
    let Stmt::For { var: nvar, extent: next, body: nbody, .. } = mbody else {
        return Err(ScheduleError::new("tensorize: expected n-loop under m-loop"));
    };
    if &*nvar.name != loop_n {
        return Err(ScheduleError::new(format!(
            "tensorize: inner loop is `{}`, expected `{loop_n}`",
            nvar.name
        )));
    }
    let Stmt::For { var: kvar, extent: kext, body: kbody, .. } = nbody.as_ref() else {
        return Err(ScheduleError::new("tensorize: expected k-loop under n-loop"));
    };
    if &*kvar.name != loop_k {
        return Err(ScheduleError::new(format!(
            "tensorize: innermost loop is `{}`, expected `{loop_k}`",
            kvar.name
        )));
    }
    let body = strip_trivial_blocks(kbody);
    let Stmt::BufferStore { buffer: cbuf, indices: cidx, value } = &body else {
        return Err(ScheduleError::new("tensorize: body must be a single store"));
    };
    if cidx.len() != 1 {
        return Err(ScheduleError::new("tensorize: buffers must be flattened (1-D)"));
    }
    let (a_load, b_load) = match value {
        Expr::Binary { op: BinOp::Add, lhs, rhs } => {
            let is_c = |e: &Expr| {
                matches!(e, Expr::BufferLoad { buffer, indices }
                    if buffer.name == cbuf.name && indices == cidx)
            };
            let mul = if is_c(lhs) {
                rhs.as_ref()
            } else if is_c(rhs) {
                lhs.as_ref()
            } else {
                return Err(ScheduleError::new("tensorize: body must be C[i] = C[i] + A*B"));
            };
            match mul {
                Expr::Binary { op: BinOp::Mul, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                    (a @ Expr::BufferLoad { .. }, b @ Expr::BufferLoad { .. }) => {
                        (a.clone(), b.clone())
                    }
                    _ => return Err(ScheduleError::new("tensorize: operands must be loads")),
                },
                _ => return Err(ScheduleError::new("tensorize: rhs must be A*B")),
            }
        }
        _ => return Err(ScheduleError::new("tensorize: body must be an accumulation")),
    };
    let (m, n, k) = match (mext.as_const_int(), next.as_const_int(), kext.as_const_int()) {
        (Some(m), Some(n), Some(k)) if m > 0 && n > 0 && k > 0 => {
            (m as usize, n as usize, k as usize)
        }
        _ => return Err(ScheduleError::new("tensorize: loop extents must be positive constants")),
    };
    let zero = Expr::i32(0);
    let one = Expr::i32(1);
    let at = |e: &Expr, vm: &Expr, vn: &Expr, vk: &Expr| {
        e.substitute(mvar, vm).substitute(nvar, vn).substitute(kvar, vk).simplify()
    };
    let tile_of = |load: &Expr, row: &Var, col: &Var| -> Result<TensorTile> {
        let Expr::BufferLoad { buffer, indices } = load else { unreachable!() };
        if indices.len() != 1 {
            return Err(ScheduleError::new("tensorize: buffers must be flattened (1-D)"));
        }
        let idx = &indices[0];
        let sub = |rv: &Expr, cv: &Expr| {
            let mut e = idx.clone();
            for (v, val) in [(mvar, &zero), (nvar, &zero), (kvar, &zero)] {
                if v != row && v != col {
                    e = e.substitute(v, val);
                }
            }
            e.substitute(row, rv).substitute(col, cv).simplify()
        };
        let offset = sub(&zero, &zero);
        let row1 = sub(&one, &zero);
        let row_stride =
            Expr::Binary { op: BinOp::Sub, lhs: Box::new(row1), rhs: Box::new(offset.clone()) }
                .simplify();
        // Column stride must be 1 when it can be checked statically.
        let col1 = sub(&zero, &one);
        let col_stride =
            Expr::Binary { op: BinOp::Sub, lhs: Box::new(col1), rhs: Box::new(offset.clone()) }
                .simplify();
        if let Some(c) = col_stride.as_const_int() {
            if c != 1 {
                return Err(ScheduleError::new(format!(
                    "tensorize: tile column stride must be 1 (got {c})"
                )));
            }
        }
        Ok(TensorTile { buffer: buffer.clone(), offset, row_stride })
    };
    let c_tile = {
        let c_load = Expr::BufferLoad { buffer: cbuf.clone(), indices: cidx.clone() };
        tile_of(&c_load, mvar, nvar)?
    };
    let a_tile = tile_of(&at(&a_load, &Expr::var(mvar), &zero, &Expr::var(kvar)), mvar, kvar)
        .or_else(|_| tile_of(&a_load, mvar, kvar))?;
    let b_tile = tile_of(&b_load, kvar, nvar)?;
    Ok(Stmt::MmaSync { c: c_tile, a: a_tile, b: b_tile, m, n, k })
}

/// Unwrap nested `Block`s and single-element `Seq`s around a store.
fn strip_trivial_blocks(s: &Stmt) -> Stmt {
    match s {
        Stmt::Block(b) => strip_trivial_blocks(&b.body),
        Stmt::Seq(v) if v.len() == 1 => strip_trivial_blocks(&v[0]),
        _ => s.clone(),
    }
}

/// Convenience: shorthand for `Rc<str>` naming in tests and kernels.
#[must_use]
pub fn rc(s: &str) -> Rc<str> {
    s.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::eval::{eval_func, scalar_map, TensorData};
    use std::collections::HashMap;

    /// `C[i] = A[i] * 2` over n=10.
    fn scale_func(n: i64) -> PrimFunc {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(n)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(n)]);
        let body = Stmt::for_serial(
            i.clone(),
            n,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: a.load(vec![Expr::var(&i)]) * 2.0f32,
            },
        );
        PrimFunc::new("scale", vec![], vec![a, c], body)
    }

    fn run_scale(f: &PrimFunc, n: usize) -> Vec<f32> {
        let mut tensors = HashMap::new();
        tensors.insert(
            "A".to_string(),
            TensorData::from((0..n).map(|x| x as f32).collect::<Vec<_>>()),
        );
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, n));
        eval_func(f, &scalar_map(&[]), &mut tensors).unwrap();
        tensors["C"].as_f32().to_vec()
    }

    #[test]
    fn split_preserves_semantics_with_guard() {
        let f = scale_func(10);
        let expected = run_scale(&f, 10);
        let mut sch = Schedule::new(f);
        let (o, i) = sch.split("i", 4).unwrap();
        assert_eq!(o, "i_o");
        assert_eq!(i, "i_i");
        let got = run_scale(sch.func(), 10);
        assert_eq!(got, expected);
        // A guard must exist because 10 % 4 != 0.
        let mut has_if = false;
        sch.func().body.walk(&mut |s| {
            if matches!(s, Stmt::IfThenElse { .. }) {
                has_if = true;
            }
        });
        assert!(has_if);
    }

    #[test]
    fn split_exact_has_no_guard() {
        let f = scale_func(8);
        let mut sch = Schedule::new(f);
        sch.split("i", 4).unwrap();
        let mut has_if = false;
        sch.func().body.walk(&mut |s| {
            if matches!(s, Stmt::IfThenElse { .. }) {
                has_if = true;
            }
        });
        assert!(!has_if);
        assert_eq!(run_scale(sch.func(), 8), vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn split_then_bind_sets_kind() {
        let mut sch = Schedule::new(scale_func(8));
        let (o, i) = sch.split("i", 4).unwrap();
        sch.bind(&o, ThreadAxis::BlockIdxX).unwrap();
        sch.bind(&i, ThreadAxis::ThreadIdxX).unwrap();
        let mut bound = 0;
        sch.func().body.walk(&mut |s| {
            if let Stmt::For { kind: ForKind::ThreadBinding(_), .. } = s {
                bound += 1;
            }
        });
        assert_eq!(bound, 2);
    }

    #[test]
    fn fuse_preserves_semantics() {
        // 2-D iota: C[i*4+j] = i*4+j
        let i = Var::i32("i");
        let j = Var::i32("j");
        let c = Buffer::global_f32("C", vec![Expr::i32(12)]);
        let body = Stmt::for_serial(
            i.clone(),
            3,
            Stmt::for_serial(
                j.clone(),
                4,
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![Expr::var(&i) * 4 + Expr::var(&j)],
                    value: (Expr::var(&i) * 4 + Expr::var(&j)).cast(DType::F32),
                },
            ),
        );
        let f = PrimFunc::new("iota2", vec![], vec![c], body);
        let mut sch = Schedule::new(f);
        let fused = sch.fuse("i", "j").unwrap();
        // There must be exactly one loop now.
        let mut loops = 0;
        sch.func().body.walk(&mut |s| {
            if matches!(s, Stmt::For { .. }) {
                loops += 1;
            }
        });
        assert_eq!(loops, 1, "fused loop name {fused}");
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 12));
        eval_func(sch.func(), &HashMap::new(), &mut tensors).unwrap();
        let exp: Vec<f32> = (0..12).map(|x| x as f32).collect();
        assert_eq!(tensors["C"].as_f32(), &exp[..]);
    }

    #[test]
    fn fuse_rejects_non_nested() {
        let mut sch = Schedule::new(scale_func(8));
        assert!(sch.fuse("i", "nope").is_err());
    }

    #[test]
    fn reorder_swaps_loops() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let c = Buffer::global_f32("C", vec![Expr::i32(12)]);
        let body = Stmt::for_serial(
            i.clone(),
            3,
            Stmt::for_serial(
                j.clone(),
                4,
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![Expr::var(&i) * 4 + Expr::var(&j)],
                    value: Expr::f32(1.0),
                },
            ),
        );
        let f = PrimFunc::new("f", vec![], vec![c], body);
        let mut sch = Schedule::new(f);
        sch.reorder(&["j", "i"]).unwrap();
        match &sch.func().body {
            Stmt::For { var, .. } => assert_eq!(&*var.name, "j"),
            other => panic!("unexpected {other:?}"),
        }
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 12));
        eval_func(sch.func(), &HashMap::new(), &mut tensors).unwrap();
        assert!(tensors["C"].as_f32().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn rfactor_two_stage_reduction_matches() {
        // C[0] = sum over r in 0..8 of A[r]
        let r = Var::i32("r");
        let a = Buffer::global_f32("A", vec![Expr::i32(8)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(1)]);
        let vr = Var::i32("vr");
        let block = Stmt::Block(Block {
            name: "sum".into(),
            iter_vars: vec![IterVar::reduce(vr.clone(), Expr::var(&r))],
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: Expr::f32(0.0),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: c.load(vec![Expr::i32(0)]) + a.load(vec![Expr::var(&vr)]),
            }),
        });
        let body = Stmt::for_serial(r.clone(), 8, block);
        let f = PrimFunc::new("sum", vec![], vec![a, c], body);
        let mut sch = Schedule::new(f);
        sch.rfactor("sum", "r").unwrap();
        let mut tensors = HashMap::new();
        tensors.insert(
            "A".to_string(),
            TensorData::from((1..=8).map(|x| x as f32).collect::<Vec<_>>()),
        );
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 1));
        eval_func(sch.func(), &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[36.0]);
        // Both an rf block and a merge block must exist.
        let names = sch.func().block_names();
        assert!(names.iter().any(|n| n == "sum_rf"), "{names:?}");
        assert!(names.iter().any(|n| n == "sum_merge"), "{names:?}");
    }

    #[test]
    fn tensorize_gemm_replaces_loops() {
        // C[16x16] += A[16x16] * B[16x16], flattened.
        let (m, n, k) = (16i64, 16i64, 16i64);
        let mi = Var::i32("mi");
        let ni = Var::i32("ni");
        let ki = Var::i32("ki");
        let a = Buffer::global_f32("A", vec![Expr::i32(m * k)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(k * n)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(m * n)]);
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&mi) * n + Expr::var(&ni)],
            value: c.load(vec![Expr::var(&mi) * n + Expr::var(&ni)])
                + a.load(vec![Expr::var(&mi) * k + Expr::var(&ki)])
                    * b.load(vec![Expr::var(&ki) * n + Expr::var(&ni)]),
        };
        let body = Stmt::for_serial(
            mi.clone(),
            m,
            Stmt::for_serial(ni.clone(), n, Stmt::for_serial(ki.clone(), k, store)),
        );
        let f = PrimFunc::new("gemm16", vec![], vec![a, b, c], body);
        // Reference result before tensorize.
        let mut rng_a: Vec<f32> = (0..m * k).map(|x| (x % 7) as f32 * 0.5).collect();
        rng_a[3] = -1.25;
        let rng_b: Vec<f32> = (0..k * n).map(|x| (x % 5) as f32 - 2.0).collect();
        let run = |func: &PrimFunc| {
            let mut tensors = HashMap::new();
            tensors.insert("A".to_string(), TensorData::from(rng_a.clone()));
            tensors.insert("B".to_string(), TensorData::from(rng_b.clone()));
            tensors.insert("C".to_string(), TensorData::zeros(DType::F32, (m * n) as usize));
            eval_func(func, &HashMap::new(), &mut tensors).unwrap();
            tensors["C"].as_f32().to_vec()
        };
        let expected = run(&f);
        let mut sch = Schedule::new(f);
        sch.tensorize_gemm("mi", "ni", "ki").unwrap();
        match &sch.func().body {
            Stmt::MmaSync { m: 16, n: 16, k: 16, .. } => {}
            other => panic!("expected MmaSync, got {other:?}"),
        }
        assert_eq!(run(sch.func()), expected);
    }

    #[test]
    fn cache_write_accumulates_in_register() {
        // C[i] = sum_j A[i*4+j]: cache C in a register across the j loop.
        let i = Var::i32("i");
        let j = Var::i32("j");
        let a = Buffer::global_f32("A", vec![Expr::i32(8)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(2)]);
        let init = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&i)],
            value: Expr::f32(0.0),
        };
        let acc = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::var(&i)],
            value: c.load(vec![Expr::var(&i)]) + a.load(vec![Expr::var(&i) * 4 + Expr::var(&j)]),
        };
        let body = Stmt::for_serial(i.clone(), 2, init.then(Stmt::for_serial(j.clone(), 4, acc)));
        let f = PrimFunc::new("rowsum", vec![], vec![a, c], body);
        let mut sch = Schedule::new(f);
        // Stage C[i] into a 1-element register inside the i loop.
        let iv = Expr::var(&Var::i32("i"));
        sch.cache_write("i", "C", Scope::Local, iv, Expr::i32(1), &|idx| {
            // C[i] → stage[0]
            if idx.len() == 1 {
                Some(Expr::i32(0))
            } else {
                None
            }
        })
        .unwrap();
        let mut tensors = HashMap::new();
        tensors.insert(
            "A".to_string(),
            TensorData::from((0..8).map(|x| x as f32).collect::<Vec<_>>()),
        );
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 2));
        eval_func(sch.func(), &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[6.0, 22.0]);
    }

    #[test]
    fn cache_read_stages_window() {
        // C[i] = A[i] + A[i]: stage A[i..i+1] into shared memory.
        let f = scale_func(6);
        let expected = run_scale(&f, 6);
        let mut sch = Schedule::new(f);
        let iv = Expr::var(&Var::i32("i"));
        let name = sch
            .cache_read("i", "A", Scope::Shared, iv, Expr::i32(1), &|_idx| Some(Expr::i32(0)))
            .unwrap();
        assert_eq!(name, "A_shared");
        assert_eq!(run_scale(sch.func(), 6), expected);
    }

    #[test]
    fn get_loops_reports_path() {
        let i = Var::i32("i");
        let blk = Stmt::Block(Block {
            name: "b".into(),
            iter_vars: vec![],
            reads: vec![],
            writes: vec![],
            init: None,
            body: Box::new(Stmt::nop()),
        });
        let f = PrimFunc::new("f", vec![], vec![], Stmt::for_serial(i, 4, blk));
        let sch = Schedule::new(f);
        assert_eq!(sch.get_loops("b").unwrap(), vec!["i".to_string()]);
        assert!(sch.get_loops("zzz").is_err());
    }
}
