//! # sparsetir-ir
//!
//! Loop-level tensor IR — the Stage II/III substrate of the SparseTIR
//! reproduction (paper §3.3–§3.5). This crate plays the role TVM's TensorIR
//! plays for the original system: it provides
//!
//! * an expression/statement AST with TensorIR-style **blocks** carrying
//!   spatial/reduction iteration semantics ([`stmt::Block`]),
//! * **schedule primitives** (`split`, `fuse`, `reorder`, `bind`,
//!   `vectorize`, `unroll`, `cache_read`, `cache_write`, `rfactor`,
//!   `tensorize`) as composable program transformations ([`schedule`]),
//! * a reference **interpreter** defining functional semantics ([`eval`]),
//! * a Python-script-style **printer** matching the paper's figures
//!   ([`printer`]), and
//! * a CUDA-source **code generator** ([`codegen`]).
//!
//! ```
//! use sparsetir_ir::prelude::*;
//!
//! // C[i] = A[i] + 1 over n = 4, scheduled onto GPU threads.
//! let i = Var::i32("i");
//! let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
//! let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
//! let body = Stmt::for_serial(
//!     i.clone(),
//!     4,
//!     Stmt::BufferStore {
//!         buffer: c.clone(),
//!         indices: vec![Expr::var(&i)],
//!         value: a.load(vec![Expr::var(&i)]) + 1.0f32,
//!     },
//! );
//! let f = PrimFunc::new("incr", vec![], vec![a, c], body);
//! let mut sch = Schedule::new(f);
//! let (_o, inner) = sch.split("i", 2)?;
//! sch.bind(&inner, ThreadAxis::ThreadIdxX)?;
//!
//! let mut tensors = std::collections::HashMap::new();
//! tensors.insert("A".to_string(), TensorData::from(vec![1.0f32, 2.0, 3.0, 4.0]));
//! tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 4));
//! eval_func(sch.func(), &Default::default(), &mut tensors)?;
//! assert_eq!(tensors["C"].as_f32(), &[2.0, 3.0, 4.0, 5.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod buffer;
pub mod codegen;
pub mod dtype;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod func;
pub mod printer;
pub mod schedule;
pub mod stmt;

/// Common imports for building and scheduling IR.
pub mod prelude {
    pub use crate::analysis::{
        buffer_access_summary, count_ops, loop_depth, verify, OpCounts, VerifyError,
    };
    pub use crate::buffer::{Buffer, BufferRegion, Scope};
    pub use crate::codegen::{codegen_cuda, launch_config};
    pub use crate::dtype::DType;
    pub use crate::eval::{eval_func, eval_func_counting, scalar_map, OpKind, TensorData};
    pub use crate::exec::{
        backend_default, exec_func, fusion_default, BoundArg, BufferPool, ColsView, CompiledKernel,
        ExecBackend, ExecError, MemoryPlan, PlanEntry, RowsView, Runtime, ViewBindings,
    };
    pub use crate::expr::{BinOp, Expr, Intrinsic, Var};
    pub use crate::func::PrimFunc;
    pub use crate::printer::{print_expr, print_func};
    pub use crate::schedule::{Schedule, ScheduleError};
    pub use crate::stmt::{Block, ForKind, IterKind, IterVar, Stmt, TensorTile, ThreadAxis};
}
