//! Slot-compiled executor for lowered Stage III IR.
//!
//! The reference interpreter ([`crate::eval`]) resolves every variable and
//! buffer through name-keyed hash maps in the innermost loops. That is the
//! right shape for a semantics definition and the wrong shape for a hot
//! path: every kernel validation, autotuning trial and paper-figure run
//! pays a string hash per variable read. This module splits execution into
//! two phases, mirroring how TACO-lineage systems separate code generation
//! from execution:
//!
//! 1. **Compile** ([`Runtime::compile`]): walk a [`PrimFunc`] once, resolve
//!    every [`Var`] and buffer name to a dense integer slot, statically
//!    type every expression (variables are always integers, buffer loads
//!    are typed by the buffer's dtype), fold constants, and lower the body
//!    into a typed instruction tree with no string lookups and no per-step
//!    allocation.
//! 2. **Execute** ([`CompiledKernel::run`]): bind scalar parameters and
//!    tensor storage into a flat frame (a `Vec<i64>` of scalar slots and a
//!    table of raw buffer views) and run the instruction tree. Outermost
//!    loops bound to `blockIdx.*` dispatch their iterations across OS
//!    threads — blocks are spatial by construction in SparseTIR's model
//!    (§3.3), and a conservative taint analysis double-checks that every
//!    write is indexed by the block variable before parallelizing.
//!
//! Compiled kernels are cached by function identity in a [`Runtime`]
//! (compile once, run many), so repeated validation/autotuning of the same
//! function costs one compilation. The interpreter remains the semantics
//! oracle: the differential suite in `crates/ir/tests/exec_differential.rs`
//! asserts bit-identical results between the two on random lowered
//! programs.
//!
//! Arithmetic is replicated exactly: floats compute in `f64` and store as
//! `f32`, integer division is euclidean with explicit divide-by-zero
//! errors, casts to integer round-trip through `f64`, and per-dimension
//! bounds checks fire with the interpreter's error wording.
//!
//! On top of the generic tree, a **dense-lane fusion pass** (the `fuse`
//! submodule)
//! recognizes innermost loops over contiguous dense axes (the feature
//! dimension of SpMM/SDDMM, ELL bucket lanes) at compile time and lowers
//! them to specialized microkernel instructions — `FillLanes`,
//! `AxpyLanes`, `DotLanes`, `GatherScaleAccumulate` — that run tight
//! per-lane loops instead of per-element instruction dispatch. Fusion is
//! on by default (`SPARSETIR_NO_FUSE` disables it); the generic form is
//! retained behind every fused op as the bit-exact fallback, and the
//! kernel-cache key includes the fusion flag so toggling it never serves
//! a stale compiled kernel.
//!
//! Execution itself has two backends sharing one compiled representation
//! (see [`ExecBackend`]). The default is the **flat bytecode executor**
//! (the `bytecode` submodule): the statement tree is lowered once to a
//! flat instruction stream with jump-encoded loops and the fused
//! microkernels embedded as superinstructions, then driven by a single
//! `ip`-dispatch loop. The original recursive **tree walker** stays
//! available behind the `SPARSETIR_TREE_EXEC` kill switch; the cache key
//! includes the backend so flipping the switch recompiles rather than
//! serving a stale kernel. [`CompiledKernel::disassemble`] renders the
//! bytecode (for either backend) as a stable text listing — see the
//! `disasm` submodule and the golden-file tests under `tests/golden/`.

use crate::buffer::Buffer;
use crate::eval::TensorData;
use crate::expr::{BinOp, Expr, Intrinsic, Var};
use crate::func::PrimFunc;
use crate::printer::print_func;
use crate::stmt::{ForKind, IterKind, Stmt, TensorTile};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

mod bytecode;
mod disasm;
mod fuse;
use fuse::FusedLanes;

/// Error raised while compiling or executing a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
}

impl ExecError {
    fn new(message: impl Into<String>) -> Self {
        ExecError { message: message.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "executor error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

fn oob(name: &str, idx: usize, len: usize) -> ExecError {
    ExecError::new(format!("flat index {idx} out of bounds (len {len}) in buffer `{name}`"))
}

// ---------------------------------------------------------------------------
// Compiled program representation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FloatOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Integer-typed compiled expression. Slots index the scalar frame.
#[derive(Debug, Clone, PartialEq)]
enum IntExpr {
    Const(i64),
    Slot(u32),
    Bin {
        op: IntOp,
        lhs: Box<IntExpr>,
        rhs: Box<IntExpr>,
    },
    Select {
        cond: Box<BoolExpr>,
        then_: Box<IntExpr>,
        else_: Box<IntExpr>,
    },
    /// Cast to an integer dtype: the interpreter routes every such cast
    /// through `f64` (`as_float() as i64`), replicated here exactly.
    CastViaF64(Box<FloatExpr>),
    BoolToInt(Box<BoolExpr>),
    Load {
        buf: u32,
        index: IndexExpr,
    },
    BinarySearch {
        buf: u32,
        name: String,
        lo: Box<IntExpr>,
        hi: Box<IntExpr>,
        x: Box<IntExpr>,
    },
}

/// Float-typed compiled expression (computes in `f64` like the interpreter).
#[derive(Debug, Clone, PartialEq)]
enum FloatExpr {
    Const(f64),
    Bin { op: FloatOp, lhs: Box<FloatExpr>, rhs: Box<FloatExpr> },
    Select { cond: Box<BoolExpr>, then_: Box<FloatExpr>, else_: Box<FloatExpr> },
    FromInt(Box<IntExpr>),
    Load { buf: u32, index: IndexExpr },
    Exp(Box<FloatExpr>),
    Sqrt(Box<FloatExpr>),
    Relu(Box<FloatExpr>),
}

/// Bool-typed compiled expression.
#[derive(Debug, Clone, PartialEq)]
enum BoolExpr {
    CmpI {
        op: CmpOp,
        lhs: Box<IntExpr>,
        rhs: Box<IntExpr>,
    },
    CmpF {
        op: CmpOp,
        lhs: Box<FloatExpr>,
        rhs: Box<FloatExpr>,
    },
    /// Non-short-circuiting, like the interpreter (both sides evaluate, so
    /// divide-by-zero on the right still errors when the left is false).
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    IntNonZero(Box<IntExpr>),
    FloatNonZero(Box<FloatExpr>),
}

/// Flattened buffer access: per-dimension `(index, extent)` programs plus
/// the buffer name for error messages. Bounds are checked per dimension
/// with the interpreter's wording.
#[derive(Debug, Clone, PartialEq)]
struct IndexExpr {
    name: String,
    dims: Vec<(IntExpr, IntExpr)>,
}

#[derive(Debug, Clone)]
enum ValueExpr {
    I(IntExpr),
    F(FloatExpr),
    B(BoolExpr),
}

#[derive(Debug, Clone)]
struct CompiledTile {
    buf: u32,
    name: String,
    offset: IntExpr,
    row_stride: IntExpr,
}

/// Compiled statement tree.
#[derive(Debug)]
enum CStmt {
    For {
        slot: u32,
        extent: IntExpr,
        body: Box<CStmt>,
    },
    /// Outermost `blockIdx.*` loop whose body passed the parallel-safety
    /// analysis: iterations dispatch across OS threads.
    ParFor {
        slot: u32,
        extent: IntExpr,
        body: Box<CStmt>,
    },
    Block(CBlock),
    StoreF {
        buf: u32,
        index: IndexExpr,
        value: FloatExpr,
    },
    StoreI {
        buf: u32,
        index: IndexExpr,
        value: IntExpr,
    },
    Seq(Vec<CStmt>),
    If {
        cond: BoolExpr,
        then_: Box<CStmt>,
        else_: Option<Box<CStmt>>,
    },
    Let {
        slot: u32,
        value: IntExpr,
        body: Box<CStmt>,
    },
    Alloc {
        buf: u32,
        is_float: bool,
        len_dims: Vec<IntExpr>,
        body: Box<CStmt>,
    },
    EvalV(ValueExpr),
    Mma(Box<MmaOp>),
    /// Fused dense-lane loop: microkernel fast path with the generic loop
    /// retained inside as the bit-exact semantic fallback (see [`fuse`]).
    Fused(Box<FusedLanes>),
    /// Statement that is ill-typed but only errors if actually executed
    /// (matching the interpreter's lazy runtime errors).
    Fail(String),
}

/// Boxed payload of [`CStmt::Mma`] (keeps the statement enum small).
#[derive(Debug, Clone)]
struct MmaOp {
    c: CompiledTile,
    a: CompiledTile,
    b: CompiledTile,
    m: usize,
    n: usize,
    k: usize,
}

#[derive(Debug)]
struct CBlock {
    /// `(slot, binding, is_reduce)` in declaration order; bindings are
    /// evaluated sequentially so later ones may reference earlier slots.
    iters: Vec<(u32, IntExpr, bool)>,
    all_spatial: bool,
    init: Option<Box<CStmt>>,
    body: Box<CStmt>,
}

// ---------------------------------------------------------------------------
// Runtime frame
// ---------------------------------------------------------------------------

/// Raw view of one bound buffer. Pointers stay valid for the duration of a
/// `run` call: function-level views point into the caller's `TensorData`
/// map (not structurally mutated during execution) and local views point
/// into the frame's allocation arena.
///
/// All element accesses go through relaxed atomics (free on x86/ARM for
/// aligned 32-bit values): even if IR violates the blockIdx spatial
/// contract and two ParFor iterations touch the same element, the result
/// is a well-defined value race, never undefined behavior.
#[derive(Debug, Clone, Copy)]
enum RawBuf {
    F32 {
        ptr: *mut f32,
        len: usize,
    },
    I32 {
        ptr: *mut i32,
        len: usize,
    },
    /// Column-segmented f32 view: `width` logical columns, each described
    /// by a [`ColSeg`] table entry (segment base pointer + row stride).
    /// Flat index `i` resolves to column `i % width` of row `i / width`.
    SegCols {
        table: *const ColSeg,
        width: usize,
        rows: usize,
        writable: bool,
    },
    /// Row-segmented f32 view: `n_segs` equal-length contiguous segments.
    /// Flat index `i` resolves to offset `i % seg_len` of segment
    /// `i / seg_len`.
    SegRows {
        segs: *const RowSeg,
        n_segs: usize,
        seg_len: usize,
        writable: bool,
    },
    Absent,
}

impl RawBuf {
    fn of(data: &mut TensorData) -> RawBuf {
        match data {
            TensorData::F32(v) => RawBuf::F32 { ptr: v.as_mut_ptr(), len: v.len() },
            TensorData::I32(v) => RawBuf::I32 { ptr: v.as_mut_ptr(), len: v.len() },
        }
    }
}

/// One logical column of a column-segmented binding: the column's address
/// at row 0, the owning segment's row stride, and how many columns of that
/// segment remain from this one (contiguous-run headroom for the fused
/// lane kernels).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColSeg {
    pub(crate) ptr: *mut f32,
    pub(crate) stride: u32,
    pub(crate) rem: u32,
}

/// One segment of a row-segmented binding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowSeg {
    pub(crate) ptr: *mut f32,
}

/// SAFETY: `idx < rows * width` has been checked and the table is valid
/// for the run.
#[inline]
unsafe fn seg_cols_ptr(table: *const ColSeg, width: usize, idx: usize) -> *mut f32 {
    let e = &*table.add(idx % width);
    e.ptr.add((idx / width) * e.stride as usize)
}

/// SAFETY: `idx < n_segs * seg_len` has been checked and the segment
/// table is valid for the run.
#[inline]
unsafe fn seg_rows_ptr(segs: *const RowSeg, seg_len: usize, idx: usize) -> *mut f32 {
    (*segs.add(idx / seg_len)).ptr.add(idx % seg_len)
}

fn read_only(name: &str) -> ExecError {
    ExecError::new(format!("buffer `{name}` is bound to a read-only view"))
}

/// SAFETY contract for the helpers below: `idx` has been bounds-checked
/// against the view's `len`, and the view is valid for the whole run.
#[inline]
unsafe fn elem_load_f32(ptr: *mut f32, idx: usize) -> f32 {
    f32::from_bits((*ptr.add(idx).cast::<AtomicU32>()).load(Ordering::Relaxed))
}

#[inline]
unsafe fn elem_store_f32(ptr: *mut f32, idx: usize, v: f32) {
    (*ptr.add(idx).cast::<AtomicU32>()).store(v.to_bits(), Ordering::Relaxed);
}

#[inline]
unsafe fn elem_load_i32(ptr: *mut i32, idx: usize) -> i32 {
    (*ptr.add(idx).cast::<AtomicI32>()).load(Ordering::Relaxed)
}

#[inline]
unsafe fn elem_store_i32(ptr: *mut i32, idx: usize, v: i32) {
    (*ptr.add(idx).cast::<AtomicI32>()).store(v, Ordering::Relaxed);
}

struct Frame {
    scalars: Vec<i64>,
    bufs: Vec<RawBuf>,
    /// Arena owning `Allocate`d staging buffers; `RawBuf` views point at
    /// the arena entries' heap storage, which is stable across pushes.
    locals: Vec<TensorData>,
    /// Size-classed pool serving `Allocate` scratch; `None` in `ParFor`
    /// sub-frames (they fall back to plain heap allocation).
    pool: Option<Arc<BufferPool>>,
}

impl Frame {
    #[inline]
    fn load_f(&self, buf: u32, idx: usize, name: &str) -> Result<f64, ExecError> {
        match self.bufs[buf as usize] {
            RawBuf::F32 { ptr, len } => {
                if idx >= len {
                    return Err(oob(name, idx, len));
                }
                // SAFETY: idx < len and the view is valid for the run.
                Ok(f64::from(unsafe { elem_load_f32(ptr, idx) }))
            }
            RawBuf::SegCols { table, width, rows, .. } => {
                let len = rows * width;
                if idx >= len {
                    return Err(oob(name, idx, len));
                }
                // SAFETY: idx < rows * width and the view is valid for the run.
                Ok(f64::from(unsafe { elem_load_f32(seg_cols_ptr(table, width, idx), 0) }))
            }
            RawBuf::SegRows { segs, n_segs, seg_len, .. } => {
                let len = n_segs * seg_len;
                if idx >= len {
                    return Err(oob(name, idx, len));
                }
                // SAFETY: idx < n_segs * seg_len and the view is valid for the run.
                Ok(f64::from(unsafe { elem_load_f32(seg_rows_ptr(segs, seg_len, idx), 0) }))
            }
            RawBuf::I32 { .. } => {
                Err(ExecError::new(format!("buffer `{name}` holds i32 data, float load expected")))
            }
            RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{name}`"))),
        }
    }

    #[inline]
    fn load_i(&self, buf: u32, idx: usize, name: &str) -> Result<i64, ExecError> {
        match self.bufs[buf as usize] {
            RawBuf::I32 { ptr, len } => {
                if idx >= len {
                    return Err(oob(name, idx, len));
                }
                // SAFETY: idx < len and the view is valid for the run.
                Ok(i64::from(unsafe { elem_load_i32(ptr, idx) }))
            }
            RawBuf::F32 { .. } | RawBuf::SegCols { .. } | RawBuf::SegRows { .. } => {
                Err(ExecError::new(format!("buffer `{name}` holds f32 data, int load expected")))
            }
            RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{name}`"))),
        }
    }
}

impl IndexExpr {
    /// Interpreter-identical flattening: per-dimension bound check, then
    /// `flat = flat * extent + index`.
    fn eval(&self, fr: &Frame) -> Result<usize, ExecError> {
        self.eval_with_last(fr).map(|(flat, _, _)| flat as usize)
    }

    /// Like [`IndexExpr::eval`], but also returns the innermost
    /// dimension's index and extent (the fused lane kernels stride the
    /// innermost dimension and need its headroom to bounds-check every
    /// lane up front).
    fn eval_with_last(&self, fr: &Frame) -> Result<(i64, i64, i64), ExecError> {
        let mut flat: i64 = 0;
        let mut last = (0i64, 1i64);
        for (idx, dim) in &self.dims {
            let d = dim.eval(fr)?;
            let i = idx.eval(fr)?;
            if i < 0 || i >= d {
                return Err(ExecError::new(format!(
                    "index {i} out of bounds for dim of extent {d} in buffer `{}`",
                    self.name
                )));
            }
            flat = flat * d + i;
            last = (i, d);
        }
        Ok((flat, last.0, last.1))
    }
}

impl IntExpr {
    fn eval(&self, fr: &Frame) -> Result<i64, ExecError> {
        match self {
            IntExpr::Const(v) => Ok(*v),
            IntExpr::Slot(s) => Ok(fr.scalars[*s as usize]),
            IntExpr::Bin { op, lhs, rhs } => {
                let a = lhs.eval(fr)?;
                let b = rhs.eval(fr)?;
                match op {
                    IntOp::Add => Ok(a + b),
                    IntOp::Sub => Ok(a - b),
                    IntOp::Mul => Ok(a * b),
                    IntOp::Div => {
                        if b == 0 {
                            return Err(ExecError::new("integer division by zero"));
                        }
                        Ok(a.div_euclid(b))
                    }
                    IntOp::Rem => {
                        if b == 0 {
                            return Err(ExecError::new("integer remainder by zero"));
                        }
                        Ok(a.rem_euclid(b))
                    }
                    IntOp::Min => Ok(a.min(b)),
                    IntOp::Max => Ok(a.max(b)),
                }
            }
            IntExpr::Select { cond, then_, else_ } => {
                if cond.eval(fr)? {
                    then_.eval(fr)
                } else {
                    else_.eval(fr)
                }
            }
            IntExpr::CastViaF64(v) => Ok(v.eval(fr)? as i64),
            IntExpr::BoolToInt(b) => Ok(i64::from(b.eval(fr)?)),
            IntExpr::Load { buf, index } => {
                let flat = index.eval(fr)?;
                fr.load_i(*buf, flat, &index.name)
            }
            IntExpr::BinarySearch { buf, name, lo, hi, x } => {
                let lo = lo.eval(fr)? as usize;
                let hi = hi.eval(fr)? as usize;
                let x = x.eval(fr)? as i32;
                match fr.bufs[*buf as usize] {
                    RawBuf::I32 { ptr, len } => {
                        if lo > hi || hi > len {
                            return Err(ExecError::new(format!(
                                "binary_search range {lo}..{hi} out of bounds (len {len}) in buffer `{name}`"
                            )));
                        }
                        // partition_point over atomic element reads (no
                        // slice over potentially shared memory).
                        let (mut l, mut h) = (lo, hi);
                        while l < h {
                            let mid = l + (h - l) / 2;
                            // SAFETY: lo <= mid < hi <= len.
                            if unsafe { elem_load_i32(ptr, mid) } < x {
                                l = mid + 1;
                            } else {
                                h = mid;
                            }
                        }
                        Ok((l - lo) as i64)
                    }
                    RawBuf::F32 { .. } | RawBuf::SegCols { .. } | RawBuf::SegRows { .. } => {
                        Err(ExecError::new(format!("binary_search over non-i32 buffer `{name}`")))
                    }
                    RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{name}`"))),
                }
            }
        }
    }
}

impl FloatExpr {
    fn eval(&self, fr: &Frame) -> Result<f64, ExecError> {
        match self {
            FloatExpr::Const(v) => Ok(*v),
            FloatExpr::Bin { op, lhs, rhs } => {
                let a = lhs.eval(fr)?;
                let b = rhs.eval(fr)?;
                Ok(match op {
                    FloatOp::Add => a + b,
                    FloatOp::Sub => a - b,
                    FloatOp::Mul => a * b,
                    FloatOp::Div => a / b,
                    FloatOp::Rem => a % b,
                    FloatOp::Min => a.min(b),
                    FloatOp::Max => a.max(b),
                })
            }
            FloatExpr::Select { cond, then_, else_ } => {
                if cond.eval(fr)? {
                    then_.eval(fr)
                } else {
                    else_.eval(fr)
                }
            }
            FloatExpr::FromInt(v) => Ok(v.eval(fr)? as f64),
            FloatExpr::Load { buf, index } => {
                let flat = index.eval(fr)?;
                fr.load_f(*buf, flat, &index.name)
            }
            FloatExpr::Exp(v) => Ok(v.eval(fr)?.exp()),
            FloatExpr::Sqrt(v) => Ok(v.eval(fr)?.sqrt()),
            FloatExpr::Relu(v) => Ok(v.eval(fr)?.max(0.0)),
        }
    }
}

impl BoolExpr {
    fn eval(&self, fr: &Frame) -> Result<bool, ExecError> {
        match self {
            BoolExpr::CmpI { op, lhs, rhs } => {
                let a = lhs.eval(fr)?;
                let b = rhs.eval(fr)?;
                Ok(match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                })
            }
            BoolExpr::CmpF { op, lhs, rhs } => {
                let a = lhs.eval(fr)?;
                let b = rhs.eval(fr)?;
                Ok(match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                })
            }
            BoolExpr::And(l, r) => {
                let a = l.eval(fr)?;
                let b = r.eval(fr)?;
                Ok(a && b)
            }
            BoolExpr::Or(l, r) => {
                let a = l.eval(fr)?;
                let b = r.eval(fr)?;
                Ok(a || b)
            }
            BoolExpr::IntNonZero(v) => Ok(v.eval(fr)? != 0),
            BoolExpr::FloatNonZero(v) => Ok(v.eval(fr)? != 0.0),
        }
    }
}

impl ValueExpr {
    fn eval_for_effect(&self, fr: &Frame) -> Result<(), ExecError> {
        match self {
            ValueExpr::I(e) => e.eval(fr).map(|_| ()),
            ValueExpr::F(e) => e.eval(fr).map(|_| ()),
            ValueExpr::B(e) => e.eval(fr).map(|_| ()),
        }
    }
}

/// Wrapper sending per-thread frames into scoped threads. The raw buffer
/// views alias the same storage across threads; all element accesses are
/// relaxed atomics, so even contract-violating IR cannot cause undefined
/// behavior — only a deterministic-per-schedule value race. Deterministic,
/// interpreter-identical results are guaranteed for loops that honour the
/// blockIdx spatial contract (checked conservatively by `parallel_safe`).
struct SendFrame(Frame);
// SAFETY: the raw pointers target allocations that outlive the scoped
// threads, and every dereference goes through relaxed atomics (see
// `elem_load_*`/`elem_store_*`), so cross-thread access is well-defined.
unsafe impl Send for SendFrame {}

fn num_threads() -> usize {
    if let Ok(v) = std::env::var("SPARSETIR_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl CStmt {
    fn exec(&self, fr: &mut Frame) -> Result<(), ExecError> {
        match self {
            CStmt::For { slot, extent, body } => {
                let n = extent.eval(fr)?;
                for i in 0..n {
                    fr.scalars[*slot as usize] = i;
                    body.exec(fr)?;
                }
                Ok(())
            }
            CStmt::ParFor { slot, extent, body } => {
                let n = extent.eval(fr)?;
                let threads = num_threads().min(n.max(0) as usize);
                if threads < 2 {
                    for i in 0..n {
                        fr.scalars[*slot as usize] = i;
                        body.exec(fr)?;
                    }
                    return Ok(());
                }
                let chunk = (n as usize).div_ceil(threads);
                let first_err: Mutex<Option<ExecError>> = Mutex::new(None);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let lo = (t * chunk) as i64;
                        let hi = n.min(((t + 1) * chunk) as i64);
                        if lo >= hi {
                            break;
                        }
                        let tf = SendFrame(Frame {
                            scalars: fr.scalars.clone(),
                            bufs: fr.bufs.clone(),
                            locals: Vec::new(),
                            pool: None,
                        });
                        let first_err = &first_err;
                        s.spawn(move || {
                            // Move the whole wrapper (not just `tf.0`) so
                            // the `Send` impl on `SendFrame` applies.
                            let mut tf = tf;
                            for i in lo..hi {
                                tf.0.scalars[*slot as usize] = i;
                                if let Err(e) = body.exec(&mut tf.0) {
                                    let mut g = first_err.lock().unwrap();
                                    if g.is_none() {
                                        *g = Some(e);
                                    }
                                    return;
                                }
                            }
                        });
                    }
                });
                match first_err.into_inner().unwrap() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            CStmt::Block(b) => {
                let mut any_reduce_nonzero = false;
                for (slot, binding, is_reduce) in &b.iters {
                    let v = binding.eval(fr)?;
                    if *is_reduce && v != 0 {
                        any_reduce_nonzero = true;
                    }
                    fr.scalars[*slot as usize] = v;
                }
                let init_needed =
                    if b.all_spatial { b.init.is_some() } else { !any_reduce_nonzero };
                if init_needed {
                    if let Some(init) = &b.init {
                        init.exec(fr)?;
                    }
                }
                b.body.exec(fr)
            }
            CStmt::StoreF { buf, index, value } => exec_store_f(fr, *buf, index, value),
            CStmt::StoreI { buf, index, value } => exec_store_i(fr, *buf, index, value),
            CStmt::Seq(stmts) => {
                for s in stmts {
                    s.exec(fr)?;
                }
                Ok(())
            }
            CStmt::If { cond, then_, else_ } => {
                if cond.eval(fr)? {
                    then_.exec(fr)
                } else if let Some(e) = else_ {
                    e.exec(fr)
                } else {
                    Ok(())
                }
            }
            CStmt::Let { slot, value, body } => {
                let v = value.eval(fr)?;
                fr.scalars[*slot as usize] = v;
                body.exec(fr)
            }
            CStmt::Alloc { buf, is_float, len_dims, body } => {
                let mut len: i64 = 1;
                for d in len_dims {
                    len *= d.eval(fr)?;
                }
                let mut data = alloc_local(fr, *is_float, len as usize);
                let view = RawBuf::of(&mut data);
                fr.locals.push(data);
                let saved = fr.bufs[*buf as usize];
                fr.bufs[*buf as usize] = view;
                let r = body.exec(fr);
                fr.bufs[*buf as usize] = saved;
                free_local(fr);
                r
            }
            CStmt::EvalV(e) => e.eval_for_effect(fr),
            CStmt::Mma(op) => exec_mma(fr, &op.c, &op.a, &op.b, op.m, op.n, op.k),
            CStmt::Fused(f) => f.exec(fr),
            CStmt::Fail(msg) => Err(ExecError::new(msg.clone())),
        }
    }
}

/// Acquire one kernel-local scratch buffer, from the frame's pool when
/// present (zeroed either way). Shared by the tree and bytecode `Alloc`.
#[inline]
fn alloc_local(fr: &Frame, is_float: bool, len: usize) -> TensorData {
    match (&fr.pool, is_float) {
        (Some(p), true) => TensorData::F32(p.acquire_f32(len)),
        (Some(p), false) => TensorData::I32(p.acquire_i32(len)),
        (None, true) => TensorData::F32(vec![0.0; len]),
        (None, false) => TensorData::I32(vec![0; len]),
    }
}

/// Pop the innermost local scratch buffer, returning its storage to the
/// frame's pool when present.
#[inline]
fn free_local(fr: &mut Frame) {
    let Some(data) = fr.locals.pop() else { return };
    if let Some(p) = &fr.pool {
        match data {
            TensorData::F32(v) => p.release_f32(v),
            TensorData::I32(v) => p.release_i32(v),
        }
    }
}

/// `BufferStore` into a float buffer: value first, then index, then the
/// dtype-dispatched store — shared verbatim by the tree and bytecode
/// executors so evaluation order and error wording stay identical.
#[inline]
fn exec_store_f(
    fr: &Frame,
    buf: u32,
    index: &IndexExpr,
    value: &FloatExpr,
) -> Result<(), ExecError> {
    let v = value.eval(fr)?;
    let flat = index.eval(fr)?;
    match fr.bufs[buf as usize] {
        RawBuf::F32 { ptr, len } => {
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < len.
            unsafe { elem_store_f32(ptr, flat, v as f32) };
            Ok(())
        }
        RawBuf::SegCols { table, width, rows, writable } => {
            let len = rows * width;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: flat < rows * width.
            unsafe { elem_store_f32(seg_cols_ptr(table, width, flat), 0, v as f32) };
            Ok(())
        }
        RawBuf::SegRows { segs, n_segs, seg_len, writable } => {
            let len = n_segs * seg_len;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: flat < n_segs * seg_len.
            unsafe { elem_store_f32(seg_rows_ptr(segs, seg_len, flat), 0, v as f32) };
            Ok(())
        }
        RawBuf::I32 { .. } => Err(ExecError::new(format!("expected int, got float {v}"))),
        RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{}`", index.name))),
    }
}

/// `BufferStore` of the reduction-accumulate form `buf[i] = buf[i] + rest`,
/// evaluating the flat index once for both the load and the store. The
/// generic statement's error order is index → load bounds → `rest` →
/// store bounds; reusing the flat index preserves it exactly (the store's
/// bounds check is implied by the load's on the same buffer).
#[inline]
fn exec_accum_f(
    fr: &Frame,
    buf: u32,
    index: &IndexExpr,
    rest: &FloatExpr,
) -> Result<(), ExecError> {
    let flat = index.eval(fr)?;
    match fr.bufs[buf as usize] {
        RawBuf::F32 { ptr, len } => {
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < len and the view is valid for the run.
            let cur = f64::from(unsafe { elem_load_f32(ptr, flat) });
            let v = cur + rest.eval(fr)?;
            // SAFETY: flat < len, checked above.
            unsafe { elem_store_f32(ptr, flat, v as f32) };
            Ok(())
        }
        RawBuf::SegCols { table, width, rows, writable } => {
            let len = rows * width;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < rows * width and the view is valid for the run.
            let p = unsafe { seg_cols_ptr(table, width, flat) };
            let cur = f64::from(unsafe { elem_load_f32(p, 0) });
            let v = cur + rest.eval(fr)?;
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: same element, checked above.
            unsafe { elem_store_f32(p, 0, v as f32) };
            Ok(())
        }
        RawBuf::SegRows { segs, n_segs, seg_len, writable } => {
            let len = n_segs * seg_len;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < n_segs * seg_len and the view is valid for the run.
            let p = unsafe { seg_rows_ptr(segs, seg_len, flat) };
            let cur = f64::from(unsafe { elem_load_f32(p, 0) });
            let v = cur + rest.eval(fr)?;
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: same element, checked above.
            unsafe { elem_store_f32(p, 0, v as f32) };
            Ok(())
        }
        // The generic form fails inside the load, with the load's wording.
        RawBuf::I32 { .. } => Err(ExecError::new(format!(
            "buffer `{}` holds i32 data, float load expected",
            index.name
        ))),
        RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{}`", index.name))),
    }
}

/// `BufferStore` of an int value; int-into-float follows the interpreter
/// (`as_float() as f32`). Shared by both executors like [`exec_store_f`].
#[inline]
fn exec_store_i(fr: &Frame, buf: u32, index: &IndexExpr, value: &IntExpr) -> Result<(), ExecError> {
    let v = value.eval(fr)?;
    let flat = index.eval(fr)?;
    match fr.bufs[buf as usize] {
        RawBuf::I32 { ptr, len } => {
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < len.
            unsafe { elem_store_i32(ptr, flat, v as i32) };
            Ok(())
        }
        RawBuf::F32 { ptr, len } => {
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            // SAFETY: flat < len.
            unsafe { elem_store_f32(ptr, flat, v as f64 as f32) };
            Ok(())
        }
        RawBuf::SegCols { table, width, rows, writable } => {
            let len = rows * width;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: flat < rows * width.
            unsafe { elem_store_f32(seg_cols_ptr(table, width, flat), 0, v as f64 as f32) };
            Ok(())
        }
        RawBuf::SegRows { segs, n_segs, seg_len, writable } => {
            let len = n_segs * seg_len;
            if flat >= len {
                return Err(oob(&index.name, flat, len));
            }
            if !writable {
                return Err(read_only(&index.name));
            }
            // SAFETY: flat < n_segs * seg_len.
            unsafe { elem_store_f32(seg_rows_ptr(segs, seg_len, flat), 0, v as f64 as f32) };
            Ok(())
        }
        RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{}`", index.name))),
    }
}

fn tile_base(fr: &Frame, t: &CompiledTile) -> Result<(u32, usize, usize), ExecError> {
    let off = t.offset.eval(fr)?;
    let stride = t.row_stride.eval(fr)?;
    if off < 0 || stride < 0 {
        return Err(ExecError::new("negative tile offset/stride"));
    }
    Ok((t.buf, off as usize, stride as usize))
}

fn exec_mma(
    fr: &mut Frame,
    c: &CompiledTile,
    a: &CompiledTile,
    b: &CompiledTile,
    m: usize,
    n: usize,
    k: usize,
) -> Result<(), ExecError> {
    let (ab, ao, asn) = tile_base(fr, a)?;
    let (bb, bo, bsn) = tile_base(fr, b)?;
    let (cb, co, csn) = tile_base(fr, c)?;
    let read = |fr: &Frame, buf: u32, name: &str, idx: usize| -> Result<f32, ExecError> {
        match fr.bufs[buf as usize] {
            RawBuf::F32 { ptr, len } => {
                if idx >= len {
                    return Err(oob(name, idx, len));
                }
                // SAFETY: idx < len.
                Ok(unsafe { elem_load_f32(ptr, idx) })
            }
            RawBuf::I32 { .. } => Err(ExecError::new("mma_sync operand must be float")),
            RawBuf::SegCols { .. } | RawBuf::SegRows { .. } => {
                Err(ExecError::new("mma_sync on a segmented binding is unsupported"))
            }
            RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{name}`"))),
        }
    };
    let mut acc = vec![0.0f32; m * n];
    for mi in 0..m {
        for ni in 0..n {
            let mut sum = 0.0f32;
            for ki in 0..k {
                let av = read(fr, ab, &a.name, ao + mi * asn + ki)?;
                let bv = read(fr, bb, &b.name, bo + ki * bsn + ni)?;
                sum += av * bv;
            }
            acc[mi * n + ni] = sum;
        }
    }
    match fr.bufs[cb as usize] {
        RawBuf::F32 { ptr, len } => {
            for mi in 0..m {
                for ni in 0..n {
                    let idx = co + mi * csn + ni;
                    if idx >= len {
                        return Err(oob(&c.name, idx, len));
                    }
                    // SAFETY: idx < len. Load-modify-store, not an atomic
                    // RMW: accumulation order within one iteration is
                    // serial, and other iterations touch disjoint tiles
                    // under the spatial contract.
                    unsafe {
                        elem_store_f32(ptr, idx, elem_load_f32(ptr, idx) + acc[mi * n + ni]);
                    }
                }
            }
            Ok(())
        }
        RawBuf::I32 { .. } => Err(ExecError::new("mma_sync target must be float")),
        RawBuf::SegCols { .. } | RawBuf::SegRows { .. } => {
            Err(ExecError::new("mma_sync on a segmented binding is unsupported"))
        }
        RawBuf::Absent => Err(ExecError::new(format!("unbound buffer `{}`", c.name))),
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Int,
    Float,
    Bool,
}

/// Static result kind of an expression under interpreter semantics:
/// variables are always integers, so every expression's kind is decidable
/// at compile time.
fn kind_of(e: &Expr) -> Kind {
    match e {
        Expr::Int { .. } | Expr::Var(_) => Kind::Int,
        Expr::Float { .. } => Kind::Float,
        Expr::Binary { op, lhs, rhs } => {
            if op.is_predicate() {
                Kind::Bool
            } else if kind_of(lhs) == Kind::Float || kind_of(rhs) == Kind::Float {
                Kind::Float
            } else {
                Kind::Int
            }
        }
        Expr::Select { then, otherwise, .. } => {
            let (a, b) = (kind_of(then), kind_of(otherwise));
            if a == Kind::Float || b == Kind::Float {
                Kind::Float
            } else if a == Kind::Bool && b == Kind::Bool {
                Kind::Bool
            } else {
                Kind::Int
            }
        }
        Expr::Cast { dtype, .. } => {
            if dtype.is_float() {
                Kind::Float
            } else {
                Kind::Int
            }
        }
        Expr::BufferLoad { buffer, .. } => {
            if buffer.dtype.is_float() {
                Kind::Float
            } else {
                Kind::Int
            }
        }
        Expr::Call { intrin, .. } => match intrin {
            Intrinsic::BinarySearch => Kind::Int,
            Intrinsic::Exp | Intrinsic::Sqrt | Intrinsic::Relu => Kind::Float,
        },
    }
}

struct Compiler {
    /// Lexically scoped name → scalar slot map (innermost last).
    var_scopes: Vec<HashMap<Rc<str>, u32>>,
    n_slots: u32,
    /// Lexically scoped buffer name → buffer slot map.
    buf_scopes: Vec<HashMap<Rc<str>, u32>>,
    n_bufs: u32,
    /// Source name of each scalar slot, by slot index (disassembly).
    slot_names: Vec<String>,
    /// Source name of each buffer slot, by slot index (disassembly).
    buf_names: Vec<String>,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            var_scopes: vec![HashMap::new()],
            n_slots: 0,
            buf_scopes: vec![HashMap::new()],
            n_bufs: 0,
            slot_names: Vec::new(),
            buf_names: Vec::new(),
        }
    }

    fn fresh_slot(&mut self, name: &Rc<str>) -> u32 {
        let slot = self.n_slots;
        self.n_slots += 1;
        self.slot_names.push(name.to_string());
        self.var_scopes.last_mut().expect("scope").insert(name.clone(), slot);
        slot
    }

    fn lookup_var(&self, name: &str) -> Option<u32> {
        self.var_scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn fresh_buf(&mut self, name: &Rc<str>) -> u32 {
        let slot = self.n_bufs;
        self.n_bufs += 1;
        self.buf_names.push(name.to_string());
        self.buf_scopes.last_mut().expect("scope").insert(name.clone(), slot);
        slot
    }

    fn lookup_buf(&self, name: &str) -> Result<u32, ExecError> {
        self.buf_scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
            .ok_or_else(|| ExecError::new(format!("unbound buffer `{name}`")))
    }

    fn compile_int(&self, e: &Expr) -> Result<IntExpr, ExecError> {
        match kind_of(e) {
            Kind::Int => self.compile_int_raw(e),
            Kind::Bool => Ok(IntExpr::BoolToInt(Box::new(self.compile_bool(e)?))),
            Kind::Float => {
                Err(ExecError::new(format!("expected int expression, found float (in `{e:?}`)")))
            }
        }
    }

    fn compile_int_raw(&self, e: &Expr) -> Result<IntExpr, ExecError> {
        Ok(match e {
            Expr::Int { value, .. } => IntExpr::Const(*value),
            Expr::Var(v) => IntExpr::Slot(
                self.lookup_var(&v.name)
                    .ok_or_else(|| ExecError::new(format!("unbound variable `{}`", v.name)))?,
            ),
            Expr::Binary { op, lhs, rhs } => {
                let iop = match op {
                    BinOp::Add => IntOp::Add,
                    BinOp::Sub => IntOp::Sub,
                    BinOp::Mul => IntOp::Mul,
                    BinOp::Div => IntOp::Div,
                    BinOp::Rem => IntOp::Rem,
                    BinOp::Min => IntOp::Min,
                    BinOp::Max => IntOp::Max,
                    _ => return Err(ExecError::new("predicate in integer position")),
                };
                fold_int(iop, self.compile_int(lhs)?, self.compile_int(rhs)?)
            }
            Expr::Select { cond, then, otherwise } => IntExpr::Select {
                cond: Box::new(self.compile_bool(cond)?),
                then_: Box::new(self.compile_int(then)?),
                else_: Box::new(self.compile_int(otherwise)?),
            },
            Expr::Cast { value, .. } => {
                // Integer cast routes through f64, exactly like the
                // interpreter's `as_float() as i64`.
                IntExpr::CastViaF64(Box::new(self.compile_float(value)?))
            }
            Expr::BufferLoad { buffer, indices } => IntExpr::Load {
                buf: self.lookup_buf(&buffer.name)?,
                index: self.compile_index(buffer, indices)?,
            },
            Expr::Call { intrin: Intrinsic::BinarySearch, args } => {
                let [buf, lo, hi, x] = args.as_slice() else {
                    return Err(ExecError::new("binary_search expects 4 args"));
                };
                let Expr::BufferLoad { buffer, .. } = buf else {
                    return Err(ExecError::new("binary_search arg 0 must name a buffer"));
                };
                IntExpr::BinarySearch {
                    buf: self.lookup_buf(&buffer.name)?,
                    name: buffer.name.to_string(),
                    lo: Box::new(self.compile_int(lo)?),
                    hi: Box::new(self.compile_int(hi)?),
                    x: Box::new(self.compile_int(x)?),
                }
            }
            other => {
                return Err(ExecError::new(format!("expression is not integer-typed: `{other:?}`")))
            }
        })
    }

    fn compile_float(&self, e: &Expr) -> Result<FloatExpr, ExecError> {
        match kind_of(e) {
            Kind::Float => self.compile_float_raw(e),
            Kind::Int | Kind::Bool => Ok(FloatExpr::FromInt(Box::new(self.compile_int(e)?))),
        }
    }

    fn compile_float_raw(&self, e: &Expr) -> Result<FloatExpr, ExecError> {
        Ok(match e {
            Expr::Float { value, .. } => FloatExpr::Const(*value),
            Expr::Binary { op, lhs, rhs } => {
                let fop = match op {
                    BinOp::Add => FloatOp::Add,
                    BinOp::Sub => FloatOp::Sub,
                    BinOp::Mul => FloatOp::Mul,
                    BinOp::Div => FloatOp::Div,
                    BinOp::Rem => FloatOp::Rem,
                    BinOp::Min => FloatOp::Min,
                    BinOp::Max => FloatOp::Max,
                    _ => return Err(ExecError::new("predicate in float position")),
                };
                FloatExpr::Bin {
                    op: fop,
                    lhs: Box::new(self.compile_float(lhs)?),
                    rhs: Box::new(self.compile_float(rhs)?),
                }
            }
            Expr::Select { cond, then, otherwise } => FloatExpr::Select {
                cond: Box::new(self.compile_bool(cond)?),
                then_: Box::new(self.compile_float(then)?),
                else_: Box::new(self.compile_float(otherwise)?),
            },
            Expr::Cast { value, .. } => FloatExpr::FromInt(Box::new(IntExpr::CastViaF64(
                Box::new(self.compile_float(value)?),
            )))
            .simplify_cast(),
            Expr::BufferLoad { buffer, indices } => FloatExpr::Load {
                buf: self.lookup_buf(&buffer.name)?,
                index: self.compile_index(buffer, indices)?,
            },
            Expr::Call { intrin, args } => {
                if args.is_empty() {
                    return Err(ExecError::new(format!(
                        "intrinsic `{}` expects an argument",
                        intrin.name()
                    )));
                }
                let arg = Box::new(self.compile_float(&args[0])?);
                match intrin {
                    Intrinsic::Exp => FloatExpr::Exp(arg),
                    Intrinsic::Sqrt => FloatExpr::Sqrt(arg),
                    Intrinsic::Relu => FloatExpr::Relu(arg),
                    Intrinsic::BinarySearch => {
                        return Err(ExecError::new("binary_search is integer-typed"))
                    }
                }
            }
            other => {
                return Err(ExecError::new(format!("expression is not float-typed: `{other:?}`")))
            }
        })
    }

    fn compile_bool(&self, e: &Expr) -> Result<BoolExpr, ExecError> {
        match e {
            Expr::Binary { op, lhs, rhs } if op.is_predicate() => match op {
                BinOp::And => Ok(BoolExpr::And(
                    Box::new(self.compile_bool(lhs)?),
                    Box::new(self.compile_bool(rhs)?),
                )),
                BinOp::Or => Ok(BoolExpr::Or(
                    Box::new(self.compile_bool(lhs)?),
                    Box::new(self.compile_bool(rhs)?),
                )),
                _ => {
                    let cmp = match op {
                        BinOp::Eq => CmpOp::Eq,
                        BinOp::Ne => CmpOp::Ne,
                        BinOp::Lt => CmpOp::Lt,
                        BinOp::Le => CmpOp::Le,
                        BinOp::Gt => CmpOp::Gt,
                        BinOp::Ge => CmpOp::Ge,
                        _ => unreachable!("non-comparison predicate handled above"),
                    };
                    // Float comparison if either side is float, matching
                    // the interpreter's dynamic promotion.
                    if kind_of(lhs) == Kind::Float || kind_of(rhs) == Kind::Float {
                        Ok(BoolExpr::CmpF {
                            op: cmp,
                            lhs: Box::new(self.compile_float(lhs)?),
                            rhs: Box::new(self.compile_float(rhs)?),
                        })
                    } else {
                        Ok(BoolExpr::CmpI {
                            op: cmp,
                            lhs: Box::new(self.compile_int(lhs)?),
                            rhs: Box::new(self.compile_int(rhs)?),
                        })
                    }
                }
            },
            _ => match kind_of(e) {
                Kind::Bool => {
                    Err(ExecError::new(format!("unsupported boolean expression: `{e:?}`")))
                }
                Kind::Int => Ok(BoolExpr::IntNonZero(Box::new(self.compile_int(e)?))),
                Kind::Float => Ok(BoolExpr::FloatNonZero(Box::new(self.compile_float(e)?))),
            },
        }
    }

    fn compile_value(&self, e: &Expr) -> Result<ValueExpr, ExecError> {
        Ok(match kind_of(e) {
            Kind::Int => ValueExpr::I(self.compile_int(e)?),
            Kind::Float => ValueExpr::F(self.compile_float(e)?),
            Kind::Bool => ValueExpr::B(self.compile_bool(e)?),
        })
    }

    fn compile_index(&self, buffer: &Buffer, indices: &[Expr]) -> Result<IndexExpr, ExecError> {
        if indices.len() != buffer.shape.len() {
            return Err(ExecError::new(format!(
                "buffer `{}` has {} dims but {} indices given",
                buffer.name,
                buffer.shape.len(),
                indices.len()
            )));
        }
        let mut dims = Vec::with_capacity(indices.len());
        for (idx, dim) in indices.iter().zip(&buffer.shape) {
            dims.push((self.compile_int(idx)?, self.compile_int(dim)?));
        }
        Ok(IndexExpr { name: buffer.name.to_string(), dims })
    }

    fn compile_tile(&self, t: &TensorTile) -> Result<CompiledTile, ExecError> {
        Ok(CompiledTile {
            buf: self.lookup_buf(&t.buffer.name)?,
            name: t.buffer.name.to_string(),
            offset: self.compile_int(&t.offset)?,
            row_stride: self.compile_int(&t.row_stride)?,
        })
    }

    /// `outermost` is true only until the first loop/block boundary is
    /// crossed: only outermost blockIdx loops parallelize.
    fn compile_stmt(&mut self, s: &Stmt, outermost: bool) -> Result<CStmt, ExecError> {
        Ok(match s {
            Stmt::For { var, extent, kind, body } => {
                let extent = self.compile_int(extent)?;
                self.var_scopes.push(HashMap::new());
                let slot = self.fresh_slot(&var.name);
                let cbody = self.compile_stmt(body, false)?;
                self.var_scopes.pop();
                let parallel = outermost
                    && matches!(kind, ForKind::ThreadBinding(axis) if axis.is_block())
                    && parallel_safe(body, var);
                if parallel {
                    CStmt::ParFor { slot, extent, body: Box::new(cbody) }
                } else {
                    CStmt::For { slot, extent, body: Box::new(cbody) }
                }
            }
            Stmt::Block(b) => {
                // Bindings are evaluated sequentially in the outer scope,
                // but each iter var enters scope as soon as it is bound
                // (later bindings may reference earlier iter vars).
                self.var_scopes.push(HashMap::new());
                let mut iters = Vec::with_capacity(b.iter_vars.len());
                for iv in &b.iter_vars {
                    let binding = self.compile_int(&iv.binding)?;
                    let slot = self.fresh_slot(&iv.var.name);
                    iters.push((slot, binding, iv.kind == IterKind::Reduce));
                }
                let all_spatial = b.iter_vars.iter().all(|iv| iv.kind == IterKind::Spatial);
                let init = match &b.init {
                    Some(init) => Some(Box::new(self.compile_stmt(init, false)?)),
                    None => None,
                };
                let body = Box::new(self.compile_stmt(&b.body, false)?);
                self.var_scopes.pop();
                CStmt::Block(CBlock { iters, all_spatial, init, body })
            }
            Stmt::BufferStore { buffer, indices, value } => {
                let buf = self.lookup_buf(&buffer.name)?;
                let index = self.compile_index(buffer, indices)?;
                if buffer.dtype.is_float() {
                    CStmt::StoreF { buf, index, value: self.compile_float(value)? }
                } else {
                    match kind_of(value) {
                        // The interpreter raises "expected int, got float"
                        // only when the store executes; match that.
                        Kind::Float => CStmt::Fail(
                            "expected int, got float (float value stored to int buffer)".into(),
                        ),
                        _ => CStmt::StoreI { buf, index, value: self.compile_int(value)? },
                    }
                }
            }
            Stmt::Seq(stmts) => {
                let mut out = Vec::with_capacity(stmts.len());
                for st in stmts {
                    out.push(self.compile_stmt(st, outermost)?);
                }
                CStmt::Seq(out)
            }
            Stmt::IfThenElse { cond, then_branch, else_branch } => CStmt::If {
                cond: self.compile_bool(cond)?,
                then_: Box::new(self.compile_stmt(then_branch, false)?),
                else_: match else_branch {
                    Some(e) => Some(Box::new(self.compile_stmt(e, false)?)),
                    None => None,
                },
            },
            Stmt::Let { var, value, body } => {
                if kind_of(value) == Kind::Float {
                    // The interpreter raises "expected int, got float"
                    // only when the Let executes; match that laziness.
                    CStmt::Fail("expected int, got float (float value bound by let)".into())
                } else {
                    let value = self.compile_int(value)?;
                    self.var_scopes.push(HashMap::new());
                    let slot = self.fresh_slot(&var.name);
                    let body = Box::new(self.compile_stmt(body, false)?);
                    self.var_scopes.pop();
                    CStmt::Let { slot, value, body }
                }
            }
            Stmt::Allocate { buffer, body } => {
                let len_dims = buffer
                    .shape
                    .iter()
                    .map(|d| self.compile_int(d))
                    .collect::<Result<Vec<_>, _>>()?;
                self.buf_scopes.push(HashMap::new());
                let buf = self.fresh_buf(&buffer.name);
                let body = Box::new(self.compile_stmt(body, false)?);
                self.buf_scopes.pop();
                CStmt::Alloc { buf, is_float: buffer.dtype.is_float(), len_dims, body }
            }
            Stmt::Evaluate(e) => CStmt::EvalV(self.compile_value(e)?),
            Stmt::MmaSync { c, a, b, m, n, k } => CStmt::Mma(Box::new(MmaOp {
                c: self.compile_tile(c)?,
                a: self.compile_tile(a)?,
                b: self.compile_tile(b)?,
                m: *m,
                n: *n,
                k: *k,
            })),
        })
    }
}

impl FloatExpr {
    /// `FromInt(CastViaF64(x))` where x is already float is produced by the
    /// float-cast path; collapse the no-op pair `float -> i64 -> f64` is
    /// NOT valid (truncation), but `Cast{F32}(float_expr)` should stay the
    /// identity the interpreter gives it (`Value::Float(v.as_float())`).
    fn simplify_cast(self) -> FloatExpr {
        match self {
            FloatExpr::FromInt(inner) => match *inner {
                IntExpr::CastViaF64(f) => *f,
                other => FloatExpr::FromInt(Box::new(other)),
            },
            other => other,
        }
    }
}

/// Constant-fold integer binops at compile time (division folding is left
/// to runtime so divide-by-zero errors are preserved).
fn fold_int(op: IntOp, lhs: IntExpr, rhs: IntExpr) -> IntExpr {
    if let (IntExpr::Const(a), IntExpr::Const(b)) = (&lhs, &rhs) {
        let (a, b) = (*a, *b);
        let v = match op {
            IntOp::Add => Some(a + b),
            IntOp::Sub => Some(a - b),
            IntOp::Mul => Some(a * b),
            IntOp::Div if b != 0 => Some(a.div_euclid(b)),
            IntOp::Rem if b != 0 => Some(a.rem_euclid(b)),
            IntOp::Min => Some(a.min(b)),
            IntOp::Max => Some(a.max(b)),
            _ => None,
        };
        if let Some(v) = v {
            return IntExpr::Const(v);
        }
    }
    IntExpr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

// ---------------------------------------------------------------------------
// Parallel-safety analysis
// ---------------------------------------------------------------------------

fn expr_mentions(e: &Expr, tainted: &HashSet<Rc<str>>) -> bool {
    let mut found = false;
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Var(v) => {
                if tainted.contains(&v.name) {
                    found = true;
                    break;
                }
            }
            Expr::Int { .. } | Expr::Float { .. } => {}
            Expr::Binary { lhs, rhs, .. } => {
                stack.push(lhs);
                stack.push(rhs);
            }
            Expr::Select { cond, then, otherwise } => {
                stack.push(cond);
                stack.push(then);
                stack.push(otherwise);
            }
            Expr::Cast { value, .. } => stack.push(value),
            Expr::BufferLoad { indices, .. } => stack.extend(indices.iter()),
            Expr::Call { args, .. } => stack.extend(args.iter()),
        }
    }
    found
}

/// Heuristic filter deciding whether a `blockIdx`-bound loop may dispatch
/// across threads: every write inside `body` must be indexed by the
/// candidate parallel loop variable `var` (directly or through `let` /
/// block-iter bindings derived from it), and no reduction may iterate
/// over it. This filters obviously-colliding loops on top of the IR-level
/// contract that `blockIdx`-bound loops are spatial; it does **not** prove
/// injectivity (e.g. `C[i % 2]` passes), so IR that lies about the spatial
/// contract can still race — yielding nondeterministic *values* but never
/// undefined behavior, since all element accesses are relaxed atomics.
/// Failing the filter falls back to serial execution.
fn parallel_safe(body: &Stmt, var: &Var) -> bool {
    let mut tainted: HashSet<Rc<str>> = HashSet::new();
    tainted.insert(var.name.clone());
    let mut locals: HashSet<Rc<str>> = HashSet::new();
    check_parallel(body, &mut tainted, &mut locals)
}

fn check_parallel(s: &Stmt, tainted: &mut HashSet<Rc<str>>, locals: &mut HashSet<Rc<str>>) -> bool {
    match s {
        Stmt::For { var, body, .. } => {
            // The loop var shadows any tainted binding of the same name.
            let was = tainted.remove(&var.name);
            let ok = check_parallel(body, tainted, locals);
            if was {
                tainted.insert(var.name.clone());
            }
            ok
        }
        Stmt::Block(b) => {
            let mut added = Vec::new();
            let mut shadowed = Vec::new();
            for iv in &b.iter_vars {
                let derives = expr_mentions(&iv.binding, tainted);
                if derives && iv.kind == IterKind::Reduce {
                    // A reduction over the parallel dimension would merge
                    // writes across iterations: not parallel-safe.
                    for name in added {
                        tainted.remove::<Rc<str>>(&name);
                    }
                    for name in shadowed {
                        tainted.insert(name);
                    }
                    return false;
                }
                if derives {
                    if tainted.insert(iv.var.name.clone()) {
                        added.push(iv.var.name.clone());
                    }
                } else if tainted.remove(&iv.var.name) {
                    shadowed.push(iv.var.name.clone());
                }
            }
            let ok = b.init.as_ref().is_none_or(|init| check_parallel(init, tainted, locals))
                && check_parallel(&b.body, tainted, locals);
            for name in added {
                tainted.remove::<Rc<str>>(&name);
            }
            for name in shadowed {
                tainted.insert(name);
            }
            ok
        }
        Stmt::BufferStore { buffer, indices, .. } => {
            locals.contains(&buffer.name) || indices.iter().any(|i| expr_mentions(i, tainted))
        }
        Stmt::Seq(stmts) => stmts.iter().all(|st| check_parallel(st, tainted, locals)),
        Stmt::IfThenElse { then_branch, else_branch, .. } => {
            check_parallel(then_branch, tainted, locals)
                && else_branch.as_ref().is_none_or(|e| check_parallel(e, tainted, locals))
        }
        Stmt::Let { var, value, body } => {
            let derives = expr_mentions(value, tainted);
            let (added, shadowed) = if derives {
                (tainted.insert(var.name.clone()), false)
            } else {
                (false, tainted.remove(&var.name))
            };
            let ok = check_parallel(body, tainted, locals);
            if added {
                tainted.remove(&var.name);
            }
            if shadowed {
                tainted.insert(var.name.clone());
            }
            ok
        }
        Stmt::Allocate { buffer, body } => {
            let added = locals.insert(buffer.name.clone());
            let ok = check_parallel(body, tainted, locals);
            if added {
                locals.remove(&buffer.name);
            }
            ok
        }
        Stmt::Evaluate(_) => true,
        Stmt::MmaSync { c, .. } => {
            locals.contains(&c.buffer.name) || expr_mentions(&c.offset, tainted)
        }
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Executor backend a kernel is compiled for. Both execute the same
/// slot-compiled program with bit-identical semantics (the interpreter
/// stays the oracle for both); they differ only in dispatch shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// Recursive typed-instruction-tree walk (the original executor,
    /// retained behind the `SPARSETIR_TREE_EXEC` kill switch).
    Tree,
    /// Flat bytecode stream driven by an instruction-pointer dispatch
    /// loop, with jump-encoded loops and fused-lane superinstructions.
    Bytecode,
}

impl ExecBackend {
    /// Stable lowercase tag (cache diagnostics, disassembly header).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ExecBackend::Tree => "tree",
            ExecBackend::Bytecode => "bytecode",
        }
    }
}

/// Backend default for [`CompiledKernel::compile`] and new [`Runtime`]s:
/// the flat bytecode executor, unless the `SPARSETIR_TREE_EXEC`
/// environment variable is set (the kill switch back to the tree walker).
#[must_use]
pub fn backend_default() -> ExecBackend {
    if std::env::var_os("SPARSETIR_TREE_EXEC").is_some() {
        ExecBackend::Tree
    } else {
        ExecBackend::Bytecode
    }
}

/// Executable form of a compiled kernel body, one variant per backend.
#[derive(Debug)]
enum Body {
    Tree(CStmt),
    Code(bytecode::Code),
}

/// A compiled, reusable kernel: run it many times against different tensor
/// bindings without re-walking the IR.
pub struct CompiledKernel {
    name: String,
    /// `(param name, scalar slot)` bindings filled from the caller's map.
    params: Vec<(String, u32)>,
    /// `(buffer name, is_float, buffer slot)` for function-level buffers.
    buffers: Vec<(String, bool, u32)>,
    n_slots: u32,
    n_bufs: u32,
    body: Body,
    backend: ExecBackend,
    fuse: bool,
    /// Number of dense-lane microkernel instructions fused into the body.
    fused_ops: usize,
    /// Source name of every scalar slot, by index (disassembly).
    slot_names: Vec<String>,
    /// Source name of every buffer slot, by index (disassembly).
    buf_names: Vec<String>,
    /// Scratch scalar frames reused across invocations.
    frame_pool: Mutex<Vec<Vec<i64>>>,
    /// Compile-time memory requirements, one entry per buffer slot.
    plan: MemoryPlan,
    /// Size-classed pool serving `Allocate` scratch at run time. Kernels
    /// compiled through a [`Runtime`] share its pool; standalone
    /// compilations get a private one.
    pool: Arc<BufferPool>,
}

impl fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledKernel")
            .field("name", &self.name)
            .field("slots", &self.n_slots)
            .field("buffers", &self.n_bufs)
            .finish()
    }
}

impl CompiledKernel {
    /// Compile `func` into a slot-indexed program with the default fusion
    /// setting ([`fusion_default`]) and executor backend
    /// ([`backend_default`]).
    ///
    /// # Errors
    /// Returns [`ExecError`] on references to unbound names or ill-typed
    /// constructs that the interpreter would also reject.
    pub fn compile(func: &PrimFunc) -> Result<CompiledKernel, ExecError> {
        Self::compile_opts(func, fusion_default(), backend_default())
    }

    /// Compile `func`, explicitly enabling (`true`) or disabling
    /// (`false`) the dense-lane microkernel fusion pass. With fusion off
    /// the kernel runs entirely on generic dispatch — the baseline the
    /// `executor_vectorization` bench compares against. Uses the default
    /// executor backend ([`backend_default`]).
    ///
    /// # Errors
    /// Returns [`ExecError`] on references to unbound names or ill-typed
    /// constructs that the interpreter would also reject.
    pub fn compile_with(func: &PrimFunc, fuse: bool) -> Result<CompiledKernel, ExecError> {
        Self::compile_opts(func, fuse, backend_default())
    }

    /// Compile `func` with an explicit fusion flag and executor backend.
    ///
    /// Both backends start from the same slot-compiled statement tree.
    /// For [`ExecBackend::Tree`] the fusion pass rewrites matching loops
    /// into fused tree nodes; for [`ExecBackend::Bytecode`] the tree is
    /// lowered to a flat instruction stream, with the fusion analysis
    /// consulted during lowering to emit superinstructions in place of
    /// matching loops (the generic loop lowers right behind each one as
    /// the bit-exact fallback).
    ///
    /// # Errors
    /// Returns [`ExecError`] on references to unbound names or ill-typed
    /// constructs that the interpreter would also reject.
    pub fn compile_opts(
        func: &PrimFunc,
        fuse: bool,
        backend: ExecBackend,
    ) -> Result<CompiledKernel, ExecError> {
        let mut c = Compiler::new();
        let mut params = Vec::with_capacity(func.params.len());
        for p in &func.params {
            let slot = c.fresh_slot(&p.name);
            params.push((p.name.to_string(), slot));
        }
        let mut buffers = Vec::with_capacity(func.buffers.len());
        for b in &func.buffers {
            let slot = c.fresh_buf(&b.name);
            buffers.push((b.name.to_string(), b.dtype.is_float(), slot));
        }
        let tree = c.compile_stmt(&func.body, true)?;
        let plan = MemoryPlan::of(func, &buffers, &c.buf_names, &tree);
        let (body, fused_ops) = match backend {
            ExecBackend::Tree => {
                let (tree, fused_ops) = if fuse { fuse::fuse_stmt(tree) } else { (tree, 0) };
                (Body::Tree(tree), fused_ops)
            }
            ExecBackend::Bytecode => {
                let code = bytecode::lower(&tree, fuse);
                let fused_ops = code.fused_ops();
                (Body::Code(code), fused_ops)
            }
        };
        Ok(CompiledKernel {
            name: func.name.to_string(),
            params,
            buffers,
            n_slots: c.n_slots,
            n_bufs: c.n_bufs,
            body,
            backend,
            fuse,
            fused_ops,
            slot_names: c.slot_names,
            buf_names: c.buf_names,
            frame_pool: Mutex::new(Vec::new()),
            plan,
            pool: Arc::new(BufferPool::new()),
        })
    }

    /// Kernel name (the `PrimFunc` name it was compiled from).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar slots in the compiled frame (compile-time resolved
    /// variables; diagnostic).
    #[must_use]
    pub fn scalar_slots(&self) -> usize {
        self.n_slots as usize
    }

    /// Number of dense-lane microkernel instructions (`FillLanes`,
    /// `AxpyLanes`, `DotLanes`, `GatherScaleAccumulate`) the fusion pass
    /// produced. Zero when compiled with fusion disabled or when no
    /// innermost loop matched a contiguous dense-lane pattern.
    #[must_use]
    pub fn fused_ops(&self) -> usize {
        self.fused_ops
    }

    /// Names of the fused microkernel instructions, in program order
    /// (diagnostics; e.g. `["FillLanes", "AxpyLanes"]` for the hyb SpMM).
    #[must_use]
    pub fn fused_kinds(&self) -> Vec<&'static str> {
        let mut out = Vec::with_capacity(self.fused_ops);
        match &self.body {
            Body::Tree(t) => fuse::collect_micros(t, &mut out),
            Body::Code(c) => c.collect_micros(&mut out),
        }
        out
    }

    /// The executor backend this kernel was compiled for.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Stable text listing of the kernel's flat bytecode: header, param
    /// and buffer tables, the scalar-slot table, and one line per
    /// instruction. Tree-backed kernels lower their tree on demand, so
    /// the listing is identical for both backends of one compilation —
    /// golden-file tests on codegen hold regardless of the kill switch.
    #[must_use]
    pub fn disassemble(&self) -> String {
        match &self.body {
            Body::Code(code) => disasm::render(self, code),
            Body::Tree(t) => disasm::render(self, &bytecode::lower(t, self.fuse)),
        }
    }

    /// True when the outermost loop dispatches iterations across threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        fn has_par(s: &CStmt) -> bool {
            match s {
                CStmt::ParFor { .. } => true,
                CStmt::Seq(v) => v.iter().any(has_par),
                _ => false,
            }
        }
        match &self.body {
            Body::Tree(t) => has_par(t),
            Body::Code(c) => c.is_parallel(),
        }
    }

    /// Execute against named scalar parameters and tensor storage, exactly
    /// like [`crate::eval::eval_func`]. Output buffers mutate in place.
    ///
    /// # Errors
    /// Returns [`ExecError`] on missing bindings, divide-by-zero and
    /// out-of-bounds accesses — the same conditions (and messages) as the
    /// reference interpreter.
    pub fn run(
        &self,
        scalars: &HashMap<String, i64>,
        tensors: &mut HashMap<String, TensorData>,
    ) -> Result<(), ExecError> {
        let mut frame_scalars = self.frame_pool.lock().unwrap().pop().unwrap_or_default();
        frame_scalars.resize(self.n_slots as usize, 0);
        for (name, slot) in &self.params {
            let v = scalars
                .get(name)
                .ok_or_else(|| ExecError::new(format!("missing scalar param `{name}`")))?;
            frame_scalars[*slot as usize] = *v;
        }
        let mut bufs = vec![RawBuf::Absent; self.n_bufs as usize];
        for (name, is_float, slot) in &self.buffers {
            let data = tensors.get_mut(name).ok_or_else(|| {
                ExecError::new(format!("missing tensor binding for buffer `{name}`"))
            })?;
            if *is_float != matches!(data, TensorData::F32(_)) {
                return Err(ExecError::new(format!(
                    "buffer `{name}` bound to storage of mismatched dtype"
                )));
            }
            // The RawBuf view outlives this loop iteration's borrow; this
            // is sound because the map is not structurally mutated while
            // the frame is live and buffer names are distinct keys.
            bufs[*slot as usize] = RawBuf::of(data);
        }
        self.exec_frame(frame_scalars, bufs)
    }

    /// Execute like [`CompiledKernel::run`], but with bindings that may be
    /// *segmented views* ([`ColsView`]/[`RowsView`]) over caller-owned
    /// storage instead of whole tensors. This is the zero-copy batch
    /// entry: a widened launch binds each operand slot to the riders'
    /// buffers side by side and writes outputs directly into each rider's
    /// result buffer. Error conditions and wording match `run`; stores to
    /// a read-only view fail with a "read-only view" error.
    ///
    /// # Errors
    /// Returns [`ExecError`] on missing bindings, dtype mismatches and
    /// the interpreter's run-time error conditions.
    pub fn run_views(
        &self,
        scalars: &HashMap<String, i64>,
        views: &mut ViewBindings<'_>,
    ) -> Result<(), ExecError> {
        let mut frame_scalars = self.frame_pool.lock().unwrap().pop().unwrap_or_default();
        frame_scalars.resize(self.n_slots as usize, 0);
        for (name, slot) in &self.params {
            let v = scalars
                .get(name)
                .ok_or_else(|| ExecError::new(format!("missing scalar param `{name}`")))?;
            frame_scalars[*slot as usize] = *v;
        }
        let mut bufs = vec![RawBuf::Absent; self.n_bufs as usize];
        for (name, is_float, slot) in &self.buffers {
            let arg = views.map.get_mut(name.as_str()).ok_or_else(|| {
                ExecError::new(format!("missing tensor binding for buffer `{name}`"))
            })?;
            let ok = match arg {
                BoundArg::Tensor(data) => *is_float == matches!(**data, TensorData::F32(_)),
                // Segmented views are always f32.
                BoundArg::Cols(_) | BoundArg::Rows(_) => *is_float,
            };
            if !ok {
                return Err(ExecError::new(format!(
                    "buffer `{name}` bound to storage of mismatched dtype"
                )));
            }
            // Sound for the same reason as in `run`: the map (and each
            // view's segment table) is not structurally mutated while the
            // frame is live.
            bufs[*slot as usize] = match arg {
                BoundArg::Tensor(data) => RawBuf::of(data),
                BoundArg::Cols(v) => v.raw(),
                BoundArg::Rows(v) => v.raw(),
            };
        }
        self.exec_frame(frame_scalars, bufs)
    }

    fn exec_frame(&self, scalars: Vec<i64>, bufs: Vec<RawBuf>) -> Result<(), ExecError> {
        let mut frame =
            Frame { scalars, bufs, locals: Vec::new(), pool: Some(Arc::clone(&self.pool)) };
        let result = match &self.body {
            Body::Tree(t) => t.exec(&mut frame),
            Body::Code(c) => c.exec(&mut frame),
        };
        self.frame_pool.lock().unwrap().push(frame.scalars);
        result
    }

    /// The kernel's compile-time memory plan: per-buffer-slot element
    /// counts where statically known, with kernel-local scratch flagged
    /// (those allocations are served from the kernel's buffer pool).
    #[must_use]
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.plan
    }
}

// ---------------------------------------------------------------------------
// Segmented view bindings
// ---------------------------------------------------------------------------

/// A column-segmented f32 binding: one logical `rows × width` row-major
/// matrix whose columns are backed by several caller-owned row-major
/// buffers side by side (each segment contributing a contiguous block of
/// columns). The flat-index→(segment, offset) resolution is a precomputed
/// per-column table, so the executor's fused lane kernels run per-segment
/// contiguous loops with no per-element division.
pub struct ColsView<'a> {
    table: Vec<ColSeg>,
    rows: usize,
    writable: bool,
    _marker: std::marker::PhantomData<&'a mut [f32]>,
}

impl<'a> ColsView<'a> {
    /// Read-only view of `segs` as `(row-major slice, cols)` pairs placed
    /// side by side; total width is the sum of the `cols` values.
    ///
    /// # Errors
    /// Fails when a segment's length is not `rows * cols`.
    pub fn read(rows: usize, segs: &[(&'a [f32], usize)]) -> Result<ColsView<'a>, ExecError> {
        // Read-only: the pointers are never written through (`writable`
        // gates every store path).
        let iter = segs.iter().map(|(s, cols)| (s.as_ptr().cast_mut(), s.len(), *cols));
        Ok(ColsView {
            table: col_table(rows, iter)?,
            rows,
            writable: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Writable view of `segs` as `(row-major slice, cols)` pairs placed
    /// side by side.
    ///
    /// # Errors
    /// Fails when a segment's length is not `rows * cols`.
    pub fn write(
        rows: usize,
        segs: Vec<(&'a mut [f32], usize)>,
    ) -> Result<ColsView<'a>, ExecError> {
        let iter = segs.into_iter().map(|(s, cols)| (s.as_mut_ptr(), s.len(), cols));
        Ok(ColsView {
            table: col_table(rows, iter)?,
            rows,
            writable: true,
            _marker: std::marker::PhantomData,
        })
    }

    /// Total logical width (sum of the segment widths).
    #[must_use]
    pub fn width(&self) -> usize {
        self.table.len()
    }

    /// Logical row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn raw(&self) -> RawBuf {
        RawBuf::SegCols {
            table: self.table.as_ptr(),
            width: self.table.len(),
            rows: self.rows,
            writable: self.writable,
        }
    }
}

fn col_table(
    rows: usize,
    segs: impl Iterator<Item = (*mut f32, usize, usize)>,
) -> Result<Vec<ColSeg>, ExecError> {
    let mut table = Vec::new();
    for (i, (ptr, len, cols)) in segs.enumerate() {
        if len != rows * cols {
            return Err(ExecError::new(format!(
                "segmented binding: segment {i} has {len} elements, expected {rows}x{cols}"
            )));
        }
        let stride = u32::try_from(cols)
            .map_err(|_| ExecError::new("segmented binding: segment width overflows u32"))?;
        for c in 0..cols {
            // SAFETY: c < cols <= len elements behind ptr.
            table.push(ColSeg { ptr: unsafe { ptr.add(c) }, stride, rem: stride - c as u32 });
        }
    }
    Ok(table)
}

/// A row-segmented f32 binding: `n` equal-length contiguous segments
/// concatenated into one flat logical buffer (rider matrices stacked
/// along the leading axis).
pub struct RowsView<'a> {
    segs: Vec<RowSeg>,
    seg_len: usize,
    writable: bool,
    _marker: std::marker::PhantomData<&'a mut [f32]>,
}

impl<'a> RowsView<'a> {
    /// Read-only view of equal-length segments, each of `seg_len`
    /// elements.
    ///
    /// # Errors
    /// Fails when a segment's length differs from `seg_len`.
    pub fn read(seg_len: usize, segs: &[&'a [f32]]) -> Result<RowsView<'a>, ExecError> {
        let mut table = Vec::with_capacity(segs.len());
        for (i, s) in segs.iter().enumerate() {
            check_seg_len(i, s.len(), seg_len)?;
            table.push(RowSeg { ptr: s.as_ptr().cast_mut() });
        }
        Ok(RowsView { segs: table, seg_len, writable: false, _marker: std::marker::PhantomData })
    }

    /// Writable view of equal-length segments, each of `seg_len`
    /// elements.
    ///
    /// # Errors
    /// Fails when a segment's length differs from `seg_len`.
    pub fn write(seg_len: usize, segs: Vec<&'a mut [f32]>) -> Result<RowsView<'a>, ExecError> {
        let mut table = Vec::with_capacity(segs.len());
        for (i, s) in segs.into_iter().enumerate() {
            check_seg_len(i, s.len(), seg_len)?;
            table.push(RowSeg { ptr: s.as_mut_ptr() });
        }
        Ok(RowsView { segs: table, seg_len, writable: true, _marker: std::marker::PhantomData })
    }

    /// Number of segments.
    #[must_use]
    pub fn n_segs(&self) -> usize {
        self.segs.len()
    }

    fn raw(&self) -> RawBuf {
        RawBuf::SegRows {
            segs: self.segs.as_ptr(),
            n_segs: self.segs.len(),
            seg_len: self.seg_len,
            writable: self.writable,
        }
    }
}

fn check_seg_len(i: usize, len: usize, seg_len: usize) -> Result<(), ExecError> {
    if len != seg_len {
        return Err(ExecError::new(format!(
            "segmented binding: segment {i} has {len} elements, expected {seg_len}"
        )));
    }
    Ok(())
}

/// One binding handed to [`CompiledKernel::run_views`]: a whole tensor or
/// a segmented view.
pub enum BoundArg<'a> {
    /// A whole owned tensor, as [`CompiledKernel::run`] binds.
    Tensor(&'a mut TensorData),
    /// A column-segmented f32 view.
    Cols(ColsView<'a>),
    /// A row-segmented f32 view.
    Rows(RowsView<'a>),
}

/// Named bindings for [`CompiledKernel::run_views`], mixing whole tensors
/// with segmented views over caller-owned storage.
#[derive(Default)]
pub struct ViewBindings<'a> {
    map: HashMap<String, BoundArg<'a>>,
}

impl<'a> ViewBindings<'a> {
    /// Empty binding set.
    #[must_use]
    pub fn new() -> ViewBindings<'a> {
        ViewBindings::default()
    }

    /// Bind every tensor of `tensors` by name (the bridge from the
    /// copying path's binding map).
    pub fn from_tensors(tensors: &'a mut HashMap<String, TensorData>) -> ViewBindings<'a> {
        let map = tensors.iter_mut().map(|(k, v)| (k.clone(), BoundArg::Tensor(v))).collect();
        ViewBindings { map }
    }

    /// Bind a whole tensor under `name`.
    pub fn bind_tensor(&mut self, name: impl Into<String>, t: &'a mut TensorData) {
        self.map.insert(name.into(), BoundArg::Tensor(t));
    }

    /// Bind a column-segmented view under `name`.
    pub fn bind_cols(&mut self, name: impl Into<String>, v: ColsView<'a>) {
        self.map.insert(name.into(), BoundArg::Cols(v));
    }

    /// Bind a row-segmented view under `name`.
    pub fn bind_rows(&mut self, name: impl Into<String>, v: RowsView<'a>) {
        self.map.insert(name.into(), BoundArg::Rows(v));
    }
}

// ---------------------------------------------------------------------------
// Memory plan + buffer pool
// ---------------------------------------------------------------------------

/// One buffer slot's compile-time memory requirement.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Source buffer name.
    pub name: String,
    /// Element type (`f32` when true).
    pub is_float: bool,
    /// Statically known element count — `Some` when every shape extent is
    /// a compile-time constant.
    pub len: Option<usize>,
    /// True for kernel-local `Allocate` scratch (served from the buffer
    /// pool at run time) rather than a caller binding.
    pub local: bool,
}

/// A [`CompiledKernel`]'s memory plan: per-buffer-slot requirements
/// computed once at compile time, keying the size-classed [`BufferPool`]
/// and rendered into the disassembly header.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlan {
    /// One entry per buffer slot, in slot order.
    pub entries: Vec<PlanEntry>,
}

impl MemoryPlan {
    fn of(
        func: &PrimFunc,
        buffers: &[(String, bool, u32)],
        buf_names: &[String],
        tree: &CStmt,
    ) -> MemoryPlan {
        let mut entries: Vec<PlanEntry> = buf_names
            .iter()
            .map(|n| PlanEntry { name: n.clone(), is_float: true, len: None, local: true })
            .collect();
        for (name, is_float, slot) in buffers {
            let e = &mut entries[*slot as usize];
            e.local = false;
            e.is_float = *is_float;
            if let Some(b) = func.buffers.iter().find(|b| &*b.name == name.as_str()) {
                e.len = const_shape_product(&b.shape);
            }
        }
        collect_allocs(tree, &mut entries);
        MemoryPlan { entries }
    }

    /// Total statically planned bytes (4-byte elements) across all slots
    /// with a known length.
    #[must_use]
    pub fn static_bytes(&self) -> usize {
        self.entries.iter().filter_map(|e| e.len).map(|l| l * 4).sum()
    }

    /// Number of kernel-local scratch slots served from the pool.
    #[must_use]
    pub fn pooled_locals(&self) -> usize {
        self.entries.iter().filter(|e| e.local).count()
    }
}

fn const_shape_product(dims: &[Expr]) -> Option<usize> {
    let mut p: i64 = 1;
    for d in dims {
        match d {
            Expr::Int { value, .. } => p = p.checked_mul(*value)?,
            _ => return None,
        }
    }
    usize::try_from(p).ok()
}

fn collect_allocs(s: &CStmt, entries: &mut [PlanEntry]) {
    match s {
        CStmt::Alloc { buf, is_float, len_dims, body } => {
            let e = &mut entries[*buf as usize];
            e.is_float = *is_float;
            e.local = true;
            let mut p: i64 = 1;
            let mut known = true;
            for d in len_dims {
                match d {
                    IntExpr::Const(c) => p = p.saturating_mul(*c),
                    _ => known = false,
                }
            }
            if known {
                e.len = usize::try_from(p).ok();
            }
            collect_allocs(body, entries);
        }
        CStmt::For { body, .. } | CStmt::ParFor { body, .. } | CStmt::Let { body, .. } => {
            collect_allocs(body, entries);
        }
        CStmt::Block(b) => {
            if let Some(init) = &b.init {
                collect_allocs(init, entries);
            }
            collect_allocs(&b.body, entries);
        }
        CStmt::Seq(v) => {
            for s in v {
                collect_allocs(s, entries);
            }
        }
        CStmt::If { then_, else_, .. } => {
            collect_allocs(then_, entries);
            if let Some(e) = else_ {
                collect_allocs(e, entries);
            }
        }
        _ => {}
    }
}

/// Number of power-of-two size classes in a [`BufferPool`].
const POOL_CLASSES: usize = 48;

/// Free buffers retained per size class (bounds idle memory).
const POOL_MAX_PER_CLASS: usize = 8;

fn size_class(len: usize) -> usize {
    (len.max(1).next_power_of_two().trailing_zeros() as usize).min(POOL_CLASSES - 1)
}

/// Size-classed pool of scratch buffers keyed by a kernel's
/// [`MemoryPlan`] requirements. `acquire_*` pops a free buffer of the
/// next-power-of-two class (a *hit*) or heap-allocates one (a *miss*) and
/// returns it zeroed either way; `release_*` files storage back by
/// capacity class. Kernels compiled through one [`Runtime`] share its
/// pool, so the serving engine's per-launch scratch (widened outputs,
/// fused-attention intermediates) stops hitting the allocator once warm.
pub struct BufferPool {
    f32_free: Vec<Mutex<Vec<Vec<f32>>>>,
    i32_free: Vec<Mutex<Vec<Vec<i32>>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new()
    }
}

impl BufferPool {
    /// Empty pool.
    #[must_use]
    pub fn new() -> BufferPool {
        BufferPool {
            f32_free: (0..POOL_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            i32_free: (0..POOL_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A zeroed `f32` buffer of exactly `len` elements.
    #[must_use]
    pub fn acquire_f32(&self, len: usize) -> Vec<f32> {
        let c = size_class(len);
        if let Some(mut v) = self.f32_free[c].lock().unwrap().pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.resize(len, 0.0);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
        v.resize(len, 0.0);
        v
    }

    /// A zeroed `i32` buffer of exactly `len` elements.
    #[must_use]
    pub fn acquire_i32(&self, len: usize) -> Vec<i32> {
        let c = size_class(len);
        if let Some(mut v) = self.i32_free[c].lock().unwrap().pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.resize(len, 0);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
        v.resize(len, 0);
        v
    }

    /// Return an `f32` buffer's storage to the pool.
    pub fn release_f32(&self, v: Vec<f32>) {
        let cap = v.capacity();
        if cap == 0 {
            return;
        }
        let c = (cap.ilog2() as usize).min(POOL_CLASSES - 1);
        let mut free = self.f32_free[c].lock().unwrap();
        if free.len() < POOL_MAX_PER_CLASS {
            free.push(v);
        }
    }

    /// Return an `i32` buffer's storage to the pool.
    pub fn release_i32(&self, v: Vec<i32>) {
        let cap = v.capacity();
        if cap == 0 {
            return;
        }
        let c = (cap.ilog2() as usize).min(POOL_CLASSES - 1);
        let mut free = self.i32_free[c].lock().unwrap();
        if free.len() < POOL_MAX_PER_CLASS {
            free.push(v);
        }
    }

    /// `(hits, misses)` counters, cumulative since construction.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// Fusion default for [`CompiledKernel::compile`] and new [`Runtime`]s:
/// on, unless the `SPARSETIR_NO_FUSE` environment variable is set.
#[must_use]
pub fn fusion_default() -> bool {
    std::env::var_os("SPARSETIR_NO_FUSE").is_none()
}

/// Number of stripes in the [`Runtime`] kernel cache. Keys land in a
/// stripe by fingerprint bits, so concurrent compilations of *unrelated*
/// functions (the serving engine's steady state) almost never touch the
/// same lock.
const CACHE_SHARDS: usize = 16;

/// One cache entry: a single-flight cell. The first thread to claim a key
/// inserts the cell under the stripe lock (cheap) and compiles *outside*
/// it; racing threads for the same key block on [`OnceLock::get_or_init`]
/// and receive the one shared kernel, so a compile storm on one hot
/// function costs exactly one compilation. Compile errors are cached too —
/// compilation is deterministic in the printed IR, so a failing function
/// fails identically forever.
type CacheCell = Arc<OnceLock<Result<Arc<CompiledKernel>, ExecError>>>;

/// Cache key: function fingerprint, fusion flag, executor backend.
type CacheKey = (u64, bool, ExecBackend);

/// Compile-once/run-many cache of [`CompiledKernel`]s keyed by function
/// identity (name + printed IR), the fusion flag *and* the executor
/// backend, so toggling either never serves a stale compiled kernel. The
/// map is striped across `CACHE_SHARDS` locks with per-key single-flight
/// compilation (see `CacheCell`); [`Runtime::cached`] and
/// [`Runtime::compilations`] remain exact across shards even when tree
/// and bytecode compilations of one function coexist.
pub struct Runtime {
    shards: Vec<Mutex<HashMap<CacheKey, CacheCell>>>,
    compilations: std::sync::atomic::AtomicUsize,
    fuse: bool,
    backend: ExecBackend,
    /// Shared by every kernel compiled through this runtime.
    pool: Arc<BufferPool>,
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::with_options(fusion_default(), backend_default())
    }
}

impl Runtime {
    /// Empty runtime with the default fusion setting and backend.
    #[must_use]
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// Empty runtime with an explicit fusion setting for
    /// [`Runtime::compile`] and the default executor backend.
    #[must_use]
    pub fn with_fusion(fuse: bool) -> Runtime {
        Runtime::with_options(fuse, backend_default())
    }

    /// Empty runtime with explicit fusion and executor-backend settings
    /// for [`Runtime::compile`].
    #[must_use]
    pub fn with_options(fuse: bool, backend: ExecBackend) -> Runtime {
        Runtime {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            compilations: std::sync::atomic::AtomicUsize::new(0),
            fuse,
            backend,
            pool: Arc::new(BufferPool::new()),
        }
    }

    /// The size-classed scratch pool shared by every kernel this runtime
    /// compiles (hit/miss counters feed `EngineStats`).
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// This runtime's fusion setting.
    #[must_use]
    pub fn fusion(&self) -> bool {
        self.fuse
    }

    /// This runtime's executor backend.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The process-wide shared runtime (what [`exec_func`] uses).
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(Runtime::new)
    }

    /// Fingerprint used as the cache key: name plus printed IR, which the
    /// printer renders canonically (slots, extents, bindings).
    #[must_use]
    pub fn fingerprint(func: &PrimFunc) -> u64 {
        let mut h = DefaultHasher::new();
        func.name.hash(&mut h);
        print_func(func).hash(&mut h);
        h.finish()
    }

    /// Compile `func` under this runtime's fusion and backend settings,
    /// or return the cached kernel compiled earlier for an identical
    /// function.
    ///
    /// # Errors
    /// Propagates [`CompiledKernel::compile`] errors.
    pub fn compile(&self, func: &PrimFunc) -> Result<Arc<CompiledKernel>, ExecError> {
        self.compile_opts(func, self.fuse, self.backend)
    }

    /// Compile `func` with an explicit fusion flag under this runtime's
    /// backend. See [`Runtime::compile_opts`] for the cache-key contract.
    ///
    /// # Errors
    /// Propagates [`CompiledKernel::compile`] errors.
    pub fn compile_with(
        &self,
        func: &PrimFunc,
        fuse: bool,
    ) -> Result<Arc<CompiledKernel>, ExecError> {
        self.compile_opts(func, fuse, self.backend)
    }

    /// Compile `func` with an explicit fusion flag and executor backend.
    /// The cache key is `(fingerprint, fuse, backend)`, so all four
    /// compilations of one function coexist and every recompilation —
    /// including one after toggling either flag — is counted by
    /// [`Runtime::compilations`] instead of serving a stale kernel.
    /// Concurrent callers racing on one key are single-flighted: exactly
    /// one thread compiles, the rest block and share the result.
    ///
    /// # Errors
    /// Propagates [`CompiledKernel::compile`] errors.
    pub fn compile_opts(
        &self,
        func: &PrimFunc,
        fuse: bool,
        backend: ExecBackend,
    ) -> Result<Arc<CompiledKernel>, ExecError> {
        let key = (Self::fingerprint(func), fuse, backend);
        let cell: CacheCell = {
            let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
            Arc::clone(shard.entry(key).or_default())
        };
        // Outside the stripe lock: a slow compilation never blocks lookups
        // of other keys in the same stripe, only co-claimants of this key.
        cell.get_or_init(|| {
            let mut kernel = CompiledKernel::compile_opts(func, fuse, backend)?;
            // Kernels compiled through a runtime draw scratch from its
            // shared pool rather than a private one.
            kernel.pool = Arc::clone(&self.pool);
            self.compilations.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(kernel))
        })
        .clone()
    }

    fn shard_of(&self, key: CacheKey) -> usize {
        // The fingerprint is already a hash; fold the fusion and backend
        // flags into the low (shard-selecting) bits so the compilations
        // of one function can land apart.
        let backend_bit = match key.2 {
            ExecBackend::Tree => 0u64,
            ExecBackend::Bytecode => 2u64,
        };
        ((key.0 ^ u64::from(key.1) ^ backend_bit) % CACHE_SHARDS as u64) as usize
    }

    /// Number of cached kernels (successful compilations present in the
    /// cache; in-flight and failed entries are not counted). Exact across
    /// shards.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().values().filter(|c| matches!(c.get(), Some(Ok(_)))).count())
            .sum()
    }

    /// Monotonic count of actual compilations performed (cache misses).
    /// Unlike [`Runtime::cached`] this never decreases, so it cleanly
    /// asserts "no new compilation happened" across an operation.
    #[must_use]
    pub fn compilations(&self) -> usize {
        self.compilations.load(Ordering::Relaxed)
    }
}

/// Drop-in replacement for [`crate::eval::eval_func`] backed by the global
/// kernel cache: compiles on first sight of a function, then reuses the
/// slot-compiled program for every subsequent call.
///
/// # Errors
/// Returns [`ExecError`] under the interpreter's error conditions.
pub fn exec_func(
    func: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &mut HashMap<String, TensorData>,
) -> Result<(), ExecError> {
    Runtime::global().compile(func)?.run(scalars, tensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, Scope};
    use crate::dtype::DType;
    use crate::eval::{eval_func, scalar_map};
    use crate::expr::Expr;
    use crate::stmt::{Block, IterVar, ThreadAxis};

    fn run_both(
        f: &PrimFunc,
        scalars: &HashMap<String, i64>,
        tensors: &HashMap<String, TensorData>,
    ) -> (HashMap<String, TensorData>, HashMap<String, TensorData>) {
        let mut a = tensors.clone();
        let mut b = tensors.clone();
        eval_func(f, scalars, &mut a).expect("interpreter");
        exec_func(f, scalars, &mut b).expect("executor");
        (a, b)
    }

    #[test]
    fn vector_add_matches_interpreter() {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(4)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let body = Stmt::for_serial(
            i.clone(),
            4,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: a.load(vec![Expr::var(&i)]) + b.load(vec![Expr::var(&i)]),
            },
        );
        let f = PrimFunc::new("add", vec![], vec![a, b, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0f32, 2.0, 3.0, 4.0]));
        tensors.insert("B".to_string(), TensorData::from(vec![10.0f32, 20.0, 30.0, 40.0]));
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 4));
        let (ia, ea) = run_both(&f, &HashMap::new(), &tensors);
        assert_eq!(ia["C"], ea["C"]);
        assert_eq!(ea["C"].as_f32(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn reduction_block_matches_interpreter() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let a = Buffer::global_f32("A", vec![Expr::i32(2), Expr::i32(3)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(2)]);
        let vi = Var::i32("vi");
        let vj = Var::i32("vj");
        let block = Stmt::Block(Block {
            name: "sum".into(),
            iter_vars: vec![
                IterVar::spatial(vi.clone(), Expr::var(&i)),
                IterVar::reduce(vj.clone(), Expr::var(&j)),
            ],
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vi)],
                value: Expr::f32(0.0),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vi)],
                value: c.load(vec![Expr::var(&vi)]) + a.load(vec![Expr::var(&vi), Expr::var(&vj)]),
            }),
        });
        let body = Stmt::for_serial(i.clone(), 2, Stmt::for_serial(j.clone(), 3, block));
        let f = PrimFunc::new("rowsum", vec![], vec![a, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tensors.insert("C".to_string(), TensorData::from(vec![99.0f32, 99.0]));
        let (ia, ea) = run_both(&f, &HashMap::new(), &tensors);
        assert_eq!(ia["C"], ea["C"]);
        assert_eq!(ea["C"].as_f32(), &[6.0, 15.0]);
    }

    #[test]
    fn block_bound_loop_parallelizes_and_matches() {
        // C[i] = i over a blockIdx.x-bound loop: parallel-dispatch path.
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::i32(1024)]);
        let body = Stmt::For {
            var: i.clone(),
            extent: Expr::i32(1024),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: Expr::var(&i).cast(DType::F32),
            }),
        };
        let f = PrimFunc::new("iota", vec![], vec![c], body);
        let k = CompiledKernel::compile(&f).unwrap();
        assert!(k.is_parallel(), "outermost blockIdx loop should parallelize");
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 1024));
        k.run(&HashMap::new(), &mut tensors).unwrap();
        let expect: Vec<f32> = (0..1024).map(|x| x as f32).collect();
        assert_eq!(tensors["C"].as_f32(), expect.as_slice());
    }

    #[test]
    fn unsafe_block_write_falls_back_to_serial() {
        // C[0] += 1 under a blockIdx loop: collides, must stay serial.
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::i32(1)]);
        let body = Stmt::For {
            var: i.clone(),
            extent: Expr::i32(64),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: c.load(vec![Expr::i32(0)]) + 1.0f32,
            }),
        };
        let f = PrimFunc::new("collide", vec![], vec![c], body);
        let k = CompiledKernel::compile(&f).unwrap();
        assert!(!k.is_parallel(), "colliding writes must not parallelize");
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 1));
        k.run(&HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[64.0]);
    }

    #[test]
    fn reduction_over_block_var_falls_back_to_serial() {
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::i32(1)]);
        let vj = Var::i32("vj");
        let block = Stmt::Block(Block {
            name: "s".into(),
            iter_vars: vec![IterVar::reduce(vj.clone(), Expr::var(&i))],
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: Expr::f32(0.0),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::i32(0)],
                value: c.load(vec![Expr::i32(0)]) + Expr::var(&vj).cast(DType::F32),
            }),
        });
        let body = Stmt::For {
            var: i.clone(),
            extent: Expr::i32(8),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(block),
        };
        let f = PrimFunc::new("redblk", vec![], vec![c], body);
        let k = CompiledKernel::compile(&f).unwrap();
        assert!(!k.is_parallel());
        let mut t = HashMap::new();
        t.insert("C".to_string(), TensorData::zeros(DType::F32, 1));
        let mut t2 = t.clone();
        k.run(&HashMap::new(), &mut t).unwrap();
        eval_func(&f, &HashMap::new(), &mut t2).unwrap();
        assert_eq!(t["C"], t2["C"]);
    }

    #[test]
    fn scalar_params_and_scoped_allocate_match() {
        let n = Var::i32("n");
        let i = Var::i32("i");
        let tmp = Buffer::new("tmp", DType::F32, vec![Expr::i32(2)], Scope::Shared);
        let out = Buffer::global_f32("out", vec![Expr::var(&n)]);
        let inner = Stmt::Allocate {
            buffer: tmp.clone(),
            body: Box::new(
                Stmt::BufferStore {
                    buffer: tmp.clone(),
                    indices: vec![Expr::i32(0)],
                    value: Expr::var(&i).cast(DType::F32) * 3.0f32,
                }
                .then(Stmt::BufferStore {
                    buffer: out.clone(),
                    indices: vec![Expr::var(&i)],
                    value: tmp.load(vec![Expr::i32(0)]) + 1.0f32,
                }),
            ),
        };
        let body = Stmt::for_serial(i.clone(), Expr::var(&n), inner);
        let f = PrimFunc::new("staged", vec![n], vec![out], body);
        let scalars = scalar_map(&[("n", 5)]);
        let mut tensors = HashMap::new();
        tensors.insert("out".to_string(), TensorData::zeros(DType::F32, 5));
        let (ia, ea) = run_both(&f, &scalars, &tensors);
        assert_eq!(ia["out"], ea["out"]);
        assert_eq!(ea["out"].as_f32(), &[1.0, 4.0, 7.0, 10.0, 13.0]);
    }

    #[test]
    fn binary_search_matches_interpreter() {
        let idx = Buffer::global_i32("indices", vec![Expr::i32(5)]);
        let out = Buffer::global_i32("out", vec![Expr::i32(1)]);
        let call = Expr::Call {
            intrin: Intrinsic::BinarySearch,
            args: vec![idx.load(vec![Expr::i32(0)]), Expr::i32(0), Expr::i32(5), Expr::i32(9)],
        };
        let body =
            Stmt::BufferStore { buffer: out.clone(), indices: vec![Expr::i32(0)], value: call };
        let f = PrimFunc::new("find", vec![], vec![idx, out], body);
        let mut tensors = HashMap::new();
        tensors.insert("indices".to_string(), TensorData::from(vec![1, 3, 9, 10, 12]));
        tensors.insert("out".to_string(), TensorData::zeros(DType::I32, 1));
        let (ia, ea) = run_both(&f, &HashMap::new(), &tensors);
        assert_eq!(ia["out"], ea["out"]);
        assert_eq!(ea["out"].as_i32(), &[2]);
    }

    #[test]
    fn mma_sync_matches_interpreter() {
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(4)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let tile = |buf: &Buffer, stride: i64| TensorTile {
            buffer: buf.clone(),
            offset: Expr::i32(0),
            row_stride: Expr::i32(stride),
        };
        let body =
            Stmt::MmaSync { c: tile(&c, 2), a: tile(&a, 2), b: tile(&b, 2), m: 2, n: 2, k: 2 };
        let f = PrimFunc::new("mma", vec![], vec![a, b, c], body);
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0f32, 2.0, 3.0, 4.0]));
        tensors.insert("B".to_string(), TensorData::from(vec![5.0f32, 6.0, 7.0, 8.0]));
        tensors.insert("C".to_string(), TensorData::from(vec![1.0f32, 0.0, 0.0, 0.0]));
        let (ia, ea) = run_both(&f, &HashMap::new(), &tensors);
        assert_eq!(ia["C"], ea["C"]);
        assert_eq!(ea["C"].as_f32(), &[20.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn out_of_bounds_and_missing_bindings_error() {
        let c = Buffer::global_f32("C", vec![Expr::i32(2)]);
        let body = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![Expr::i32(5)],
            value: Expr::f32(0.0),
        };
        let f = PrimFunc::new("f", vec![], vec![c.clone()], body);
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 2));
        let err = exec_func(&f, &HashMap::new(), &mut tensors).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");

        let g = PrimFunc::new("g", vec![], vec![c], Stmt::nop());
        let err = exec_func(&g, &HashMap::new(), &mut HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("missing tensor binding"), "{err}");
    }

    #[test]
    fn division_by_zero_errors() {
        let out = Buffer::global_i32("out", vec![Expr::i32(1)]);
        let body = Stmt::BufferStore {
            buffer: out.clone(),
            indices: vec![Expr::i32(0)],
            value: Expr::i32(4) / Expr::i32(1).min(0),
        };
        let f = PrimFunc::new("div0", vec![], vec![out], body);
        let mut tensors = HashMap::new();
        tensors.insert("out".to_string(), TensorData::zeros(DType::I32, 1));
        let err = exec_func(&f, &HashMap::new(), &mut tensors).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    /// Functions differing only in an MMA tile's `row_stride` must not
    /// collide in the kernel cache (regression: the printer once omitted
    /// strides from the rendered IR the fingerprint hashes).
    #[test]
    fn mma_stride_changes_fingerprint() {
        let build = |stride: i64| {
            let a = Buffer::global_f32("A", vec![Expr::i32(64)]);
            let b = Buffer::global_f32("B", vec![Expr::i32(64)]);
            let c = Buffer::global_f32("C", vec![Expr::i32(64)]);
            let tile = |buf: &Buffer| TensorTile {
                buffer: buf.clone(),
                offset: Expr::i32(0),
                row_stride: Expr::i32(stride),
            };
            let body = Stmt::MmaSync { c: tile(&c), a: tile(&a), b: tile(&b), m: 2, n: 2, k: 2 };
            PrimFunc::new("mma", vec![], vec![a, b, c], body)
        };
        assert_ne!(Runtime::fingerprint(&build(2)), Runtime::fingerprint(&build(4)));
    }

    /// A float-valued `let` in dead code must not fail compilation — the
    /// interpreter only errors when the binding executes.
    #[test]
    fn float_let_in_dead_branch_is_lazy() {
        let out = Buffer::global_f32("out", vec![Expr::i32(1)]);
        let t = Var::i32("t");
        let bad_let = Stmt::Let { var: t, value: Expr::f32(1.5), body: Box::new(Stmt::nop()) };
        let body = Stmt::IfThenElse {
            cond: Expr::i32(0).gt(Expr::i32(1)),
            then_branch: Box::new(bad_let),
            else_branch: Some(Box::new(Stmt::BufferStore {
                buffer: out.clone(),
                indices: vec![Expr::i32(0)],
                value: Expr::f32(2.0),
            })),
        };
        let f = PrimFunc::new("lazy", vec![], vec![out], body);
        let mut tensors = HashMap::new();
        tensors.insert("out".to_string(), TensorData::zeros(DType::F32, 1));
        exec_func(&f, &HashMap::new(), &mut tensors).expect("dead float let must not block");
        assert_eq!(tensors["out"].as_f32(), &[2.0]);
    }

    #[test]
    fn runtime_cache_hits_on_identical_functions() {
        let rt = Runtime::new();
        let build = || {
            let i = Var::i32("i");
            let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
            let body = Stmt::for_serial(
                i.clone(),
                4,
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![Expr::var(&i)],
                    value: Expr::f32(1.0),
                },
            );
            PrimFunc::new("ones", vec![], vec![c], body)
        };
        let k1 = rt.compile(&build()).unwrap();
        let k2 = rt.compile(&build()).unwrap();
        assert!(Arc::ptr_eq(&k1, &k2), "identical functions must share one kernel");
        assert_eq!(rt.cached(), 1);

        // A different function compiles separately.
        let j = Var::i32("j");
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let other = PrimFunc::new(
            "twos",
            vec![],
            vec![c.clone()],
            Stmt::for_serial(
                j.clone(),
                4,
                Stmt::BufferStore {
                    buffer: c,
                    indices: vec![Expr::var(&j)],
                    value: Expr::f32(2.0),
                },
            ),
        );
        let k3 = rt.compile(&other).unwrap();
        assert!(!Arc::ptr_eq(&k1, &k3));
        assert_eq!(rt.cached(), 2);
    }

    /// Build the canonical fusable lane loop:
    /// `for k in 0..n { block { init: C[k] = 0 if j == 0; C[k] += A[0] * B[k] } }`
    /// wrapped in a serial `j` loop supplying the reduce binding.
    fn axpy_func(n: i64) -> PrimFunc {
        let j = Var::i32("j");
        let k = Var::i32("k");
        let vk = Var::i32("vk");
        let vp = Var::i32("vp");
        let a = Buffer::global_f32("A", vec![Expr::i32(1)]);
        let b = Buffer::global_f32("B", vec![Expr::i32(n)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(n)]);
        let block = Stmt::Block(Block {
            name: "acc".into(),
            iter_vars: vec![
                IterVar::spatial(vk.clone(), Expr::var(&k)),
                IterVar::reduce(vp.clone(), Expr::var(&j)),
            ],
            reads: vec![],
            writes: vec![],
            init: Some(Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vk)],
                value: Expr::f32(0.0),
            })),
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&vk)],
                value: c.load(vec![Expr::var(&vk)])
                    + a.load(vec![Expr::i32(0)]) * b.load(vec![Expr::var(&vk)]),
            }),
        });
        let body = Stmt::for_serial(j.clone(), 3, Stmt::for_serial(k.clone(), n, block));
        PrimFunc::new("axpy", vec![], vec![a, b, c], body)
    }

    #[test]
    fn fusion_produces_axpy_and_matches_generic() {
        let f = axpy_func(8);
        let fused = CompiledKernel::compile_with(&f, true).unwrap();
        let generic = CompiledKernel::compile_with(&f, false).unwrap();
        assert_eq!(fused.fused_ops(), 1);
        assert_eq!(fused.fused_kinds(), vec!["AxpyLanes"]);
        assert_eq!(generic.fused_ops(), 0);
        let mut t = HashMap::new();
        t.insert("A".to_string(), TensorData::from(vec![1.5f32]));
        t.insert("B".to_string(), TensorData::from((0..8).map(|x| x as f32).collect::<Vec<_>>()));
        t.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        let mut tf = t.clone();
        let mut tg = t.clone();
        fused.run(&HashMap::new(), &mut tf).unwrap();
        generic.run(&HashMap::new(), &mut tg).unwrap();
        assert_eq!(tf["C"], tg["C"]);
        // Three reduce iterations of 1.5 * B[k].
        let expect: Vec<f32> = (0..8).map(|x| 4.5 * x as f32).collect();
        assert_eq!(tf["C"].as_f32(), expect.as_slice());
    }

    /// Toggling fusion must recompile (counted) and never serve the other
    /// flag's kernel from the cache — the cache key includes the flag.
    #[test]
    fn fusion_flag_is_part_of_the_cache_key() {
        let rt = Runtime::with_fusion(true);
        let f = axpy_func(8);
        let generic = rt.compile_with(&f, false).unwrap();
        assert_eq!(rt.compilations(), 1);
        let fused = rt.compile_with(&f, true).unwrap();
        assert_eq!(rt.compilations(), 2, "fused recompilation must be counted");
        assert!(!Arc::ptr_eq(&generic, &fused));
        assert_eq!(generic.fused_ops(), 0);
        assert_eq!(fused.fused_ops(), 1);
        // Both flags now hit their own cache entries.
        assert!(Arc::ptr_eq(&generic, &rt.compile_with(&f, false).unwrap()));
        assert!(Arc::ptr_eq(&fused, &rt.compile_with(&f, true).unwrap()));
        assert!(Arc::ptr_eq(&fused, &rt.compile(&f).unwrap()), "runtime default is fused");
        assert_eq!(rt.compilations(), 2);
        assert_eq!(rt.cached(), 2);
    }

    /// A lane loop whose source walks a non-unit stride must stay on the
    /// generic tree (contiguity requirement) yet still execute correctly.
    #[test]
    fn non_contiguous_source_is_not_fused() {
        let k = Var::i32("k");
        let b = Buffer::global_f32("B", vec![Expr::i32(16)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
        let body = Stmt::for_serial(
            k.clone(),
            8,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&k)],
                value: c.load(vec![Expr::var(&k)]) + b.load(vec![Expr::var(&k) * 2]) * 2.0f32,
            },
        );
        let f = PrimFunc::new("strided", vec![], vec![b, c], body);
        let fused = CompiledKernel::compile_with(&f, true).unwrap();
        assert_eq!(fused.fused_ops(), 0, "stride-2 source must not fuse");
        let mut t = HashMap::new();
        t.insert("B".to_string(), TensorData::from((0..16).map(|x| x as f32).collect::<Vec<_>>()));
        t.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        let mut t2 = t.clone();
        fused.run(&HashMap::new(), &mut t).unwrap();
        eval_func(&f, &HashMap::new(), &mut t2).unwrap();
        assert_eq!(t["C"], t2["C"]);
    }

    /// Reading the written buffer anywhere in the loop (here: the scale
    /// factor) defeats invariance hoisting, so fusion must decline.
    #[test]
    fn aliased_coefficient_is_not_fused() {
        let k = Var::i32("k");
        let b = Buffer::global_f32("B", vec![Expr::i32(8)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
        let body = Stmt::for_serial(
            k.clone(),
            8,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&k)],
                value: c.load(vec![Expr::var(&k)])
                    + c.load(vec![Expr::i32(0)]) * b.load(vec![Expr::var(&k)]),
            },
        );
        let f = PrimFunc::new("alias", vec![], vec![b, c], body);
        let fused = CompiledKernel::compile_with(&f, true).unwrap();
        assert_eq!(fused.fused_ops(), 0, "coefficient loads the written buffer");
        let mut t = HashMap::new();
        t.insert("B".to_string(), TensorData::from(vec![1.0f32; 8]));
        t.insert("C".to_string(), TensorData::from(vec![2.0f32; 8]));
        let mut t2 = t.clone();
        fused.run(&HashMap::new(), &mut t).unwrap();
        eval_func(&f, &HashMap::new(), &mut t2).unwrap();
        assert_eq!(t["C"], t2["C"]);
    }

    /// Out-of-bounds lanes must fall back to the generic loop and report
    /// the interpreter's exact error.
    #[test]
    fn fused_bounds_violation_falls_back_with_identical_error() {
        let k = Var::i32("k");
        let n = Var::i32("n");
        let b = Buffer::global_f32("B", vec![Expr::i32(8)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
        // Extent is a scalar param: the kernel fuses (extent is dynamic),
        // and binding n = 12 overruns both buffers at run time.
        let body = Stmt::For {
            var: k.clone(),
            extent: Expr::var(&n),
            kind: ForKind::Serial,
            body: Box::new(Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&k)],
                value: c.load(vec![Expr::var(&k)]) + Expr::f32(2.0) * b.load(vec![Expr::var(&k)]),
            }),
        };
        let f = PrimFunc::new("oob", vec![n], vec![b, c], body);
        let fused = CompiledKernel::compile_with(&f, true).unwrap();
        assert_eq!(fused.fused_ops(), 1);
        let mut tensors = HashMap::new();
        tensors.insert("B".to_string(), TensorData::from(vec![1.0f32; 8]));
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        let scalars = scalar_map(&[("n", 12)]);
        let mut t2 = tensors.clone();
        let fast = fused.run(&scalars, &mut tensors).unwrap_err();
        let generic = CompiledKernel::compile_with(&f, false).unwrap();
        let slow = generic.run(&scalars, &mut t2).unwrap_err();
        assert_eq!(fast, slow, "fallback must reproduce the generic error exactly");
        let mut t3 = t2.clone();
        let interp = eval_func(&f, &scalars, &mut t3).unwrap_err();
        assert!(interp
            .to_string()
            .ends_with("index 8 out of bounds for dim of extent 8 in buffer `C`"));
        // The in-bounds prefix written by the generic fallback matches.
        assert_eq!(tensors["C"], t2["C"]);
    }

    #[test]
    fn frames_are_reused_across_runs() {
        let i = Var::i32("i");
        let c = Buffer::global_f32("C", vec![Expr::i32(8)]);
        let body = Stmt::for_serial(
            i.clone(),
            8,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: Expr::var(&i).cast(DType::F32),
            },
        );
        let f = PrimFunc::new("iota8", vec![], vec![c], body);
        let k = CompiledKernel::compile(&f).unwrap();
        let mut tensors = HashMap::new();
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        for _ in 0..3 {
            k.run(&HashMap::new(), &mut tensors).unwrap();
        }
        assert_eq!(k.frame_pool.lock().unwrap().len(), 1, "scratch frame is pooled");
    }

    /// Tree and bytecode compilations of one function must coexist in one
    /// cache — switching backends recompiles (counted), never serves the
    /// other backend's kernel, and `cached()`/`compilations()` stay exact
    /// across all four (fuse × backend) entries.
    #[test]
    fn backend_is_part_of_the_cache_key() {
        let rt = Runtime::with_options(true, ExecBackend::Bytecode);
        let f = axpy_func(8);
        let code = rt.compile(&f).unwrap();
        assert_eq!(code.backend(), ExecBackend::Bytecode);
        assert_eq!(rt.compilations(), 1);
        let tree = rt.compile_opts(&f, true, ExecBackend::Tree).unwrap();
        assert_eq!(rt.compilations(), 2, "backend switch must recompile, not serve stale");
        assert!(!Arc::ptr_eq(&code, &tree));
        assert_eq!(tree.backend(), ExecBackend::Tree);
        // Both backends fuse the same loop.
        assert_eq!(code.fused_kinds(), vec!["AxpyLanes"]);
        assert_eq!(tree.fused_kinds(), vec!["AxpyLanes"]);
        // All four (fuse × backend) combinations occupy distinct entries.
        let _ = rt.compile_opts(&f, false, ExecBackend::Tree).unwrap();
        let _ = rt.compile_opts(&f, false, ExecBackend::Bytecode).unwrap();
        assert_eq!(rt.compilations(), 4);
        assert_eq!(rt.cached(), 4);
        // Every key now hits its own cached Arc.
        assert!(Arc::ptr_eq(&code, &rt.compile(&f).unwrap()));
        assert!(Arc::ptr_eq(&tree, &rt.compile_opts(&f, true, ExecBackend::Tree).unwrap()));
        assert_eq!(rt.compilations(), 4);
        // Both backends produce identical results.
        let mut t = HashMap::new();
        t.insert("A".to_string(), TensorData::from(vec![1.5f32]));
        t.insert("B".to_string(), TensorData::from((0..8).map(|x| x as f32).collect::<Vec<_>>()));
        t.insert("C".to_string(), TensorData::zeros(DType::F32, 8));
        let mut tc = t.clone();
        let mut tt = t.clone();
        code.run(&HashMap::new(), &mut tc).unwrap();
        tree.run(&HashMap::new(), &mut tt).unwrap();
        assert_eq!(tc["C"], tt["C"]);
    }

    /// The `SPARSETIR_TREE_EXEC` kill switch flips `backend_default()`,
    /// which feeds freshly constructed runtimes — a flipped runtime must
    /// recompile rather than reuse the other backend's kernel (the env
    /// var is read eagerly at construction, so no other test races us).
    #[test]
    fn tree_exec_kill_switch_selects_tree_backend() {
        assert_eq!(backend_default(), ExecBackend::Bytecode, "bytecode is the default");
        let f = axpy_func(8);
        let rt = Runtime::with_options(true, ExecBackend::Tree);
        assert_eq!(rt.backend(), ExecBackend::Tree);
        let k = rt.compile(&f).unwrap();
        assert_eq!(k.backend(), ExecBackend::Tree);
        assert_eq!(rt.compilations(), 1);
        // Flipping the backend (what a fresh runtime under the kill
        // switch would do) recompiles into a distinct cache entry.
        let k2 = rt.compile_opts(&f, true, ExecBackend::Bytecode).unwrap();
        assert!(!Arc::ptr_eq(&k, &k2));
        assert_eq!(rt.compilations(), 2);
        assert_eq!(rt.cached(), 2);
    }

    /// Disassembly is backend-independent: a tree-backed kernel lowers on
    /// demand and renders the same listing as the bytecode compilation.
    #[test]
    fn disassembly_is_identical_across_backends() {
        let f = axpy_func(8);
        for fuse in [false, true] {
            let tree = CompiledKernel::compile_opts(&f, fuse, ExecBackend::Tree).unwrap();
            let code = CompiledKernel::compile_opts(&f, fuse, ExecBackend::Bytecode).unwrap();
            assert_eq!(tree.disassemble(), code.disassemble());
        }
        let fused = CompiledKernel::compile_opts(&f, true, ExecBackend::Bytecode).unwrap();
        let listing = fused.disassemble();
        assert!(
            listing.contains("super.axpy"),
            "fused listing has the superinstruction:\n{listing}"
        );
        assert!(listing.contains(";; kernel `axpy` fuse=on"));
    }
}
