//! Dense-lane microkernel fusion over the compiled instruction tree.
//!
//! The slot-compiled executor ([`super`]) still dispatches one typed
//! instruction per scalar in innermost loops: a 32-wide feature-dimension
//! loop of CSR SpMM pays dozens of enum dispatches, two index
//! flattenings and several bounds checks *per lane*. SparseTIR's
//! generated CUDA avoids exactly this overhead by emitting tight dense
//! inner loops over the feature dimension once the sparse iteration has
//! been lowered away (§3.3); this pass is the executor-side analogue.
//!
//! [`fuse_stmt`] walks the compiled tree and replaces each innermost
//! `For` whose body is a single `f32` store (optionally wrapped in a
//! reduction block) with a [`FusedLanes`] node when compile-time analysis
//! proves:
//!
//! * every block-iter binding is **affine** in the lane variable
//!   (`base + stride·lane`) with a compile-time-constant stride;
//! * the store target walks a **contiguous** flat axis (lane stride 1),
//!   or is lane-invariant for scalar reductions;
//! * the value expression is one of the four recognized microkernel
//!   shapes ([`Micro`]): `FillLanes`, `AxpyLanes`, `DotLanes`,
//!   `GatherScaleAccumulate`; and
//! * nothing re-evaluated inside the loop **reads the written buffer** —
//!   a slot-level aliasing analysis mirroring the name-level taint check
//!   that gates `blockIdx` parallelization in the parent module.
//!
//! Anything non-contiguous, non-affine, predicated (an `if` in the lane
//! body), or alias-hazardous is left on the generic tree. Each fused node
//! also *retains* its generic loop: at run time the microkernel validates
//! every lane's bounds up front and falls back to the generic tree on any
//! violation or evaluation error, so error messages and error ordering
//! stay interpreter-identical.
//!
//! Arithmetic is replicated bit-for-bit: lanes load `f32`, widen to
//! `f64`, combine in the source expression's exact association and
//! operand order, and store back through an `f32` cast per element —
//! including the per-iteration `f32` round-trip of memory-accumulating
//! reductions. Element accesses go through the same relaxed-atomic
//! helpers as the generic tree, so contract-violating IR still cannot
//! cause undefined behavior: the fused loops win by eliminating
//! dispatch and per-lane index programs, not by weakening the memory
//! model.

use super::{
    elem_load_f32, elem_store_f32, CStmt, ColSeg, ExecError, FloatExpr, FloatOp, Frame, IndexExpr,
    IntExpr, IntOp, RawBuf,
};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Compile-time stride / invariance / aliasing analysis
// ---------------------------------------------------------------------------

/// Lane-stride environment: scalar slot → linear coefficient of the lane
/// variable in that slot's value. The lane slot itself maps to 1; block
/// iters derived from it map to their computed stride; absent slots are
/// lane-invariant.
type StrideEnv = HashMap<u32, i64>;

/// Linear coefficient of the lane variable in `e`, or `None` when `e` is
/// not affine in it (the lane appears under division, selection, a load
/// index of non-affine shape, …).
fn int_stride(e: &IntExpr, env: &StrideEnv) -> Option<i64> {
    match e {
        IntExpr::Const(_) => Some(0),
        IntExpr::Slot(s) => Some(env.get(s).copied().unwrap_or(0)),
        IntExpr::Bin { op, lhs, rhs } => {
            let ls = int_stride(lhs, env)?;
            let rs = int_stride(rhs, env)?;
            match op {
                IntOp::Add => ls.checked_add(rs),
                IntOp::Sub => ls.checked_sub(rs),
                IntOp::Mul => {
                    if ls == 0 && rs == 0 {
                        Some(0)
                    } else if rs == 0 {
                        if let IntExpr::Const(c) = **rhs {
                            ls.checked_mul(c)
                        } else {
                            None
                        }
                    } else if ls == 0 {
                        if let IntExpr::Const(c) = **lhs {
                            rs.checked_mul(c)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                IntOp::Div | IntOp::Rem | IntOp::Min | IntOp::Max => {
                    if ls == 0 && rs == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
            }
        }
        IntExpr::Select { cond, then_, else_ } => {
            if bool_invariant(cond, env)
                && int_stride(then_, env)? == 0
                && int_stride(else_, env)? == 0
            {
                Some(0)
            } else {
                None
            }
        }
        IntExpr::CastViaF64(f) => float_invariant(f, env).then_some(0),
        IntExpr::BoolToInt(b) => bool_invariant(b, env).then_some(0),
        IntExpr::Load { index, .. } => index_invariant(index, env).then_some(0),
        IntExpr::BinarySearch { lo, hi, x, .. } => {
            (int_stride(lo, env)? == 0 && int_stride(hi, env)? == 0 && int_stride(x, env)? == 0)
                .then_some(0)
        }
    }
}

/// True when `e` provably evaluates to the same value at every lane.
fn float_invariant(e: &FloatExpr, env: &StrideEnv) -> bool {
    match e {
        FloatExpr::Const(_) => true,
        FloatExpr::Bin { lhs, rhs, .. } => float_invariant(lhs, env) && float_invariant(rhs, env),
        FloatExpr::Select { cond, then_, else_ } => {
            bool_invariant(cond, env) && float_invariant(then_, env) && float_invariant(else_, env)
        }
        FloatExpr::FromInt(i) => int_stride(i, env) == Some(0),
        FloatExpr::Load { index, .. } => index_invariant(index, env),
        FloatExpr::Exp(v) | FloatExpr::Sqrt(v) | FloatExpr::Relu(v) => float_invariant(v, env),
    }
}

/// True when `e` provably evaluates to the same value at every lane.
fn bool_invariant(e: &super::BoolExpr, env: &StrideEnv) -> bool {
    use super::BoolExpr;
    match e {
        BoolExpr::CmpI { lhs, rhs, .. } => {
            int_stride(lhs, env) == Some(0) && int_stride(rhs, env) == Some(0)
        }
        BoolExpr::CmpF { lhs, rhs, .. } => float_invariant(lhs, env) && float_invariant(rhs, env),
        BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
            bool_invariant(l, env) && bool_invariant(r, env)
        }
        BoolExpr::IntNonZero(i) => int_stride(i, env) == Some(0),
        BoolExpr::FloatNonZero(f) => float_invariant(f, env),
    }
}

fn index_invariant(ix: &IndexExpr, env: &StrideEnv) -> bool {
    ix.dims
        .iter()
        .all(|(idx, ext)| int_stride(idx, env) == Some(0) && int_stride(ext, env) == Some(0))
}

/// Lane stride of the flattened index: every extent and every dimension
/// except the innermost must be lane-invariant; the innermost dimension's
/// index must be affine in the lane. Because flattening is
/// `flat = prefix·d_last + i_last` and the fused runtime keeps `i_last`
/// inside `[0, d_last)` for every lane, the flat index advances by exactly
/// this stride per lane (no carry into outer dimensions).
fn index_lane_stride(ix: &IndexExpr, env: &StrideEnv) -> Option<i64> {
    let (last, front) = ix.dims.split_last()?;
    for (idx, ext) in front {
        if int_stride(idx, env)? != 0 || int_stride(ext, env)? != 0 {
            return None;
        }
    }
    if int_stride(&last.1, env)? != 0 {
        return None;
    }
    int_stride(&last.0, env)
}

/// Does `e` load (directly or transitively) from buffer slot `buf`?
/// Anything re-evaluated per lane that reads the fused store's target
/// buffer defeats invariance hoisting, so such loops are never fused.
fn int_loads(e: &IntExpr, buf: u32) -> bool {
    match e {
        IntExpr::Const(_) | IntExpr::Slot(_) => false,
        IntExpr::Bin { lhs, rhs, .. } => int_loads(lhs, buf) || int_loads(rhs, buf),
        IntExpr::Select { cond, then_, else_ } => {
            bool_loads(cond, buf) || int_loads(then_, buf) || int_loads(else_, buf)
        }
        IntExpr::CastViaF64(f) => float_loads(f, buf),
        IntExpr::BoolToInt(b) => bool_loads(b, buf),
        IntExpr::Load { buf: b, index } => *b == buf || index_loads(index, buf),
        IntExpr::BinarySearch { buf: b, lo, hi, x, .. } => {
            *b == buf || int_loads(lo, buf) || int_loads(hi, buf) || int_loads(x, buf)
        }
    }
}

fn float_loads(e: &FloatExpr, buf: u32) -> bool {
    match e {
        FloatExpr::Const(_) => false,
        FloatExpr::Bin { lhs, rhs, .. } => float_loads(lhs, buf) || float_loads(rhs, buf),
        FloatExpr::Select { cond, then_, else_ } => {
            bool_loads(cond, buf) || float_loads(then_, buf) || float_loads(else_, buf)
        }
        FloatExpr::FromInt(i) => int_loads(i, buf),
        FloatExpr::Load { buf: b, index } => *b == buf || index_loads(index, buf),
        FloatExpr::Exp(v) | FloatExpr::Sqrt(v) | FloatExpr::Relu(v) => float_loads(v, buf),
    }
}

fn bool_loads(e: &super::BoolExpr, buf: u32) -> bool {
    use super::BoolExpr;
    match e {
        BoolExpr::CmpI { lhs, rhs, .. } => int_loads(lhs, buf) || int_loads(rhs, buf),
        BoolExpr::CmpF { lhs, rhs, .. } => float_loads(lhs, buf) || float_loads(rhs, buf),
        BoolExpr::And(l, r) | BoolExpr::Or(l, r) => bool_loads(l, buf) || bool_loads(r, buf),
        BoolExpr::IntNonZero(i) => int_loads(i, buf),
        BoolExpr::FloatNonZero(f) => float_loads(f, buf),
    }
}

fn index_loads(ix: &IndexExpr, buf: u32) -> bool {
    ix.dims.iter().any(|(idx, ext)| int_loads(idx, buf) || int_loads(ext, buf))
}

// ---------------------------------------------------------------------------
// Fused program representation
// ---------------------------------------------------------------------------

/// A per-lane view of an `f32` buffer: the index program evaluated with
/// the lane variable at 0 yields the base element; consecutive lanes
/// advance the flat index by `stride` (compile-time constant, proven by
/// [`index_lane_stride`]).
#[derive(Debug, Clone)]
pub(super) struct LaneView {
    pub buf: u32,
    pub index: IndexExpr,
    pub stride: i64,
}

/// Association / operand-order shape of a recognized per-lane term.
/// Preserved exactly so `f64` arithmetic (including NaN payload
/// propagation) is bit-identical to the generic tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum TermShape {
    /// `a[l]`
    AOnly,
    /// `coeff * a[l]`
    CoeffA,
    /// `a[l] * coeff`
    ACoeff,
    /// `a[l] * b[l]`
    AB,
    /// `(coeff * a[l]) * b[l]`
    CoeffAB,
    /// `(a[l] * coeff) * b[l]`
    ACoeffB,
    /// `coeff * (a[l] * b[l])`
    CoeffParenAB,
}

/// The per-lane `f64` term `t(l)` added into an accumulator: up to two
/// lane-striding loads plus an optional lane-invariant coefficient,
/// combined in one of [`TermShape`]'s association orders.
#[derive(Debug, Clone)]
pub(super) struct TermSpec {
    pub shape: TermShape,
    pub coeff: Option<FloatExpr>,
    pub a: LaneView,
    pub b: Option<LaneView>,
}

/// When (at which lanes) the block's init statement fires.
#[derive(Debug, Clone)]
pub(super) enum InitKind {
    /// No init statement.
    None,
    /// All-spatial block with an init: fires at every lane.
    Always { value: FloatExpr },
    /// Every reduce binding is lane-invariant: decided once per
    /// invocation (fires at every lane or at none).
    WhenReduceZero { value: FloatExpr },
    /// Some reduce binding strides with the lane: fires at the single
    /// lane where every reduce binding is zero (scalar reductions only).
    AtZeroLane { value: FloatExpr },
}

/// Specialized dense-lane microkernel instructions. Each operates on
/// `f32` element ranges resolved once per invocation, replacing the
/// per-lane instruction-tree dispatch of the generic executor.
#[derive(Debug, Clone)]
pub(super) enum Micro {
    /// `dst[l] = v` for `l ∈ 0..n` — contiguous fill with a
    /// lane-invariant value (format-init loops, `C = 0` epilogues).
    FillLanes { dst: LaneView, value: FloatExpr },
    /// `dst[l] = f32(f64(dst[l]) + t(l))` over contiguous `dst`/`a`
    /// lanes — the SpMM/ELL inner loop `C[i, 0..d] += a_ij · B[j, 0..d]`.
    AxpyLanes { dst: LaneView, term: TermSpec },
    /// `acc = f32(f64(acc) + a[l]·b[l])` into one lane-invariant
    /// element, both operands contiguous — dot-product reductions over
    /// the feature dimension.
    DotLanes { dst: LaneView, term: TermSpec },
    /// [`Micro::DotLanes`] generalized with an invariant scale and/or a
    /// constant-strided (gathered) operand — the SDDMM inner loop
    /// `Bout[e] += (a_e · X[i, 0..d]) · Y[0..d, j]` where `Y`'s column
    /// walk strides by the number of columns.
    GatherScaleAccumulate { dst: LaneView, term: TermSpec },
}

impl Micro {
    /// Instruction name (diagnostics / bench tables).
    pub(super) fn name(&self) -> &'static str {
        match self {
            Micro::FillLanes { .. } => "FillLanes",
            Micro::AxpyLanes { .. } => "AxpyLanes",
            Micro::DotLanes { .. } => "DotLanes",
            Micro::GatherScaleAccumulate { .. } => "GatherScaleAccumulate",
        }
    }
}

/// One block-iter binding of the fused loop, with its proven lane stride.
#[derive(Debug, Clone)]
pub(super) struct FusedIter {
    pub slot: u32,
    pub binding: IntExpr,
    pub is_reduce: bool,
    pub stride: i64,
}

/// The backend-independent payload of a fused lane loop: everything the
/// microkernel fast path needs (lane slot, extent, proven iter strides,
/// init classification, the [`Micro`] op). The tree executor wraps it in
/// a [`FusedLanes`] node carrying the generic fallback subtree; the
/// bytecode executor embeds it in a `Super` instruction whose fallback
/// is the generic loop lowered right after it in the flat stream.
#[derive(Debug, Clone)]
pub(super) struct LaneSpec {
    pub lane_slot: u32,
    pub extent: IntExpr,
    pub iters: Vec<FusedIter>,
    pub init: InitKind,
    pub micro: Micro,
}

/// A fused innermost lane loop: the microkernel fast path plus the
/// original generic loop retained as the bit-exact semantic fallback.
#[derive(Debug)]
pub(super) struct FusedLanes {
    pub spec: LaneSpec,
    /// The original `For` node; executed whenever a runtime precondition
    /// (lane bounds, evaluation errors during setup) fails, reproducing
    /// the generic path's exact behavior and error messages.
    pub generic: Box<CStmt>,
}

// ---------------------------------------------------------------------------
// Pattern detection
// ---------------------------------------------------------------------------

/// Rewrite `s`, fusing every recognizable innermost lane loop. Returns the
/// transformed tree and the number of fused microkernel instructions.
pub(super) fn fuse_stmt(s: CStmt) -> (CStmt, usize) {
    match s {
        CStmt::For { slot, extent, body } => {
            let (body, n) = fuse_stmt(*body);
            let node = CStmt::For { slot, extent, body: Box::new(body) };
            match try_fuse_for(node) {
                Ok(f) => (CStmt::Fused(Box::new(f)), n + 1),
                Err(node) => (node, n),
            }
        }
        CStmt::ParFor { slot, extent, body } => {
            let (body, n) = fuse_stmt(*body);
            (CStmt::ParFor { slot, extent, body: Box::new(body) }, n)
        }
        CStmt::Seq(stmts) => {
            let mut n = 0;
            let out = stmts
                .into_iter()
                .map(|st| {
                    let (st, k) = fuse_stmt(st);
                    n += k;
                    st
                })
                .collect();
            (CStmt::Seq(out), n)
        }
        CStmt::If { cond, then_, else_ } => {
            let (t, mut n) = fuse_stmt(*then_);
            let e = match else_ {
                Some(e) => {
                    let (e, k) = fuse_stmt(*e);
                    n += k;
                    Some(Box::new(e))
                }
                None => None,
            };
            (CStmt::If { cond, then_: Box::new(t), else_: e }, n)
        }
        CStmt::Let { slot, value, body } => {
            let (b, n) = fuse_stmt(*body);
            (CStmt::Let { slot, value, body: Box::new(b) }, n)
        }
        CStmt::Alloc { buf, is_float, len_dims, body } => {
            let (b, n) = fuse_stmt(*body);
            (CStmt::Alloc { buf, is_float, len_dims, body: Box::new(b) }, n)
        }
        CStmt::Block(mut b) => {
            let mut n = 0;
            if let Some(init) = b.init {
                let (i, k) = fuse_stmt(*init);
                n += k;
                b.init = Some(Box::new(i));
            }
            let (body, k) = fuse_stmt(*b.body);
            n += k;
            b.body = Box::new(body);
            (CStmt::Block(b), n)
        }
        leaf => (leaf, 0),
    }
}

/// Collect the names of fused microkernels in `s` (diagnostics).
pub(super) fn collect_micros(s: &CStmt, out: &mut Vec<&'static str>) {
    match s {
        CStmt::Fused(f) => out.push(f.spec.micro.name()),
        CStmt::For { body, .. } | CStmt::ParFor { body, .. } => collect_micros(body, out),
        CStmt::Seq(v) => v.iter().for_each(|st| collect_micros(st, out)),
        CStmt::If { then_, else_, .. } => {
            collect_micros(then_, out);
            if let Some(e) = else_ {
                collect_micros(e, out);
            }
        }
        CStmt::Let { body, .. } | CStmt::Alloc { body, .. } => collect_micros(body, out),
        CStmt::Block(b) => {
            if let Some(init) = &b.init {
                collect_micros(init, out);
            }
            collect_micros(&b.body, out);
        }
        _ => {}
    }
}

fn try_fuse_for(node: CStmt) -> Result<FusedLanes, CStmt> {
    match build_fused(&node) {
        Some(spec) => Ok(FusedLanes { spec, generic: Box::new(node) }),
        None => Err(node),
    }
}

/// See through single-statement `Seq` wrappers (lowering routinely wraps
/// loop and block bodies in singleton sequences).
fn single(mut s: &CStmt) -> &CStmt {
    while let CStmt::Seq(v) = s {
        match v.as_slice() {
            [only] => s = only,
            _ => break,
        }
    }
    s
}

/// Analyze a `For` node; `Some(spec)` when it matches a fusible lane
/// loop. Shared by the tree rewriter ([`fuse_stmt`]) and the bytecode
/// lowering pass, which emits the spec as a `Super` instruction instead
/// of rewriting the tree.
#[allow(clippy::too_many_lines)]
pub(super) fn build_fused(node: &CStmt) -> Option<LaneSpec> {
    let CStmt::For { slot: lane, extent, body } = node else {
        return None;
    };
    // Decompose the loop body into (block iters, all_spatial, init, store).
    let (iters_src, all_spatial, init_src, store): (&[_], bool, Option<&CStmt>, &CStmt) =
        match single(body) {
            CStmt::Block(b) => match single(&b.body) {
                st @ CStmt::StoreF { .. } => {
                    (b.iters.as_slice(), b.all_spatial, b.init.as_deref().map(single), st)
                }
                _ => return None,
            },
            st @ CStmt::StoreF { .. } => (&[], true, None, st),
            _ => return None,
        };
    let CStmt::StoreF { buf: dst_buf, index: dst_index, value } = store else {
        return None;
    };

    // Stride environment: lane → 1, then each block iter in binding order.
    let mut env = StrideEnv::new();
    env.insert(*lane, 1);
    let mut iters = Vec::with_capacity(iters_src.len());
    for (slot, binding, is_reduce) in iters_src {
        let stride = int_stride(binding, &env)?;
        env.insert(*slot, stride);
        iters.push(FusedIter {
            slot: *slot,
            binding: binding.clone(),
            is_reduce: *is_reduce,
            stride,
        });
    }
    let reduce_strided = iters.iter().any(|it| it.is_reduce && it.stride != 0);

    let dst_stride = index_lane_stride(dst_index, &env)?;
    let dst = *dst_buf;

    // Init statement must be a store of an invariant value to the exact
    // same element(s) the body writes.
    let init_value = match init_src {
        None => None,
        Some(CStmt::StoreF { buf, index, value: iv })
            if *buf == dst && index == dst_index && float_invariant(iv, &env) =>
        {
            Some(iv.clone())
        }
        Some(_) => return None,
    };
    let init = match init_value {
        None => InitKind::None,
        Some(value) => {
            if all_spatial {
                InitKind::Always { value }
            } else if reduce_strided {
                InitKind::AtZeroLane { value }
            } else {
                InitKind::WhenReduceZero { value }
            }
        }
    };

    // Aliasing: nothing re-evaluated per lane may read the written buffer.
    let clean = |spec: Option<&TermSpec>| -> bool {
        let mut ok =
            !index_loads(dst_index, dst) && iters.iter().all(|it| !int_loads(&it.binding, dst));
        if let InitKind::Always { value }
        | InitKind::WhenReduceZero { value }
        | InitKind::AtZeroLane { value } = &init
        {
            ok = ok && !float_loads(value, dst);
        }
        if let Some(t) = spec {
            ok = ok
                && t.a.buf != dst
                && !index_loads(&t.a.index, dst)
                && t.b.as_ref().is_none_or(|b| b.buf != dst && !index_loads(&b.index, dst))
                && t.coeff.as_ref().is_none_or(|c| !float_loads(c, dst));
        }
        ok
    };

    // Shape 1: contiguous fill — invariant value, no init, no reduce
    // toggling (the store *is* the only effect).
    if dst_stride == 1 && float_invariant(value, &env) {
        if init_src.is_some() || reduce_strided {
            return None;
        }
        let micro = Micro::FillLanes {
            dst: LaneView { buf: dst, index: dst_index.clone(), stride: 1 },
            value: value.clone(),
        };
        if !clean(None) {
            return None;
        }
        if let Micro::FillLanes { value, .. } = &micro {
            if float_loads(value, dst) {
                return None;
            }
        }
        return Some(LaneSpec { lane_slot: *lane, extent: extent.clone(), iters, init, micro });
    }

    // Accumulating store: value = Load(dst, dst_index) + term.
    let FloatExpr::Bin { op: FloatOp::Add, lhs, rhs } = value else {
        return None;
    };
    let FloatExpr::Load { buf: acc_buf, index: acc_index } = &**lhs else {
        return None;
    };
    if *acc_buf != dst || acc_index != dst_index {
        return None;
    }
    let term = match_term(rhs, &env)?;

    if dst_stride == 1 {
        // AxpyLanes: contiguous destination and operands, init must not
        // toggle mid-loop.
        if reduce_strided || term.a.stride != 1 || term.b.as_ref().is_some_and(|b| b.stride != 1) {
            return None;
        }
        if !clean(Some(&term)) {
            return None;
        }
        let micro = Micro::AxpyLanes {
            dst: LaneView { buf: dst, index: dst_index.clone(), stride: 1 },
            term,
        };
        return Some(LaneSpec { lane_slot: *lane, extent: extent.clone(), iters, init, micro });
    }

    if dst_stride == 0 {
        // Scalar reduction into one element.
        if !clean(Some(&term)) {
            return None;
        }
        let dstv = LaneView { buf: dst, index: dst_index.clone(), stride: 0 };
        let contiguous_dot = term.shape == TermShape::AB
            && term.a.stride == 1
            && term.b.as_ref().is_some_and(|b| b.stride == 1);
        let micro = if contiguous_dot {
            Micro::DotLanes { dst: dstv, term }
        } else {
            Micro::GatherScaleAccumulate { dst: dstv, term }
        };
        return Some(LaneSpec { lane_slot: *lane, extent: extent.clone(), iters, init, micro });
    }

    None
}

enum Class {
    Inv,
    Lane(LaneView),
    Other,
}

fn classify(e: &FloatExpr, env: &StrideEnv) -> Class {
    if float_invariant(e, env) {
        return Class::Inv;
    }
    match lane_load(e, env) {
        Some(v) => Class::Lane(v),
        None => Class::Other,
    }
}

fn lane_load(e: &FloatExpr, env: &StrideEnv) -> Option<LaneView> {
    let FloatExpr::Load { buf, index } = e else {
        return None;
    };
    let stride = index_lane_stride(index, env)?;
    if stride == 0 {
        return None;
    }
    Some(LaneView { buf: *buf, index: index.clone(), stride })
}

fn match_term(e: &FloatExpr, env: &StrideEnv) -> Option<TermSpec> {
    if let Some(a) = lane_load(e, env) {
        return Some(TermSpec { shape: TermShape::AOnly, coeff: None, a, b: None });
    }
    let FloatExpr::Bin { op: FloatOp::Mul, lhs, rhs } = e else {
        return None;
    };
    match (classify(lhs, env), classify(rhs, env)) {
        (Class::Inv, Class::Lane(a)) => {
            Some(TermSpec { shape: TermShape::CoeffA, coeff: Some((**lhs).clone()), a, b: None })
        }
        (Class::Lane(a), Class::Inv) => {
            Some(TermSpec { shape: TermShape::ACoeff, coeff: Some((**rhs).clone()), a, b: None })
        }
        (Class::Lane(a), Class::Lane(b)) => {
            Some(TermSpec { shape: TermShape::AB, coeff: None, a, b: Some(b) })
        }
        (Class::Other, Class::Lane(b)) => {
            // (x * y) * b — recognize (coeff * a) * b and (a * coeff) * b.
            let FloatExpr::Bin { op: FloatOp::Mul, lhs: ll, rhs: lr } = &**lhs else {
                return None;
            };
            match (classify(ll, env), classify(lr, env)) {
                (Class::Inv, Class::Lane(a)) => Some(TermSpec {
                    shape: TermShape::CoeffAB,
                    coeff: Some((**ll).clone()),
                    a,
                    b: Some(b),
                }),
                (Class::Lane(a), Class::Inv) => Some(TermSpec {
                    shape: TermShape::ACoeffB,
                    coeff: Some((**lr).clone()),
                    a,
                    b: Some(b),
                }),
                _ => None,
            }
        }
        (Class::Inv, Class::Other) => {
            // coeff * (a * b)
            let FloatExpr::Bin { op: FloatOp::Mul, lhs: rl, rhs: rr } = &**rhs else {
                return None;
            };
            match (classify(rl, env), classify(rr, env)) {
                (Class::Lane(a), Class::Lane(b)) => Some(TermSpec {
                    shape: TermShape::CoeffParenAB,
                    coeff: Some((**lhs).clone()),
                    a,
                    b: Some(b),
                }),
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Resolved lane range of one buffer: every lane's element has been
/// bounds-checked against both the declared shape and the bound storage.
#[derive(Clone, Copy)]
enum Lanes {
    /// Contiguous (or strided) run inside one allocation.
    Contig { ptr: *mut f32, base: i64, stride: i64 },
    /// Unit-stride run across a column-segmented binding that crosses a
    /// segment boundary: each lane chases its own table entry.
    Cols { table: *const ColSeg, row: usize, col0: usize },
}

impl Lanes {
    /// SAFETY: `l < n` for the `n` this was resolved with; every lane was
    /// bounds-checked by `resolve_lanes`.
    #[inline]
    unsafe fn load(&self, l: i64) -> f32 {
        match *self {
            Lanes::Contig { ptr, base, stride } => elem_load_f32(ptr, (base + stride * l) as usize),
            Lanes::Cols { table, row, col0 } => {
                let e = &*table.add(col0 + l as usize);
                elem_load_f32(e.ptr, row * e.stride as usize)
            }
        }
    }

    /// SAFETY: same contract as [`Lanes::load`]; the view's writability
    /// was checked by `resolve_lanes(.., true)`.
    #[inline]
    unsafe fn store(&self, l: i64, v: f32) {
        match *self {
            Lanes::Contig { ptr, base, stride } => {
                elem_store_f32(ptr, (base + stride * l) as usize, v);
            }
            Lanes::Cols { table, row, col0 } => {
                let e = &*table.add(col0 + l as usize);
                elem_store_f32(e.ptr, row * e.stride as usize, v);
            }
        }
    }
}

/// Resolve `view` for `n` lanes, validating every lane's bounds without
/// raising: `None` means "run the generic loop instead" (which reproduces
/// the exact interpreter error, if any). `for_store` additionally
/// requires the binding to be writable, so stores into read-only
/// segmented views fall back to the generic loop's error path.
fn resolve_lanes(fr: &Frame, view: &LaneView, n: i64, for_store: bool) -> Option<Lanes> {
    let (flat, last_i, last_d) = view.index.eval_with_last(fr).ok()?;
    let span = view.stride.checked_mul(n - 1)?;
    let last_end = last_i.checked_add(span)?;
    if last_end < 0 || last_end >= last_d {
        return None;
    }
    let flat_end = flat.checked_add(span)?;
    match fr.bufs[view.buf as usize] {
        RawBuf::F32 { ptr, len } => {
            let len = i64::try_from(len).ok()?;
            (flat >= 0 && flat < len && flat_end >= 0 && flat_end < len).then_some(Lanes::Contig {
                ptr,
                base: flat,
                stride: view.stride,
            })
        }
        RawBuf::SegCols { table, width, rows, writable } => {
            if for_store && !writable {
                return None;
            }
            let w = i64::try_from(width).ok()?;
            if w == 0 {
                return None;
            }
            let len = w.checked_mul(i64::try_from(rows).ok()?)?;
            if !(flat >= 0 && flat < len && flat_end >= 0 && flat_end < len) {
                return None;
            }
            let (row, col0) = (flat / w, flat % w);
            // SAFETY (both arms): col0 < width; the table is valid for
            // the run.
            match view.stride {
                0 => {
                    // Lane-invariant: one element, shared by all lanes.
                    let e = unsafe { &*table.add(col0 as usize) };
                    Some(Lanes::Contig { ptr: e.ptr, base: row * i64::from(e.stride), stride: 0 })
                }
                1 => {
                    if col0 + n > w {
                        // The run would cross a logical row: generic loop.
                        return None;
                    }
                    let e = unsafe { &*table.add(col0 as usize) };
                    if n <= i64::from(e.rem) {
                        // The whole run stays inside one segment — serve
                        // it as a plain contiguous range.
                        Some(Lanes::Contig {
                            ptr: e.ptr,
                            base: row * i64::from(e.stride),
                            stride: 1,
                        })
                    } else {
                        Some(Lanes::Cols { table, row: row as usize, col0: col0 as usize })
                    }
                }
                _ => None,
            }
        }
        RawBuf::SegRows { segs, n_segs, seg_len, writable } => {
            if for_store && !writable {
                return None;
            }
            let sl = i64::try_from(seg_len).ok()?;
            if sl == 0 {
                return None;
            }
            let len = sl.checked_mul(i64::try_from(n_segs).ok()?)?;
            if !(flat >= 0 && flat < len && flat_end >= 0 && flat_end < len) {
                return None;
            }
            let (s, off) = (flat / sl, flat % sl);
            let end_off = off.checked_add(span)?;
            if end_off < 0 || end_off >= sl {
                // The run would cross a segment boundary: generic loop.
                return None;
            }
            // SAFETY: s < n_segs; the segment table is valid for the run.
            let base = unsafe { (*segs.add(s as usize)).ptr };
            Some(Lanes::Contig { ptr: base, base: off, stride: view.stride })
        }
        _ => None,
    }
}

/// Which lanes the init value overwrites the accumulator at.
enum LaneInit {
    Never,
    All,
    One(i64),
}

impl FusedLanes {
    pub(super) fn exec(&self, fr: &mut Frame) -> Result<(), ExecError> {
        let n = self.spec.extent.eval(fr)?;
        if n <= 0 {
            return Ok(());
        }
        match self.spec.try_fast(fr, n) {
            Some(()) => Ok(()),
            None => self.generic.exec(fr),
        }
    }
}

impl LaneSpec {
    /// Fast path: evaluate bindings and bases at lane 0, validate every
    /// lane's bounds, then run the microkernel. `None` (no writes done
    /// yet) falls back to the generic loop.
    #[allow(clippy::too_many_lines)]
    pub(super) fn try_fast(&self, fr: &mut Frame, n: i64) -> Option<()> {
        fr.scalars[self.lane_slot as usize] = 0;
        for it in &self.iters {
            let v = it.binding.eval(fr).ok()?;
            fr.scalars[it.slot as usize] = v;
        }
        let lane_init = match &self.init {
            InitKind::None => (LaneInit::Never, 0.0f64),
            InitKind::Always { value } => (LaneInit::All, value.eval(fr).ok()?),
            InitKind::WhenReduceZero { value } => {
                let v = value.eval(fr).ok()?;
                let zero = self
                    .iters
                    .iter()
                    .filter(|it| it.is_reduce)
                    .all(|it| fr.scalars[it.slot as usize] == 0);
                (if zero { LaneInit::All } else { LaneInit::Never }, v)
            }
            InitKind::AtZeroLane { value } => {
                let v = value.eval(fr).ok()?;
                (self.zero_lane(fr, n), v)
            }
        };
        let (lane_init, init_v) = lane_init;
        // Init value round-trips through the f32 store the generic init
        // performs before the accumulating load reads it back.
        let init32 = init_v as f32;

        match &self.micro {
            Micro::FillLanes { dst, value } => {
                let v = value.eval(fr).ok()? as f32;
                let d = resolve_lanes(fr, dst, n, true)?;
                for l in 0..n {
                    // SAFETY: resolve_lanes bounds-checked every lane.
                    unsafe { d.store(l, v) };
                }
                Some(())
            }
            Micro::AxpyLanes { dst, term } => {
                let (coeff, a, b) = resolve_term(fr, term, n)?;
                let d = resolve_lanes(fr, dst, n, true)?;
                let init_all = match lane_init {
                    LaneInit::All => true,
                    LaneInit::Never => false,
                    LaneInit::One(_) => return None, // unreachable by construction
                };
                // SAFETY (all arms): every lane index was bounds-checked
                // by resolve_lanes; element access stays on the relaxed-
                // atomic helpers shared with the generic tree.
                if init_all {
                    let base = f64::from(init32);
                    for l in 0..n {
                        let t = term_at(term.shape, coeff, a, b, l);
                        unsafe { d.store(l, (base + t) as f32) };
                    }
                } else {
                    for l in 0..n {
                        let t = term_at(term.shape, coeff, a, b, l);
                        unsafe {
                            let cur = f64::from(d.load(l));
                            d.store(l, (cur + t) as f32);
                        }
                    }
                }
                Some(())
            }
            Micro::DotLanes { dst, term } | Micro::GatherScaleAccumulate { dst, term } => {
                let (coeff, a, b) = resolve_term(fr, term, n)?;
                let d = resolve_lanes(fr, dst, n, true)?;
                // SAFETY: lane 0 is bounds-checked (stride 0 → one
                // element); accumulation keeps the per-lane f32 round-trip
                // the generic store/load pair performs.
                let mut acc = unsafe { d.load(0) };
                match lane_init {
                    LaneInit::Never => {
                        for l in 0..n {
                            let t = term_at(term.shape, coeff, a, b, l);
                            acc = (f64::from(acc) + t) as f32;
                        }
                    }
                    LaneInit::All => {
                        for l in 0..n {
                            let t = term_at(term.shape, coeff, a, b, l);
                            acc = (f64::from(init32) + t) as f32;
                        }
                    }
                    LaneInit::One(l0) => {
                        for l in 0..n {
                            if l == l0 {
                                acc = init32;
                            }
                            let t = term_at(term.shape, coeff, a, b, l);
                            acc = (f64::from(acc) + t) as f32;
                        }
                    }
                }
                unsafe { d.store(0, acc) };
                Some(())
            }
        }
    }

    /// The unique lane (if any) at which every reduce binding is zero.
    fn zero_lane(&self, fr: &Frame, n: i64) -> LaneInit {
        let mut lane: Option<i64> = None;
        for it in self.iters.iter().filter(|it| it.is_reduce) {
            let v0 = fr.scalars[it.slot as usize];
            if it.stride == 0 {
                if v0 != 0 {
                    return LaneInit::Never;
                }
            } else {
                // v0 + stride·l == 0 at exactly one (possibly fractional
                // or out-of-range) lane.
                if v0 % it.stride != 0 {
                    return LaneInit::Never;
                }
                let l = -v0 / it.stride;
                if l < 0 || l >= n {
                    return LaneInit::Never;
                }
                match lane {
                    None => lane = Some(l),
                    Some(prev) if prev == l => {}
                    Some(_) => return LaneInit::Never,
                }
            }
        }
        match lane {
            Some(l) => LaneInit::One(l),
            // All reduce bindings are lane-invariant zeros: that case is
            // classified WhenReduceZero at compile time, but guard anyway.
            None => LaneInit::All,
        }
    }
}

/// Evaluate the invariant coefficient and resolve the lane operands.
fn resolve_term(fr: &Frame, term: &TermSpec, n: i64) -> Option<(f64, Lanes, Lanes)> {
    let coeff = match &term.coeff {
        Some(c) => c.eval(fr).ok()?,
        None => 0.0,
    };
    let a = resolve_lanes(fr, &term.a, n, false)?;
    let b = match &term.b {
        Some(bv) => resolve_lanes(fr, bv, n, false)?,
        // Unused by shapes without a second operand; alias `a` so the
        // loop body stays branch-free.
        None => a,
    };
    Some((coeff, a, b))
}

/// Per-lane `f64` term value, preserving the source association and
/// operand order exactly.
#[inline]
fn term_at(shape: TermShape, coeff: f64, a: Lanes, b: Lanes, l: i64) -> f64 {
    // SAFETY: lane indices were bounds-checked by resolve_lanes.
    unsafe {
        match shape {
            TermShape::AOnly => f64::from(a.load(l)),
            TermShape::CoeffA => coeff * f64::from(a.load(l)),
            TermShape::ACoeff => f64::from(a.load(l)) * coeff,
            TermShape::AB => f64::from(a.load(l)) * f64::from(b.load(l)),
            TermShape::CoeffAB => (coeff * f64::from(a.load(l))) * f64::from(b.load(l)),
            TermShape::ACoeffB => (f64::from(a.load(l)) * coeff) * f64::from(b.load(l)),
            TermShape::CoeffParenAB => coeff * (f64::from(a.load(l)) * f64::from(b.load(l))),
        }
    }
}
