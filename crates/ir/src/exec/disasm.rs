//! Stable text disassembly of flat kernel bytecode.
//!
//! [`render`] produces a deterministic listing — header, parameter and
//! buffer tables, the scalar-slot table, then one line per instruction —
//! designed for golden-file tests on codegen: any change to lowering,
//! fusion matching or slot allocation shows up as a readable diff.
//! Scalar slots print as `%N`, buffer slots as `@N` (both resolvable via
//! the tables), jump targets as zero-padded absolute instruction
//! addresses. The listing is backend-independent: tree-backed kernels
//! lower their tree on demand, so the same compilation disassembles
//! identically under either executor.

use super::bytecode::{Code, Instr};
use super::fuse::{InitKind, LaneSpec, LaneView, Micro, TermShape, TermSpec};
use super::{
    BoolExpr, CmpOp, CompiledKernel, CompiledTile, FloatExpr, FloatOp, IndexExpr, IntExpr, IntOp,
    ValueExpr,
};
use std::fmt::Write as _;

pub(super) fn render(k: &CompiledKernel, code: &Code) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ";; kernel `{}` fuse={}", k.name, if k.fuse { "on" } else { "off" });
    if k.params.is_empty() {
        out.push_str(";; params: (none)\n");
    } else {
        let cells: Vec<String> =
            k.params.iter().map(|(name, slot)| format!("%{slot}={name}")).collect();
        let _ = writeln!(out, ";; params: {}", cells.join("  "));
    }
    out.push_str(";; buffers:\n");
    for (slot, name) in k.buf_names.iter().enumerate() {
        let dtype = k
            .buffers
            .iter()
            .find(|(_, _, s)| *s as usize == slot)
            .map_or("local", |(_, is_float, _)| if *is_float { "f32" } else { "i32" });
        let _ = writeln!(out, ";;   @{slot} = {name} : {dtype}");
    }
    out.push_str(";; slots:\n");
    for (slot, name) in k.slot_names.iter().enumerate() {
        let _ = writeln!(out, ";;   %{slot} = {name}");
    }
    let _ = writeln!(out, ";; superinstructions: {}", code.fused_ops());
    out.push_str(";; memory plan:\n");
    for (slot, e) in k.plan.entries.iter().enumerate() {
        let dtype = if e.is_float { "f32" } else { "i32" };
        let len = e.len.map_or_else(|| "?".to_string(), |l| l.to_string());
        let kind = if e.local { " local pooled" } else { "" };
        let _ = writeln!(out, ";;   @{slot} = {} : {dtype}[{len}]{kind}", e.name);
    }
    out.push('\n');
    for (at, ins) in code.instrs().iter().enumerate() {
        let _ = writeln!(out, "{at:04}  {}", instr(ins));
    }
    out
}

fn instr(ins: &Instr) -> String {
    match ins {
        Instr::LoopStart { slot, extent, end } => {
            format!("for        %{slot} in 0..{}, end={end:04}", int(extent))
        }
        Instr::Par { slot, extent, end } => {
            format!("par        %{slot} in 0..{}, end={end:04}", int(extent))
        }
        Instr::LoopEnd => "end".to_string(),
        Instr::Bind { slot, value } => format!("bind       %{slot} = {}", int(value)),
        Instr::BindSlot { slot, src } => format!("mov        %{slot} = %{src}"),
        Instr::BindAll { iters } => {
            let binds: Vec<String> =
                iters.iter().map(|(slot, value)| format!("%{slot} = {}", int(value))).collect();
            format!("bind.all   {}", binds.join(", "))
        }
        Instr::BlockHead { iters, init_end } => {
            let binds: Vec<String> = iters
                .iter()
                .map(|(slot, value, is_reduce)| {
                    let mark = if *is_reduce { " [r]" } else { "" };
                    format!("%{slot} = {}{mark}", int(value))
                })
                .collect();
            format!("block      {}, skip.init -> {init_end:04}", binds.join(", "))
        }
        Instr::Branch { cond, else_ } => {
            format!("br.false   {} -> {else_:04}", boolean(cond))
        }
        Instr::Jump { target } => format!("jmp        -> {target:04}"),
        Instr::StoreF { buf, index, value } => {
            format!("st.f32     @{buf}[{}] = {}", index_expr(index), float(value))
        }
        Instr::AccumF { buf, index, rest } => {
            format!("acc.f32    @{buf}[{}] += {}", index_expr(index), float(rest))
        }
        Instr::StoreI { buf, index, value } => {
            format!("st.i32     @{buf}[{}] = {}", index_expr(index), int(value))
        }
        Instr::Alloc { buf, is_float, len_dims } => {
            let dims: Vec<String> = len_dims.iter().map(int).collect();
            let dtype = if *is_float { "f32" } else { "i32" };
            format!("alloc      @{buf} = {dtype}[{}]", dims.join(", "))
        }
        Instr::Free { buf } => format!("free       @{buf}"),
        Instr::EvalV(v) => format!("eval       {}", value(v)),
        Instr::Mma(op) => format!(
            "mma        {} += {} x {}, m={} n={} k={}",
            tile(&op.c),
            tile(&op.a),
            tile(&op.b),
            op.m,
            op.n,
            op.k
        ),
        Instr::Super { spec, done } => format!("{} -> {done:04}", superinstr(spec)),
        Instr::Fail(msg) => format!("fail       {msg:?}"),
    }
}

fn superinstr(spec: &LaneSpec) -> String {
    let (mnemonic, detail) = match &spec.micro {
        Micro::FillLanes { dst, value } => {
            ("super.fill", format!("dst={} val={}", lane_view(dst), float(value)))
        }
        Micro::AxpyLanes { dst, term } => {
            ("super.axpy", format!("dst={} term={}", lane_view(dst), term_spec(term)))
        }
        Micro::DotLanes { dst, term } => {
            ("super.dot ", format!("dst={} term={}", lane_view(dst), term_spec(term)))
        }
        Micro::GatherScaleAccumulate { dst, term } => {
            ("super.gsa ", format!("dst={} term={}", lane_view(dst), term_spec(term)))
        }
    };
    let iters: Vec<String> = spec
        .iters
        .iter()
        .map(|it| {
            format!(
                "%{}={} [{}{:+}]",
                it.slot,
                int(&it.binding),
                if it.is_reduce { "r" } else { "s" },
                it.stride
            )
        })
        .collect();
    format!(
        "{mnemonic} %{} in 0..{}, {detail}, init={}, iters=[{}]",
        spec.lane_slot,
        int(&spec.extent),
        init_kind(&spec.init),
        iters.join("; ")
    )
}

fn init_kind(init: &InitKind) -> String {
    match init {
        InitKind::None => "none".to_string(),
        InitKind::Always { value } => format!("always({})", float(value)),
        InitKind::WhenReduceZero { value } => format!("when-reduce-zero({})", float(value)),
        InitKind::AtZeroLane { value } => format!("at-zero-lane({})", float(value)),
    }
}

fn lane_view(v: &LaneView) -> String {
    format!("@{}[{}]{:+}", v.buf, index_expr(&v.index), v.stride)
}

fn term_spec(t: &TermSpec) -> String {
    let a = lane_view(&t.a);
    let b = t.b.as_ref().map(lane_view);
    let c = t.coeff.as_ref().map(float);
    let (b, c) = (b.as_deref().unwrap_or("?"), c.as_deref().unwrap_or("?"));
    match t.shape {
        TermShape::AOnly => a,
        TermShape::CoeffA => format!("({c} * {a})"),
        TermShape::ACoeff => format!("({a} * {c})"),
        TermShape::AB => format!("({a} * {b})"),
        TermShape::CoeffAB => format!("(({c} * {a}) * {b})"),
        TermShape::ACoeffB => format!("(({a} * {c}) * {b})"),
        TermShape::CoeffParenAB => format!("({c} * ({a} * {b}))"),
    }
}

fn tile(t: &CompiledTile) -> String {
    format!("@{}[{} +r*{}]", t.buf, int(&t.offset), int(&t.row_stride))
}

fn value(v: &ValueExpr) -> String {
    match v {
        ValueExpr::I(e) => int(e),
        ValueExpr::F(e) => float(e),
        ValueExpr::B(e) => boolean(e),
    }
}

fn index_expr(ix: &IndexExpr) -> String {
    let dims: Vec<String> =
        ix.dims.iter().map(|(idx, ext)| format!("{}<{}", int(idx), int(ext))).collect();
    dims.join(", ")
}

fn int_op(op: IntOp) -> &'static str {
    match op {
        IntOp::Add => "+",
        IntOp::Sub => "-",
        IntOp::Mul => "*",
        IntOp::Div => "/",
        IntOp::Rem => "%",
        IntOp::Min => "min",
        IntOp::Max => "max",
    }
}

fn float_op(op: FloatOp) -> &'static str {
    match op {
        FloatOp::Add => "+",
        FloatOp::Sub => "-",
        FloatOp::Mul => "*",
        FloatOp::Div => "/",
        FloatOp::Rem => "%",
        FloatOp::Min => "min",
        FloatOp::Max => "max",
    }
}

fn cmp_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn int(e: &IntExpr) -> String {
    match e {
        IntExpr::Const(v) => v.to_string(),
        IntExpr::Slot(s) => format!("%{s}"),
        IntExpr::Bin { op, lhs, rhs } => match op {
            IntOp::Min | IntOp::Max => format!("{}({}, {})", int_op(*op), int(lhs), int(rhs)),
            _ => format!("({} {} {})", int(lhs), int_op(*op), int(rhs)),
        },
        IntExpr::Select { cond, then_, else_ } => {
            format!("sel({}, {}, {})", boolean(cond), int(then_), int(else_))
        }
        IntExpr::CastViaF64(f) => format!("i64({})", float(f)),
        IntExpr::BoolToInt(b) => format!("int({})", boolean(b)),
        IntExpr::Load { buf, index } => format!("@{buf}[{}]", index_expr(index)),
        IntExpr::BinarySearch { buf, lo, hi, x, .. } => {
            format!("bsearch(@{buf}, {}, {}, {})", int(lo), int(hi), int(x))
        }
    }
}

fn float(e: &FloatExpr) -> String {
    match e {
        FloatExpr::Const(v) => format!("{v:?}"),
        FloatExpr::Bin { op, lhs, rhs } => match op {
            FloatOp::Min | FloatOp::Max => {
                format!("f{}({}, {})", float_op(*op), float(lhs), float(rhs))
            }
            _ => format!("({} {} {})", float(lhs), float_op(*op), float(rhs)),
        },
        FloatExpr::Select { cond, then_, else_ } => {
            format!("sel({}, {}, {})", boolean(cond), float(then_), float(else_))
        }
        FloatExpr::FromInt(i) => format!("f64({})", int(i)),
        FloatExpr::Load { buf, index } => format!("@{buf}[{}]", index_expr(index)),
        FloatExpr::Exp(v) => format!("exp({})", float(v)),
        FloatExpr::Sqrt(v) => format!("sqrt({})", float(v)),
        FloatExpr::Relu(v) => format!("relu({})", float(v)),
    }
}

fn boolean(e: &BoolExpr) -> String {
    match e {
        BoolExpr::CmpI { op, lhs, rhs } => {
            format!("({} {} {})", int(lhs), cmp_op(*op), int(rhs))
        }
        BoolExpr::CmpF { op, lhs, rhs } => {
            format!("({} {} {})", float(lhs), cmp_op(*op), float(rhs))
        }
        BoolExpr::And(l, r) => format!("({} && {})", boolean(l), boolean(r)),
        BoolExpr::Or(l, r) => format!("({} || {})", boolean(l), boolean(r)),
        BoolExpr::IntNonZero(i) => format!("({} != 0)", int(i)),
        BoolExpr::FloatNonZero(f) => format!("({} != 0.0)", float(f)),
    }
}
