//! Flat bytecode executor: tree→bytecode lowering and the `ip`-driven
//! dispatch loop.
//!
//! The tree executor ([`CStmt::exec`]) pays a recursive call and an enum
//! match per statement node per iteration — `Seq` re-iterates its vector,
//! `Block` re-inspects its option fields, and every loop level is a stack
//! frame. This module lowers the compiled tree **once** into a flat
//! `Vec<Instr>` executed by a single `while ip < end { match }` loop:
//!
//! * **Loops are jump-encoded.** `LoopStart` pushes a loop record
//!   (slot, body address, trip count) onto an explicit stack; the
//!   matching `LoopEnd` is the back edge, jumping to the body address
//!   until the count is exhausted. Zero-trip loops jump straight past
//!   their `LoopEnd`. No recursion, no per-iteration `Box` chasing.
//! * **Blocks are flattened** into bind instructions. A reduce block with
//!   an init becomes one `BlockHead`: every iter binding plus the
//!   reduce-init gate (the tree's `init_needed` rule) in a single
//!   dispatch, jumping over the lowered init when any reduce binding is
//!   nonzero. Ungated blocks lower to a bare `Bind`/`BindSlot`/`BindAll`.
//! * **Fusion emits superinstructions.** Lowering consults the same
//!   [`fuse::build_fused`] analysis the tree rewriter uses; a matching
//!   loop becomes one [`Instr::Super`] carrying the [`LaneSpec`]
//!   microkernel, and the generic loop is lowered immediately behind it
//!   as the bit-exact fallback (taken when per-lane bounds validation
//!   fails, reproducing the interpreter's errors).
//!
//! Semantics are bit-identical to the tree executor, which remains
//! available behind the `SPARSETIR_TREE_EXEC` kill switch; the
//! differential suite drives interpreter / tree / bytecode 4-way.

use super::fuse::{self, LaneSpec};
use super::{
    exec_accum_f, exec_mma, exec_store_f, exec_store_i, num_threads, BoolExpr, CBlock, CStmt,
    ExecError, FloatExpr, FloatOp, Frame, IndexExpr, IntExpr, IntOp, MmaOp, RawBuf, SendFrame,
    ValueExpr,
};
use std::collections::HashSet;
use std::sync::Mutex;

/// One flat-stream instruction. Jump targets are absolute instruction
/// indices into the owning [`Code`].
#[derive(Debug)]
pub(super) enum Instr {
    /// Evaluate `extent`; if positive, set `scalars[slot] = 0`, push a
    /// loop record and fall through to the body, else jump to `end`
    /// (the instruction after the matching [`Instr::LoopEnd`]).
    LoopStart { slot: u32, extent: IntExpr, end: u32 },
    /// Outermost `blockIdx.*` loop that passed the parallel-safety
    /// analysis: iterations of the body range `[addr+1, end-1)` dispatch
    /// across OS threads. With one thread it degenerates to
    /// [`Instr::LoopStart`], sharing its `LoopEnd` as the back edge.
    Par { slot: u32, extent: IntExpr, end: u32 },
    /// Back edge: advance the innermost loop record; jump to its body
    /// address or pop it and fall through.
    LoopEnd,
    /// `scalars[slot] = value` (single block iter bindings and `let`).
    Bind { slot: u32, value: IntExpr },
    /// [`Instr::Bind`] specialized for the ubiquitous slot-copy binding
    /// (`vi = i`): one indexed move, no expression dispatch.
    BindSlot { slot: u32, src: u32 },
    /// All iter bindings of an ungated block (all-spatial, or no init),
    /// evaluated in order in one dispatch.
    BindAll { iters: Box<[(u32, IntExpr)]> },
    /// Head of a reduce block with an init: evaluate every iter binding
    /// in order (`true` marks reduce iters), then jump to `init_end` —
    /// skipping the lowered init right behind this instruction — when any
    /// reduce binding is nonzero (the tree's `!any_reduce_nonzero` gate).
    BlockHead { iters: Box<[(u32, IntExpr, bool)]>, init_end: u32 },
    /// Conditional: fall through into the then-branch or jump to `else_`.
    Branch { cond: BoolExpr, else_: u32 },
    /// Unconditional jump (end of a then-branch over its else-branch).
    Jump { target: u32 },
    /// `BufferStore` into a float-typed buffer.
    StoreF { buf: u32, index: IndexExpr, value: FloatExpr },
    /// [`Instr::StoreF`] specialized for the reduction-accumulate form
    /// `@buf[i] = @buf[i] + rest`: the flat index is evaluated once and
    /// reused for both the load and the store.
    AccumF { buf: u32, index: IndexExpr, rest: FloatExpr },
    /// `BufferStore` of an int value (int-into-float handled like the
    /// interpreter).
    StoreI { buf: u32, index: IndexExpr, value: IntExpr },
    /// Push a zeroed staging buffer into `bufs[buf]`, saving the shadowed
    /// view for the matching [`Instr::Free`].
    Alloc { buf: u32, is_float: bool, len_dims: Vec<IntExpr> },
    /// Pop the staging buffer pushed by the matching [`Instr::Alloc`].
    Free { buf: u32 },
    /// Evaluate for effect (lazy runtime errors).
    EvalV(ValueExpr),
    /// `mma_sync` tile op.
    Mma(Box<MmaOp>),
    /// Fused dense-lane superinstruction: run the microkernel fast path
    /// and jump to `done`, or fall through into the generic loop lowered
    /// right behind it (which ends at `done`).
    Super { spec: Box<LaneSpec>, done: u32 },
    /// Ill-typed statement that errors only if executed (matching the
    /// interpreter's lazy runtime errors).
    Fail(String),
}

/// A lowered kernel body: the flat instruction stream plus lowering
/// metadata.
#[derive(Debug)]
pub(super) struct Code {
    instrs: Vec<Instr>,
    fused_ops: usize,
}

/// Lower a compiled statement tree to flat bytecode. When `fuse` is set,
/// the fusion analysis runs over each candidate loop during lowering and
/// emits superinstructions; trees that already contain `CStmt::Fused`
/// nodes (tree-backend kernels being disassembled) lower those nodes to
/// the same superinstruction form, so both paths produce identical code.
pub(super) fn lower(body: &CStmt, fuse: bool) -> Code {
    let mut lw = Lower { instrs: Vec::new(), fused_ops: 0, fuse };
    lw.stmt(body);
    Code { instrs: lw.instrs, fused_ops: lw.fused_ops }
}

struct Lower {
    instrs: Vec<Instr>,
    fused_ops: usize,
    fuse: bool,
}

impl Lower {
    fn here(&self) -> u32 {
        u32::try_from(self.instrs.len()).expect("kernel exceeds u32 instructions")
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::LoopStart { end, .. }
            | Instr::Par { end, .. }
            | Instr::BlockHead { init_end: end, .. }
            | Instr::Branch { else_: end, .. }
            | Instr::Jump { target: end }
            | Instr::Super { done: end, .. } => *end = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::For { slot, extent, body } => {
                if self.fuse {
                    if let Some(spec) = fuse::build_fused(s) {
                        self.superinstr(spec, s);
                        return;
                    }
                }
                // Loop-invariant code motion: bindings of a `for { block }`
                // body that depend on nothing the loop writes evaluate to
                // the same value every iteration — bind them once, above
                // the loop.
                let residual = if let CStmt::Block(b) = &**body {
                    licm_split(*slot, extent, b).map(|(hoisted, remaining)| {
                        for (hslot, value) in &hoisted {
                            self.emit_bind(*hslot, value);
                        }
                        remaining
                    })
                } else {
                    None
                };
                let at =
                    self.emit(Instr::LoopStart { slot: *slot, extent: extent.clone(), end: 0 });
                match (&residual, &**body) {
                    (Some(iters), CStmt::Block(b)) => self.block(iters, b),
                    _ => self.stmt(body),
                }
                self.emit(Instr::LoopEnd);
                let end = self.here();
                self.patch(at, end);
            }
            CStmt::ParFor { slot, extent, body } => {
                let at = self.emit(Instr::Par { slot: *slot, extent: extent.clone(), end: 0 });
                self.stmt(body);
                self.emit(Instr::LoopEnd);
                let end = self.here();
                self.patch(at, end);
            }
            CStmt::Fused(f) => self.superinstr(f.spec.clone(), &f.generic),
            CStmt::Block(b) => self.block(&b.iters, b),
            CStmt::StoreF { buf, index, value } => {
                // Peephole: `@buf[i] = @buf[i] + rest` (every reduction
                // update) evaluates its destination index twice in the
                // generic form — once inside the load, once for the store.
                if let FloatExpr::Bin { op: FloatOp::Add, lhs, rhs } = value {
                    if matches!(&**lhs,
                        FloatExpr::Load { buf: lbuf, index: lidx } if lbuf == buf && lidx == index)
                    {
                        self.emit(Instr::AccumF {
                            buf: *buf,
                            index: index.clone(),
                            rest: (**rhs).clone(),
                        });
                        return;
                    }
                }
                self.emit(Instr::StoreF { buf: *buf, index: index.clone(), value: value.clone() });
            }
            CStmt::StoreI { buf, index, value } => {
                self.emit(Instr::StoreI { buf: *buf, index: index.clone(), value: value.clone() });
            }
            CStmt::Seq(stmts) => {
                for st in stmts {
                    self.stmt(st);
                }
            }
            CStmt::If { cond, then_, else_ } => {
                let br = self.emit(Instr::Branch { cond: cond.clone(), else_: 0 });
                self.stmt(then_);
                if let Some(e) = else_ {
                    let jmp = self.emit(Instr::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(br, else_at);
                    self.stmt(e);
                    let end = self.here();
                    self.patch(jmp, end);
                } else {
                    let end = self.here();
                    self.patch(br, end);
                }
            }
            CStmt::Let { slot, value, body } => {
                self.emit(Instr::Bind { slot: *slot, value: value.clone() });
                self.stmt(body);
            }
            CStmt::Alloc { buf, is_float, len_dims, body } => {
                self.emit(Instr::Alloc {
                    buf: *buf,
                    is_float: *is_float,
                    len_dims: len_dims.clone(),
                });
                self.stmt(body);
                self.emit(Instr::Free { buf: *buf });
            }
            CStmt::EvalV(v) => {
                self.emit(Instr::EvalV(v.clone()));
            }
            CStmt::Mma(op) => {
                self.emit(Instr::Mma(op.clone()));
            }
            CStmt::Fail(msg) => {
                self.emit(Instr::Fail(msg.clone()));
            }
        }
    }

    /// Lower a block with the given iter list — the block's own, or the
    /// residual [`licm_split`] left behind after hoisting. The tree gates
    /// the init on `all_spatial ? init.is_some() : !any_reduce_nonzero`;
    /// a reduce block's whole head — every binding plus the gate decision
    /// — is one dispatch.
    fn block(&mut self, iters: &[(u32, IntExpr, bool)], b: &CBlock) {
        let gate = !b.all_spatial && b.init.is_some();
        if gate {
            let iters: Box<[(u32, IntExpr, bool)]> = iters
                .iter()
                .map(|(slot, binding, is_reduce)| (*slot, binding.clone(), *is_reduce))
                .collect();
            let at = self.emit(Instr::BlockHead { iters, init_end: 0 });
            self.stmt(b.init.as_deref().expect("gated block has an init"));
            let t = self.here();
            self.patch(at, t);
        } else {
            match iters {
                [] => {}
                [(slot, binding, _)] => self.emit_bind(*slot, binding),
                iters => {
                    let iters: Box<[(u32, IntExpr)]> =
                        iters.iter().map(|(slot, binding, _)| (*slot, binding.clone())).collect();
                    self.emit(Instr::BindAll { iters });
                }
            }
            if let Some(init) = &b.init {
                // All-spatial block with an init: fires always.
                self.stmt(init);
            }
        }
        self.stmt(&b.body);
    }

    /// Emit a single binding, specialized to a slot move when possible.
    fn emit_bind(&mut self, slot: u32, value: &IntExpr) {
        let ins = if let IntExpr::Slot(src) = value {
            Instr::BindSlot { slot, src: *src }
        } else {
            Instr::Bind { slot, value: value.clone() }
        };
        self.emit(ins);
    }

    /// Emit a superinstruction followed by its generic fallback (the
    /// original loop, lowered with fusion suppressed so the fallback
    /// never re-matches itself).
    fn superinstr(&mut self, spec: LaneSpec, generic: &CStmt) {
        self.fused_ops += 1;
        let at = self.emit(Instr::Super { spec: Box::new(spec), done: 0 });
        let prev = std::mem::replace(&mut self.fuse, false);
        self.stmt(generic);
        self.fuse = prev;
        let done = self.here();
        self.patch(at, done);
    }
}

// ---------------------------------------------------------------------------
// Loop-invariant code motion (lowering-time analysis)
// ---------------------------------------------------------------------------

/// What a compiled expression reads, and whether evaluating it can error.
#[derive(Default)]
struct ExprInfo {
    slots: HashSet<u32>,
    bufs: HashSet<u32>,
    fallible: bool,
}

fn scan_int(e: &IntExpr, info: &mut ExprInfo) {
    match e {
        IntExpr::Const(_) => {}
        IntExpr::Slot(s) => {
            info.slots.insert(*s);
        }
        IntExpr::Bin { op, lhs, rhs } => {
            info.fallible |= matches!(op, IntOp::Div | IntOp::Rem);
            scan_int(lhs, info);
            scan_int(rhs, info);
        }
        IntExpr::Select { cond, then_, else_ } => {
            scan_bool(cond, info);
            scan_int(then_, info);
            scan_int(else_, info);
        }
        IntExpr::CastViaF64(v) => scan_float(v, info),
        IntExpr::BoolToInt(b) => scan_bool(b, info),
        IntExpr::Load { buf, index } => {
            info.fallible = true;
            info.bufs.insert(*buf);
            scan_index(index, info);
        }
        IntExpr::BinarySearch { buf, lo, hi, x, .. } => {
            info.fallible = true;
            info.bufs.insert(*buf);
            scan_int(lo, info);
            scan_int(hi, info);
            scan_int(x, info);
        }
    }
}

fn scan_float(e: &FloatExpr, info: &mut ExprInfo) {
    match e {
        FloatExpr::Const(_) => {}
        FloatExpr::Bin { lhs, rhs, .. } => {
            // Float div/rem follow IEEE (inf/NaN), never error.
            scan_float(lhs, info);
            scan_float(rhs, info);
        }
        FloatExpr::Select { cond, then_, else_ } => {
            scan_bool(cond, info);
            scan_float(then_, info);
            scan_float(else_, info);
        }
        FloatExpr::FromInt(v) => scan_int(v, info),
        FloatExpr::Load { buf, index } => {
            info.fallible = true;
            info.bufs.insert(*buf);
            scan_index(index, info);
        }
        FloatExpr::Exp(v) | FloatExpr::Sqrt(v) | FloatExpr::Relu(v) => scan_float(v, info),
    }
}

fn scan_bool(e: &BoolExpr, info: &mut ExprInfo) {
    match e {
        BoolExpr::CmpI { lhs, rhs, .. } => {
            scan_int(lhs, info);
            scan_int(rhs, info);
        }
        BoolExpr::CmpF { lhs, rhs, .. } => {
            scan_float(lhs, info);
            scan_float(rhs, info);
        }
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            scan_bool(a, info);
            scan_bool(b, info);
        }
        BoolExpr::IntNonZero(v) => scan_int(v, info),
        BoolExpr::FloatNonZero(v) => scan_float(v, info),
    }
}

fn scan_index(ix: &IndexExpr, info: &mut ExprInfo) {
    info.fallible = true; // per-dimension bounds checks
    for (i, extent) in &ix.dims {
        scan_int(i, info);
        scan_int(extent, info);
    }
}

/// What a statement subtree writes. `unknown` poisons the analysis.
#[derive(Default)]
struct WriteInfo {
    slots: HashSet<u32>,
    bufs: HashSet<u32>,
    unknown: bool,
}

fn scan_writes(s: &CStmt, w: &mut WriteInfo) {
    match s {
        CStmt::For { slot, body, .. } | CStmt::ParFor { slot, body, .. } => {
            w.slots.insert(*slot);
            scan_writes(body, w);
        }
        CStmt::Block(b) => {
            for (slot, _, _) in &b.iters {
                w.slots.insert(*slot);
            }
            if let Some(init) = &b.init {
                scan_writes(init, w);
            }
            scan_writes(&b.body, w);
        }
        CStmt::StoreF { buf, .. } | CStmt::StoreI { buf, .. } => {
            w.bufs.insert(*buf);
        }
        CStmt::Seq(stmts) => {
            for st in stmts {
                scan_writes(st, w);
            }
        }
        CStmt::If { then_, else_, .. } => {
            scan_writes(then_, w);
            if let Some(e) = else_ {
                scan_writes(e, w);
            }
        }
        CStmt::Let { slot, body, .. } => {
            w.slots.insert(*slot);
            scan_writes(body, w);
        }
        CStmt::Alloc { buf, body, .. } => {
            w.bufs.insert(*buf);
            scan_writes(body, w);
        }
        // Opaque evaluation — assume it can touch anything.
        CStmt::EvalV(_) => w.unknown = true,
        CStmt::Mma(op) => {
            w.bufs.insert(op.c.buf);
        }
        // The microkernel writes a subset of what its generic fallback
        // writes, so scanning the fallback covers both.
        CStmt::Fused(f) => scan_writes(&f.generic, w),
        CStmt::Fail(_) => {}
    }
}

/// Hoisted `(slot, value)` bindings plus the residual per-iteration
/// iter list, as returned by [`licm_split`].
type LicmSplit = (Vec<(u32, IntExpr)>, Vec<(u32, IntExpr, bool)>);

/// Split a `for { block }` body's iter bindings into a hoistable prefix
/// set (evaluated once, above the loop) and the residual per-iteration
/// list. Only constant positive trip counts qualify: such a loop
/// evaluates every binding at least once, so an invariant binding — or
/// its error — moves from iteration 0 to just before the loop with
/// nothing observable in between (slot writes are invisible outside the
/// frame). A binding hoists when it is spatial, reads no slot the loop
/// rebinds and no buffer the body writes, and no fallible binding before
/// it stays inside (iteration-0 error order must be preserved).
fn licm_split(loop_slot: u32, extent: &IntExpr, b: &CBlock) -> Option<LicmSplit> {
    if !matches!(extent, IntExpr::Const(n) if *n > 0) {
        return None;
    }
    let mut w = WriteInfo::default();
    if let Some(init) = &b.init {
        scan_writes(init, &mut w);
    }
    scan_writes(&b.body, &mut w);
    if w.unknown {
        return None;
    }
    w.slots.insert(loop_slot);
    for (slot, _, _) in &b.iters {
        w.slots.insert(*slot);
    }
    let mut hoisted = Vec::new();
    let mut remaining = Vec::new();
    let mut stayed_fallible = false;
    for (slot, value, is_reduce) in &b.iters {
        let mut info = ExprInfo::default();
        scan_int(value, &mut info);
        let invariant = info.slots.is_disjoint(&w.slots) && info.bufs.is_disjoint(&w.bufs);
        if !*is_reduce && !stayed_fallible && invariant {
            hoisted.push((*slot, value.clone()));
        } else {
            stayed_fallible |= info.fallible;
            remaining.push((*slot, value.clone(), *is_reduce));
        }
    }
    if hoisted.is_empty() {
        None
    } else {
        Some((hoisted, remaining))
    }
}

// ---------------------------------------------------------------------------
// Dispatch loop
// ---------------------------------------------------------------------------

/// Live record of one entered loop: the back edge ([`Instr::LoopEnd`])
/// reads the top of the loop stack instead of carrying state of its own.
struct LoopFrame {
    slot: u32,
    body: u32,
    i: i64,
    n: i64,
}

/// Mutable interpreter state threaded through [`run_range`] alongside the
/// frame: the loop stack and the alloc shadow stack.
struct State {
    loops: Vec<LoopFrame>,
    saved: Vec<RawBuf>,
}

impl State {
    fn new() -> State {
        State { loops: Vec::new(), saved: Vec::new() }
    }
}

impl Code {
    /// Number of fused superinstructions in the stream.
    pub(super) fn fused_ops(&self) -> usize {
        self.fused_ops
    }

    /// Push the name of each superinstruction's microkernel, in stream
    /// order (mirrors [`fuse::collect_micros`] on trees).
    pub(super) fn collect_micros(&self, out: &mut Vec<&'static str>) {
        for ins in &self.instrs {
            if let Instr::Super { spec, .. } = ins {
                out.push(spec.micro.name());
            }
        }
    }

    /// True when the stream contains a thread-dispatching loop.
    pub(super) fn is_parallel(&self) -> bool {
        self.instrs.iter().any(|i| matches!(i, Instr::Par { .. }))
    }

    /// Iterate the instruction stream (disassembly).
    pub(super) fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Execute the whole stream against `fr`.
    pub(super) fn exec(&self, fr: &mut Frame) -> Result<(), ExecError> {
        let end = u32::try_from(self.instrs.len()).expect("kernel exceeds u32 instructions");
        run_range(&self.instrs, 0, end, fr, &mut State::new())
    }
}

/// The dispatch loop: execute instructions `[start, end)`. On error the
/// partially-unwound `State` is discarded by the caller (the tree
/// executor aborts identically), so no cleanup pass is needed.
#[allow(clippy::too_many_lines)]
fn run_range(
    code: &[Instr],
    start: u32,
    end: u32,
    fr: &mut Frame,
    st: &mut State,
) -> Result<(), ExecError> {
    let mut ip = start;
    while ip < end {
        // Indexing is in-bounds by construction: every jump target the
        // lowering pass emits lies within the stream.
        match &code[ip as usize] {
            Instr::LoopStart { slot, extent, end: lend } => {
                let n = extent.eval(fr)?;
                if n <= 0 {
                    ip = *lend;
                    continue;
                }
                fr.scalars[*slot as usize] = 0;
                st.loops.push(LoopFrame { slot: *slot, body: ip + 1, i: 0, n });
                ip += 1;
            }
            Instr::LoopEnd => {
                let top = st.loops.last_mut().expect("loop stack underflow");
                top.i += 1;
                if top.i < top.n {
                    fr.scalars[top.slot as usize] = top.i;
                    ip = top.body;
                } else {
                    st.loops.pop();
                    ip += 1;
                }
            }
            Instr::Par { slot, extent, end: lend } => {
                let n = extent.eval(fr)?;
                if n <= 0 {
                    ip = *lend;
                    continue;
                }
                let threads = num_threads().min(n as usize);
                if threads < 2 {
                    // Serial degenerate case: exactly a LoopStart, reusing
                    // the shared LoopEnd at `lend - 1` as the back edge.
                    fr.scalars[*slot as usize] = 0;
                    st.loops.push(LoopFrame { slot: *slot, body: ip + 1, i: 0, n });
                    ip += 1;
                    continue;
                }
                run_parallel(code, ip + 1, *lend - 1, fr, *slot, n, threads)?;
                ip = *lend;
            }
            Instr::Bind { slot, value } => {
                fr.scalars[*slot as usize] = value.eval(fr)?;
                ip += 1;
            }
            Instr::BindSlot { slot, src } => {
                fr.scalars[*slot as usize] = fr.scalars[*src as usize];
                ip += 1;
            }
            Instr::BindAll { iters } => {
                for (slot, value) in iters.iter() {
                    fr.scalars[*slot as usize] = value.eval(fr)?;
                }
                ip += 1;
            }
            Instr::BlockHead { iters, init_end } => {
                let mut any_reduce_nonzero = false;
                for (slot, value, is_reduce) in iters.iter() {
                    let v = value.eval(fr)?;
                    any_reduce_nonzero |= *is_reduce && v != 0;
                    fr.scalars[*slot as usize] = v;
                }
                ip = if any_reduce_nonzero { *init_end } else { ip + 1 };
            }
            Instr::Branch { cond, else_ } => {
                if cond.eval(fr)? {
                    ip += 1;
                } else {
                    ip = *else_;
                }
            }
            Instr::Jump { target } => ip = *target,
            Instr::AccumF { buf, index, rest } => {
                exec_accum_f(fr, *buf, index, rest)?;
                ip += 1;
            }
            Instr::StoreF { buf, index, value } => {
                exec_store_f(fr, *buf, index, value)?;
                ip += 1;
            }
            Instr::StoreI { buf, index, value } => {
                exec_store_i(fr, *buf, index, value)?;
                ip += 1;
            }
            Instr::Alloc { buf, is_float, len_dims } => {
                let mut len: i64 = 1;
                for d in len_dims {
                    len *= d.eval(fr)?;
                }
                let mut data = super::alloc_local(fr, *is_float, len as usize);
                let view = RawBuf::of(&mut data);
                fr.locals.push(data);
                st.saved.push(fr.bufs[*buf as usize]);
                fr.bufs[*buf as usize] = view;
                ip += 1;
            }
            Instr::Free { buf } => {
                fr.bufs[*buf as usize] = st.saved.pop().expect("alloc stack underflow");
                super::free_local(fr);
                ip += 1;
            }
            Instr::EvalV(v) => {
                v.eval_for_effect(fr)?;
                ip += 1;
            }
            Instr::Mma(op) => {
                exec_mma(fr, &op.c, &op.a, &op.b, op.m, op.n, op.k)?;
                ip += 1;
            }
            Instr::Super { spec, done } => {
                let n = spec.extent.eval(fr)?;
                if n <= 0 || spec.try_fast(fr, n).is_some() {
                    ip = *done;
                } else {
                    // Microkernel preconditions failed before any write:
                    // fall through into the generic loop behind us, which
                    // reproduces the interpreter's exact behavior.
                    ip += 1;
                }
            }
            Instr::Fail(msg) => return Err(ExecError::new(msg.clone())),
        }
    }
    Ok(())
}

/// Dispatch iterations `0..n` of the body range `[body_start, body_end)`
/// across `threads` scoped threads, chunked exactly like the tree
/// executor's `ParFor` (same chunking, same per-thread frame cloning,
/// same first-error-wins reporting).
fn run_parallel(
    code: &[Instr],
    body_start: u32,
    body_end: u32,
    fr: &Frame,
    slot: u32,
    n: i64,
    threads: usize,
) -> Result<(), ExecError> {
    let chunk = (n as usize).div_ceil(threads);
    let first_err: Mutex<Option<ExecError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = (t * chunk) as i64;
            let hi = n.min(((t + 1) * chunk) as i64);
            if lo >= hi {
                break;
            }
            let tf = SendFrame(Frame {
                scalars: fr.scalars.clone(),
                bufs: fr.bufs.clone(),
                locals: Vec::new(),
                pool: None,
            });
            let first_err = &first_err;
            s.spawn(move || {
                // Move the whole wrapper (not just `tf.0`) so the `Send`
                // impl on `SendFrame` applies.
                let mut tf = tf;
                let mut st = State::new();
                for i in lo..hi {
                    tf.0.scalars[slot as usize] = i;
                    if let Err(e) = run_range(code, body_start, body_end, &mut tf.0, &mut st) {
                        let mut g = first_err.lock().unwrap();
                        if g.is_none() {
                            *g = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    match first_err.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
