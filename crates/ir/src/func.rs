//! Function container for the loop-level IR.

use crate::buffer::Buffer;
use crate::expr::{Expr, Var};
use crate::stmt::Stmt;
use std::collections::HashMap;
use std::rc::Rc;

/// A primitive function: scalar parameters, externally bound buffers and a
/// statement body. The unit of lowering, scheduling and code generation
/// (analogue of TensorIR's `PrimFunc`).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimFunc {
    /// Function name (becomes the kernel name in codegen).
    pub name: Rc<str>,
    /// Scalar parameters (extents such as `m`, `n`, `nnz`, `feat_size`).
    pub params: Vec<Var>,
    /// Buffers bound by the caller (global-scope inputs/outputs).
    pub buffers: Vec<Buffer>,
    /// Body.
    pub body: Stmt,
}

impl PrimFunc {
    /// Create a function.
    pub fn new(
        name: impl Into<Rc<str>>,
        params: Vec<Var>,
        buffers: Vec<Buffer>,
        body: Stmt,
    ) -> Self {
        PrimFunc { name: name.into(), params, buffers, body }
    }

    /// Look up a parameter by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&Var> {
        self.params.iter().find(|v| &*v.name == name)
    }

    /// Look up a bound buffer by name.
    #[must_use]
    pub fn buffer(&self, name: &str) -> Option<&Buffer> {
        self.buffers.iter().find(|b| &*b.name == name)
    }

    /// Names of every buffer allocated inside the body (non-global staging).
    #[must_use]
    pub fn local_allocations(&self) -> Vec<Buffer> {
        let mut out = Vec::new();
        self.body.walk(&mut |s| {
            if let Stmt::Allocate { buffer, .. } = s {
                out.push(buffer.clone());
            }
        });
        out
    }

    /// Generate a fresh variable name not colliding with params or loop vars.
    #[must_use]
    pub fn fresh_name(&self, base: &str) -> String {
        let mut used: Vec<String> = self.params.iter().map(|p| p.name.to_string()).collect();
        self.body.walk(&mut |s| {
            if let Stmt::For { var, .. } = s {
                used.push(var.name.to_string());
            }
            if let Stmt::Let { var, .. } = s {
                used.push(var.name.to_string());
            }
        });
        if !used.iter().any(|u| u == base) {
            return base.to_string();
        }
        for i in 0.. {
            let cand = format!("{base}_{i}");
            if !used.iter().any(|u| u == &cand) {
                return cand;
            }
        }
        unreachable!()
    }

    /// Substitute scalar parameters with constant values, producing a
    /// specialized function (used when the sparse structure is known at
    /// compile time, §2 of the paper).
    #[must_use]
    pub fn specialize(&self, bindings: &HashMap<String, i64>) -> PrimFunc {
        let mut body = self.body.clone();
        let mut params = Vec::new();
        for p in &self.params {
            if let Some(v) = bindings.get(&*p.name) {
                body = body.substitute(p, &Expr::Int { value: *v, dtype: p.dtype });
            } else {
                params.push(p.clone());
            }
        }
        let subst_shape = |b: &Buffer| {
            let mut shape = b.shape.clone();
            for p in &self.params {
                if let Some(v) = bindings.get(&*p.name) {
                    let c = Expr::Int { value: *v, dtype: p.dtype };
                    shape = shape.iter().map(|d| d.substitute(p, &c).simplify()).collect();
                }
            }
            Buffer { name: b.name.clone(), dtype: b.dtype, shape, scope: b.scope }
        };
        let buffers = self.buffers.iter().map(subst_shape).collect();
        PrimFunc { name: self.name.clone(), params, buffers, body }
    }

    /// All block names in the body, in pre-order.
    #[must_use]
    pub fn block_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.body.walk(&mut |s| {
            if let Stmt::Block(b) = s {
                out.push(b.name.to_string());
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn specialize_substitutes_params_and_shapes() {
        let n = Var::i32("n");
        let a = Buffer::global_f32("A", vec![Expr::var(&n)]);
        let i = Var::i32("i");
        let body = Stmt::for_serial(
            i.clone(),
            Expr::var(&n),
            Stmt::BufferStore {
                buffer: a.clone(),
                indices: vec![Expr::var(&i)],
                value: Expr::f32(0.0),
            },
        );
        let f = PrimFunc::new("zero", vec![n.clone()], vec![a], body);
        let mut bind = HashMap::new();
        bind.insert("n".to_string(), 16i64);
        let g = f.specialize(&bind);
        assert!(g.params.is_empty());
        assert_eq!(g.buffers[0].shape[0].as_const_int(), Some(16));
        match &g.body {
            Stmt::For { extent, .. } => assert_eq!(extent.as_const_int(), Some(16)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let n = Var::i32("i");
        let f = PrimFunc::new("f", vec![n], vec![], Stmt::nop());
        assert_eq!(f.fresh_name("i"), "i_0");
        assert_eq!(f.fresh_name("j"), "j");
    }

    #[test]
    fn lookup_param_and_buffer() {
        let n = Var::i32("n");
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let f = PrimFunc::new("f", vec![n], vec![a], Stmt::nop());
        assert!(f.param("n").is_some());
        assert!(f.param("m").is_none());
        assert!(f.buffer("A").is_some());
        assert_eq!(f.dtype_of_buffer("A"), Some(DType::F32));
    }

    impl PrimFunc {
        fn dtype_of_buffer(&self, name: &str) -> Option<DType> {
            self.buffer(name).map(|b| b.dtype)
        }
    }
}
