//! Scalar data types carried by expressions and buffers.

use std::fmt;

/// Scalar element type of an expression or buffer.
///
/// `F16` values are *stored* as `f32` by the interpreter; the tag exists so
/// that the performance model can account for half-precision memory traffic
/// and tensor-core eligibility (see `sparsetir-gpusim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit signed integer (index arithmetic, indptr/indices arrays).
    I32,
    /// 64-bit signed integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 half precision (stored as f32 functionally).
    F16,
    /// Boolean (predicates).
    Bool,
}

impl DType {
    /// Size of one element in bytes as seen by the memory system.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::I32 | DType::F32 => 4,
            DType::I64 => 8,
            DType::F16 => 2,
            DType::Bool => 1,
        }
    }

    /// True for `I32`/`I64`/`Bool`.
    #[must_use]
    pub fn is_int(self) -> bool {
        matches!(self, DType::I32 | DType::I64 | DType::Bool)
    }

    /// True for `F32`/`F16`.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::F32 => "float32",
            DType::F16 => "float16",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn classification() {
        assert!(DType::I32.is_int());
        assert!(!DType::I32.is_float());
        assert!(DType::F16.is_float());
        assert!(DType::Bool.is_int());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "float32");
        assert_eq!(DType::I32.to_string(), "int32");
    }
}
