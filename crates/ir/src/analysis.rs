//! Static analysis over the loop-level IR: a structural verifier, FLOP
//! counting and access summaries. The FLOP counter is used by the test
//! suite to cross-check simulator kernel plans against the IR they mirror
//! (DESIGN.md §5.5).

use crate::buffer::Buffer;
use crate::expr::{BinOp, Expr, Var};
use crate::func::PrimFunc;
use crate::stmt::{ForKind, Stmt, ThreadAxis};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A structural defect found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    message: String,
}

impl VerifyError {
    fn new(message: impl Into<String>) -> Self {
        VerifyError { message: message.into() }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification error: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural well-formedness of a function:
///
/// * every buffer access arity matches the buffer's rank,
/// * every referenced buffer is bound (parameter or in-scope allocation),
/// * every variable reference is in scope (param, loop, let, block var),
/// * each GPU thread axis is bound by at most one loop on any path,
/// * allocated staging buffers are not `Global` scope.
///
/// # Errors
/// Returns the first defect found.
pub fn verify(func: &PrimFunc) -> Result<(), VerifyError> {
    let mut scope: Vec<String> = func.params.iter().map(|p| p.name.to_string()).collect();
    let mut buffers: HashMap<String, usize> =
        func.buffers.iter().map(|b| (b.name.to_string(), b.ndim())).collect();
    let mut axes: HashSet<ThreadAxis> = HashSet::new();
    verify_stmt(&func.body, &mut scope, &mut buffers, &mut axes)
}

fn verify_stmt(
    s: &Stmt,
    scope: &mut Vec<String>,
    buffers: &mut HashMap<String, usize>,
    axes: &mut HashSet<ThreadAxis>,
) -> Result<(), VerifyError> {
    match s {
        Stmt::For { var, extent, kind, body } => {
            verify_expr(extent, scope, buffers)?;
            if let ForKind::ThreadBinding(axis) = kind {
                if !axes.insert(*axis) {
                    return Err(VerifyError::new(format!(
                        "thread axis {} bound by more than one loop on a path",
                        axis.name()
                    )));
                }
            }
            scope.push(var.name.to_string());
            verify_stmt(body, scope, buffers, axes)?;
            scope.pop();
            if let ForKind::ThreadBinding(axis) = kind {
                axes.remove(axis);
            }
            Ok(())
        }
        Stmt::Block(b) => {
            for iv in &b.iter_vars {
                verify_expr(&iv.binding, scope, buffers)?;
            }
            let base = scope.len();
            scope.extend(b.iter_vars.iter().map(|iv| iv.var.name.to_string()));
            if let Some(init) = &b.init {
                verify_stmt(init, scope, buffers, axes)?;
            }
            verify_stmt(&b.body, scope, buffers, axes)?;
            scope.truncate(base);
            Ok(())
        }
        Stmt::BufferStore { buffer, indices, value } => {
            verify_access(buffer, indices.len(), buffers)?;
            for i in indices {
                verify_expr(i, scope, buffers)?;
            }
            verify_expr(value, scope, buffers)
        }
        Stmt::Seq(v) => {
            for st in v {
                verify_stmt(st, scope, buffers, axes)?;
            }
            Ok(())
        }
        Stmt::IfThenElse { cond, then_branch, else_branch } => {
            verify_expr(cond, scope, buffers)?;
            verify_stmt(then_branch, scope, buffers, axes)?;
            if let Some(e) = else_branch {
                verify_stmt(e, scope, buffers, axes)?;
            }
            Ok(())
        }
        Stmt::Let { var, value, body } => {
            verify_expr(value, scope, buffers)?;
            scope.push(var.name.to_string());
            verify_stmt(body, scope, buffers, axes)?;
            scope.pop();
            Ok(())
        }
        Stmt::Allocate { buffer, body } => {
            if buffer.scope == crate::buffer::Scope::Global {
                return Err(VerifyError::new(format!(
                    "allocated buffer `{}` must not be global scope",
                    buffer.name
                )));
            }
            for d in &buffer.shape {
                verify_expr(d, scope, buffers)?;
            }
            let had = buffers.insert(buffer.name.to_string(), buffer.ndim());
            verify_stmt(body, scope, buffers, axes)?;
            match had {
                Some(prev) => {
                    buffers.insert(buffer.name.to_string(), prev);
                }
                None => {
                    buffers.remove(&buffer.name.to_string());
                }
            }
            Ok(())
        }
        Stmt::Evaluate(e) => verify_expr(e, scope, buffers),
        Stmt::MmaSync { c, a, b, .. } => {
            for t in [c, a, b] {
                verify_access(&t.buffer, 1, buffers)?;
                verify_expr(&t.offset, scope, buffers)?;
                verify_expr(&t.row_stride, scope, buffers)?;
            }
            Ok(())
        }
    }
}

fn verify_access(
    buffer: &Buffer,
    arity: usize,
    buffers: &HashMap<String, usize>,
) -> Result<(), VerifyError> {
    match buffers.get(&buffer.name.to_string()) {
        None => Err(VerifyError::new(format!("buffer `{}` is not bound", buffer.name))),
        Some(&rank) if rank != arity => Err(VerifyError::new(format!(
            "buffer `{}` has rank {rank} but is accessed with {arity} indices",
            buffer.name
        ))),
        Some(_) => Ok(()),
    }
}

fn verify_expr(
    e: &Expr,
    scope: &[String],
    buffers: &HashMap<String, usize>,
) -> Result<(), VerifyError> {
    match e {
        Expr::Var(v) => {
            if scope.iter().any(|s| s == &*v.name) {
                Ok(())
            } else {
                Err(VerifyError::new(format!("variable `{}` is not in scope", v.name)))
            }
        }
        Expr::Int { .. } | Expr::Float { .. } => Ok(()),
        Expr::Binary { lhs, rhs, .. } => {
            verify_expr(lhs, scope, buffers)?;
            verify_expr(rhs, scope, buffers)
        }
        Expr::Select { cond, then, otherwise } => {
            verify_expr(cond, scope, buffers)?;
            verify_expr(then, scope, buffers)?;
            verify_expr(otherwise, scope, buffers)
        }
        Expr::Cast { value, .. } => verify_expr(value, scope, buffers),
        Expr::BufferLoad { buffer, indices } => {
            verify_access(buffer, indices.len(), buffers)?;
            for i in indices {
                verify_expr(i, scope, buffers)?;
            }
            Ok(())
        }
        Expr::Call { args, .. } => {
            for a in args {
                verify_expr(a, scope, buffers)?;
            }
            Ok(())
        }
    }
}

/// Dynamic operation counts of one interpreted execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Floating multiply-adds and other float binary ops (FMA counts 2).
    pub flops: f64,
    /// Global/scalar loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

/// Count operations of an interpreted run by instrumenting a lightweight
/// walk: loop extents are evaluated with the given scalar/tensor bindings
/// (so data-dependent extents like `indptr[i+1] − indptr[i]` are exact).
/// Statement bodies are *not* numerically executed — only loads/stores /
/// float-op counts are accumulated — so the cost is O(trip counts).
///
/// # Errors
/// Propagates interpreter errors from extent evaluation.
pub fn count_ops(
    func: &PrimFunc,
    scalars: &HashMap<String, i64>,
    tensors: &HashMap<String, crate::eval::TensorData>,
) -> Result<OpCounts, crate::eval::EvalError> {
    // Reuse the interpreter for extent evaluation by building a counting
    // clone: replace every store's value with itself (we interpret fully —
    // simplest correct implementation — but count as we go). For the
    // matrix sizes used in tests this is cheap.
    let mut tensors = tensors.clone();
    let mut counts = OpCounts::default();
    // Count statically per executed store: walk with a callback interpreter.
    // Full interpretation is the simplest faithful approach.
    crate::eval::eval_func_counting(func, scalars, &mut tensors, &mut |kind| match kind {
        crate::eval::OpKind::Flop => counts.flops += 1.0,
        crate::eval::OpKind::Load => counts.loads += 1,
        crate::eval::OpKind::Store => counts.stores += 1,
    })?;
    Ok(counts)
}

/// Maximum loop-nest depth.
#[must_use]
pub fn loop_depth(func: &PrimFunc) -> usize {
    fn go(s: &Stmt) -> usize {
        match s {
            Stmt::For { body, .. } => 1 + go(body),
            Stmt::Block(b) => {
                let i = b.init.as_ref().map_or(0, |s| go(s));
                i.max(go(&b.body))
            }
            Stmt::Seq(v) => v.iter().map(go).max().unwrap_or(0),
            Stmt::IfThenElse { then_branch, else_branch, .. } => {
                go(then_branch).max(else_branch.as_ref().map_or(0, |e| go(e)))
            }
            Stmt::Let { body, .. } | Stmt::Allocate { body, .. } => go(body),
            _ => 0,
        }
    }
    go(&func.body)
}

/// Names of buffers read and written (from syntactic occurrence).
#[must_use]
pub fn buffer_access_summary(func: &PrimFunc) -> (Vec<String>, Vec<String>) {
    let mut reads: Vec<String> = Vec::new();
    let mut writes: Vec<String> = Vec::new();
    func.body.walk(&mut |s| {
        if let Stmt::BufferStore { buffer, value, indices } = s {
            if !writes.contains(&buffer.name.to_string()) {
                writes.push(buffer.name.to_string());
            }
            let mut collect = |e: &Expr| {
                let mut vars = Vec::new();
                e.collect_vars(&mut vars);
                collect_reads(e, &mut reads);
            };
            collect(value);
            for i in indices {
                collect_reads(i, &mut reads);
            }
        }
    });
    (reads, writes)
}

fn collect_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::BufferLoad { buffer, indices } => {
            if !out.contains(&buffer.name.to_string()) {
                out.push(buffer.name.to_string());
            }
            for i in indices {
                collect_reads(i, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_reads(lhs, out);
            collect_reads(rhs, out);
        }
        Expr::Select { cond, then, otherwise } => {
            collect_reads(cond, out);
            collect_reads(then, out);
            collect_reads(otherwise, out);
        }
        Expr::Cast { value, .. } => collect_reads(value, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_reads(a, out);
            }
        }
        _ => {}
    }
}

#[allow(unused)]
fn unused(_: &Var, _: BinOp) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Scope;
    use crate::dtype::DType;
    use crate::eval::TensorData;

    fn sample_func() -> PrimFunc {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let body = Stmt::for_serial(
            i.clone(),
            4,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![Expr::var(&i)],
                value: a.load(vec![Expr::var(&i)]) * 2.0f32 + 1.0f32,
            },
        );
        PrimFunc::new("f", vec![], vec![a, c], body)
    }

    #[test]
    fn verify_accepts_well_formed() {
        verify(&sample_func()).unwrap();
    }

    #[test]
    fn verify_rejects_unbound_variable() {
        let ghost = Var::i32("ghost");
        let c = Buffer::global_f32("C", vec![Expr::i32(4)]);
        let f = PrimFunc::new(
            "f",
            vec![],
            vec![c.clone()],
            Stmt::BufferStore {
                buffer: c,
                indices: vec![Expr::var(&ghost)],
                value: Expr::f32(0.0),
            },
        );
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn verify_rejects_unbound_buffer() {
        let i = Var::i32("i");
        let phantom = Buffer::global_f32("Phantom", vec![Expr::i32(4)]);
        let f = PrimFunc::new(
            "f",
            vec![],
            vec![],
            Stmt::for_serial(
                i.clone(),
                4,
                Stmt::BufferStore {
                    buffer: phantom,
                    indices: vec![Expr::var(&i)],
                    value: Expr::f32(0.0),
                },
            ),
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn verify_rejects_rank_mismatch() {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(2), Expr::i32(2)]);
        let f = PrimFunc::new(
            "f",
            vec![],
            vec![a.clone()],
            Stmt::for_serial(
                i.clone(),
                2,
                Stmt::BufferStore {
                    buffer: a,
                    indices: vec![Expr::var(&i)], // 1 index for rank 2
                    value: Expr::f32(0.0),
                },
            ),
        );
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn verify_rejects_double_thread_binding() {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let f = PrimFunc::new(
            "f",
            vec![],
            vec![],
            Stmt::For {
                var: i,
                extent: Expr::i32(2),
                kind: ForKind::ThreadBinding(ThreadAxis::ThreadIdxX),
                body: Box::new(Stmt::For {
                    var: j,
                    extent: Expr::i32(2),
                    kind: ForKind::ThreadBinding(ThreadAxis::ThreadIdxX),
                    body: Box::new(Stmt::nop()),
                }),
            },
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn verify_rejects_global_allocation() {
        let tmp = Buffer::new("tmp", DType::F32, vec![Expr::i32(1)], Scope::Global);
        let f = PrimFunc::new(
            "f",
            vec![],
            vec![],
            Stmt::Allocate { buffer: tmp, body: Box::new(Stmt::nop()) },
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn count_ops_matches_hand_count() {
        let f = sample_func();
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0f32; 4]));
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 4));
        let counts = count_ops(&f, &HashMap::new(), &tensors).unwrap();
        // Per iteration: 1 load, 2 float ops (mul, add), 1 store; ×4.
        assert_eq!(counts.loads, 4);
        assert_eq!(counts.stores, 4);
        assert!((counts.flops - 8.0).abs() < 1e-9, "{}", counts.flops);
    }

    #[test]
    fn loop_depth_and_summary() {
        let f = sample_func();
        assert_eq!(loop_depth(&f), 1);
        let (reads, writes) = buffer_access_summary(&f);
        assert_eq!(reads, vec!["A".to_string()]);
        assert_eq!(writes, vec!["C".to_string()]);
    }
}
