//! Pretty-printer emitting the Python-like script form used throughout the
//! paper's figures (round-trip presentation form, not a parser target).

use crate::expr::{BinOp, Expr};
use crate::func::PrimFunc;
use crate::stmt::{ForKind, Stmt};
use std::fmt::Write;

/// Render an expression in source form.
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int { value, .. } => value.to_string(),
        Expr::Float { value, .. } => {
            if value.fract() == 0.0 {
                format!("{value:.1}")
            } else {
                format!("{value}")
            }
        }
        Expr::Var(v) => v.name.to_string(),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Min | BinOp::Max => {
                format!("{}({}, {})", op.symbol(), print_expr(lhs), print_expr(rhs))
            }
            _ => format!("({} {} {})", print_expr(lhs), op.symbol(), print_expr(rhs)),
        },
        Expr::Select { cond, then, otherwise } => {
            format!("({} if {} else {})", print_expr(then), print_expr(cond), print_expr(otherwise))
        }
        Expr::Cast { dtype, value } => format!("{}({})", dtype, print_expr(value)),
        Expr::BufferLoad { buffer, indices } => {
            let idx: Vec<String> = indices.iter().map(print_expr).collect();
            format!("{}[{}]", buffer.name, idx.join(", "))
        }
        Expr::Call { intrin, args } => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{}({})", intrin.name(), a.join(", "))
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, out: &mut String, level: usize) {
    match s {
        Stmt::For { var, extent, kind, body } => {
            indent(out, level);
            let annot = match kind {
                ForKind::Serial => String::new(),
                ForKind::Parallel => "  # parallel".to_string(),
                ForKind::Vectorized => "  # vectorized".to_string(),
                ForKind::Unrolled => "  # unrolled".to_string(),
                ForKind::ThreadBinding(axis) => format!("  # bind: {}", axis.name()),
            };
            let _ = writeln!(out, "for {} in range({}):{}", var.name, print_expr(extent), annot);
            print_stmt(body, out, level + 1);
        }
        Stmt::Block(b) => {
            indent(out, level);
            let _ = writeln!(out, "with block(\"{}\"):", b.name);
            for iv in &b.iter_vars {
                indent(out, level + 1);
                let kind = match iv.kind {
                    crate::stmt::IterKind::Spatial => "S",
                    crate::stmt::IterKind::Reduce => "R",
                };
                let _ = writeln!(out, "# {}: {} = {}", kind, iv.var.name, print_expr(&iv.binding));
            }
            if let Some(init) = &b.init {
                indent(out, level + 1);
                out.push_str("with init():\n");
                print_stmt(init, out, level + 2);
            }
            print_stmt(&b.body, out, level + 1);
        }
        Stmt::BufferStore { buffer, indices, value } => {
            indent(out, level);
            let idx: Vec<String> = indices.iter().map(print_expr).collect();
            let _ = writeln!(out, "{}[{}] = {}", buffer.name, idx.join(", "), print_expr(value));
        }
        Stmt::Seq(stmts) => {
            if stmts.is_empty() {
                indent(out, level);
                out.push_str("pass\n");
            } else {
                for st in stmts {
                    print_stmt(st, out, level);
                }
            }
        }
        Stmt::IfThenElse { cond, then_branch, else_branch } => {
            indent(out, level);
            let _ = writeln!(out, "if {}:", print_expr(cond));
            print_stmt(then_branch, out, level + 1);
            if let Some(e) = else_branch {
                indent(out, level);
                out.push_str("else:\n");
                print_stmt(e, out, level + 1);
            }
        }
        Stmt::Let { var, value, body } => {
            indent(out, level);
            let _ = writeln!(out, "{} = {}", var.name, print_expr(value));
            print_stmt(body, out, level);
        }
        Stmt::Allocate { buffer, body } => {
            indent(out, level);
            let shape: Vec<String> = buffer.shape.iter().map(print_expr).collect();
            let _ = writeln!(
                out,
                "{} = alloc([{}], \"{}\", scope=\"{}\")",
                buffer.name,
                shape.join(", "),
                buffer.dtype,
                buffer.scope
            );
            print_stmt(body, out, level);
        }
        Stmt::Evaluate(e) => {
            indent(out, level);
            let _ = writeln!(out, "{}", print_expr(e));
        }
        Stmt::MmaSync { c, a, b, m, n, k } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "mma_sync({}[{}; ld={}], {}[{}; ld={}], {}[{}; ld={}], m={m}, n={n}, k={k})",
                c.buffer.name,
                print_expr(&c.offset),
                print_expr(&c.row_stride),
                a.buffer.name,
                print_expr(&a.offset),
                print_expr(&a.row_stride),
                b.buffer.name,
                print_expr(&b.offset),
                print_expr(&b.row_stride),
            );
        }
    }
}

/// Render a whole function in script form.
#[must_use]
pub fn print_func(f: &PrimFunc) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.dtype))
        .chain(f.buffers.iter().map(|b| {
            let shape: Vec<String> = b.shape.iter().map(print_expr).collect();
            format!("{}: [{}] {}", b.name, shape.join(", "), b.dtype)
        }))
        .collect();
    let _ = writeln!(out, "def {}({}):", f.name, params.join(", "));
    print_stmt(&f.body, &mut out, 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::Var;

    #[test]
    fn prints_loop_nest() {
        let i = Var::i32("i");
        let a = Buffer::global_f32("A", vec![Expr::i32(4)]);
        let f = PrimFunc::new(
            "zero",
            vec![],
            vec![a.clone()],
            Stmt::for_serial(
                i.clone(),
                4,
                Stmt::BufferStore {
                    buffer: a,
                    indices: vec![Expr::var(&i)],
                    value: Expr::f32(0.0),
                },
            ),
        );
        let s = print_func(&f);
        assert!(s.contains("def zero"), "{s}");
        assert!(s.contains("for i in range(4):"), "{s}");
        assert!(s.contains("A[i] = 0.0"), "{s}");
    }

    #[test]
    fn prints_min_as_call() {
        let e = Expr::i32(1).min(2);
        assert_eq!(print_expr(&e), "min(1, 2)");
    }

    #[test]
    fn prints_select_pythonically() {
        let e = Expr::i32(1).lt(2).select(10, 20);
        assert_eq!(print_expr(&e), "(10 if (1 < 2) else 20)");
    }
}
