//! Multi-dimensional buffers referenced by the loop-level IR.

use crate::dtype::DType;
use crate::expr::Expr;
use std::fmt;
use std::rc::Rc;

/// Storage scope of a buffer, mirroring the GPU memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scope {
    /// Device global memory (HBM).
    #[default]
    Global,
    /// Per-thread-block shared memory (SRAM).
    Shared,
    /// Per-thread registers / local memory.
    Local,
    /// Tensor-core matrix fragment registers.
    WmmaFragment,
}

impl Scope {
    /// Printable name (matches CUDA terminology).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scope::Global => "global",
            Scope::Shared => "shared",
            Scope::Local => "local",
            Scope::WmmaFragment => "wmma.fragment",
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An n-dimensional buffer. Identity is by `name`; lowering keeps buffer
/// names unique within a function.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Unique name within the enclosing function.
    pub name: Rc<str>,
    /// Element type.
    pub dtype: DType,
    /// Per-dimension extents. After sparse buffer lowering (Stage III) every
    /// buffer is 1-dimensional.
    pub shape: Vec<Expr>,
    /// Memory scope.
    pub scope: Scope,
}

impl Buffer {
    /// Create a buffer.
    pub fn new(name: impl Into<Rc<str>>, dtype: DType, shape: Vec<Expr>, scope: Scope) -> Self {
        Buffer { name: name.into(), dtype, shape, scope }
    }

    /// Global-scope `float32` buffer.
    pub fn global_f32(name: impl Into<Rc<str>>, shape: Vec<Expr>) -> Self {
        Buffer::new(name, DType::F32, shape, Scope::Global)
    }

    /// Global-scope `int32` buffer (auxiliary indptr/indices arrays).
    pub fn global_i32(name: impl Into<Rc<str>>, shape: Vec<Expr>) -> Self {
        Buffer::new(name, DType::I32, shape, Scope::Global)
    }

    /// Number of dimensions.
    #[must_use]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count when the shape is fully constant.
    #[must_use]
    pub fn const_len(&self) -> Option<i64> {
        self.shape.iter().map(Expr::as_const_int).try_fold(1i64, |acc, d| d.map(|d| acc * d))
    }

    /// Read expression `self[indices...]`.
    #[must_use]
    pub fn load(&self, indices: Vec<Expr>) -> Expr {
        Expr::BufferLoad { buffer: self.clone(), indices }
    }
}

/// A rectangular region of a buffer: per-dimension `(offset, extent)`.
/// Produced by read/write region analysis and attached to blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferRegion {
    /// The buffer accessed.
    pub buffer: Buffer,
    /// Per-dimension `(min, extent)` pairs.
    pub ranges: Vec<(Expr, Expr)>,
}

impl BufferRegion {
    /// Region covering the whole buffer.
    #[must_use]
    pub fn full(buffer: &Buffer) -> Self {
        let ranges = buffer.shape.iter().map(|d| (Expr::i32(0), d.clone())).collect();
        BufferRegion { buffer: buffer.clone(), ranges }
    }

    /// Single-point region at `indices`.
    #[must_use]
    pub fn point(buffer: &Buffer, indices: &[Expr]) -> Self {
        let ranges = indices.iter().map(|i| (i.clone(), Expr::i32(1))).collect();
        BufferRegion { buffer: buffer.clone(), ranges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_len_of_static_shape() {
        let b = Buffer::global_f32("A", vec![Expr::i32(4), Expr::i32(8)]);
        assert_eq!(b.const_len(), Some(32));
    }

    #[test]
    fn const_len_of_symbolic_shape_is_none() {
        use crate::expr::Var;
        let n = Var::i32("n");
        let b = Buffer::global_f32("A", vec![Expr::var(&n)]);
        assert_eq!(b.const_len(), None);
    }

    #[test]
    fn full_region_covers_shape() {
        let b = Buffer::global_f32("A", vec![Expr::i32(4), Expr::i32(8)]);
        let r = BufferRegion::full(&b);
        assert_eq!(r.ranges.len(), 2);
        assert_eq!(r.ranges[1].1.as_const_int(), Some(8));
    }

    #[test]
    fn scope_names() {
        assert_eq!(Scope::Shared.name(), "shared");
        assert_eq!(Scope::WmmaFragment.to_string(), "wmma.fragment");
    }
}
